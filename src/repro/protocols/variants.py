"""Ablation variants of DAC_p2p (the ``benchmarks/bench_ablation_*`` suite).

Each variant switches off or replaces exactly one mechanism of the paper's
protocol, so benchmark comparisons attribute performance to that mechanism:

* :class:`NoReminderDacPolicy` — rejected requesters leave no reminders;
  suppliers only ever *relax*, so differentiation cannot re-tighten after
  bursts (the paper's Figure 7 adaptivity disappears).
* :class:`NoElevationDacPolicy` — no idle-timeout elevation; the vector
  changes only at session ends, so an unlucky idle supplier can starve
  lower classes for a long time.
* :class:`LinearElevationDacPolicy` — elevation adds a fixed increment
  instead of doubling, giving a slower relax schedule.
* :class:`GenerousInitDacPolicy` — the initial vector is all-ones but
  reminders still tighten; differentiation only appears on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.admission import AdmissionVector, SupplierAdmissionState
from repro.core.model import ClassLadder
from repro.protocols.base import AdmissionPolicy, register_policy

__all__ = [
    "NoReminderDacPolicy",
    "NoElevationDacPolicy",
    "LinearElevationDacPolicy",
    "GenerousInitDacPolicy",
]


@register_policy
class NoReminderDacPolicy(AdmissionPolicy):
    """DAC_p2p with the reminder technique disabled (Ablation A)."""

    name = "dac-no-reminder"
    uses_reminders = False
    uses_idle_elevation = True

    def make_supplier_state(
        self, own_class: int, ladder: ClassLadder
    ) -> SupplierAdmissionState:
        """Standard DAC state; reminders simply never reach it."""
        return SupplierAdmissionState(own_class=own_class, ladder=ladder)


@register_policy
class NoElevationDacPolicy(AdmissionPolicy):
    """DAC_p2p without the idle ``T_out`` elevation timer (Ablation B)."""

    name = "dac-no-elevation"
    uses_reminders = True
    uses_idle_elevation = False

    def make_supplier_state(
        self, own_class: int, ladder: ClassLadder
    ) -> SupplierAdmissionState:
        """Standard DAC state; the simulator never arms its idle timer."""
        return SupplierAdmissionState(own_class=own_class, ladder=ladder)


class _LinearElevationState(SupplierAdmissionState):
    """DAC state whose elevation adds ``step`` instead of doubling."""

    ELEVATION_STEP = 0.125

    def _elevate_linear(self) -> bool:
        changed = False
        probabilities = self.vector.probabilities
        for index, value in enumerate(probabilities):
            if value < 1.0:
                probabilities[index] = min(1.0, value + self.ELEVATION_STEP)
                changed = True
        return changed

    def on_idle_timeout(self) -> bool:
        """Linear-step elevation after ``T_out`` of idleness."""
        if self.busy:
            return False
        return self._elevate_linear()

    def on_session_end(self) -> None:
        """Same rule structure as DAC, with the linear relax step."""
        self.busy = False
        if self.reminder_classes:
            self.vector.tighten(min(self.reminder_classes))
        elif not self.favored_request_while_busy:
            self._elevate_linear()
        self.favored_request_while_busy = False
        self.reminder_classes = []


@register_policy
class LinearElevationDacPolicy(AdmissionPolicy):
    """DAC_p2p with additive instead of multiplicative relaxation."""

    name = "dac-linear-elevation"
    uses_reminders = True
    uses_idle_elevation = True

    def make_supplier_state(
        self, own_class: int, ladder: ClassLadder
    ) -> _LinearElevationState:
        """Linear-elevation variant of the DAC supplier state."""
        return _LinearElevationState(own_class=own_class, ladder=ladder)


class _GenerousInitState(SupplierAdmissionState):
    """DAC state that starts with an all-ones vector."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.vector = AdmissionVector.all_ones(self.ladder)


@register_policy
class GenerousInitDacPolicy(AdmissionPolicy):
    """DAC_p2p whose differentiation only appears via reminders."""

    name = "dac-generous-init"
    uses_reminders = True
    uses_idle_elevation = True

    def make_supplier_state(
        self, own_class: int, ladder: ClassLadder
    ) -> _GenerousInitState:
        """All-ones start; tighten-on-reminder still active."""
        return _GenerousInitState(own_class=own_class, ladder=ladder)
