"""Admission-policy interface and registry.

The streaming system needs exactly three things from a policy:

1. a factory for per-supplier admission state (the probability vector plus
   its update rules),
2. whether rejected requesters should leave *reminders* (the paper's
   tighten signal), and
3. whether idle suppliers should run the ``T_out`` elevation timer.

Both paper protocols and all ablation variants fit this interface; new
variants register themselves in :data:`POLICY_REGISTRY` so configs can name
them by string.
"""

from __future__ import annotations

import abc
from typing import Protocol, runtime_checkable

from repro.core.model import ClassLadder
from repro.errors import ConfigurationError

__all__ = ["SupplierStateLike", "AdmissionPolicy", "POLICY_REGISTRY", "make_policy"]


@runtime_checkable
class SupplierStateLike(Protocol):
    """Per-supplier admission state as the simulator consumes it."""

    busy: bool

    def on_session_start(self) -> None:
        """The supplier was enlisted into a session."""
        ...

    def on_request_while_busy(self, requester_class: int) -> None:
        """A request arrived while busy."""
        ...

    def on_reminder(self, requester_class: int) -> None:
        """A rejected requester left a reminder."""
        ...

    def on_session_end(self) -> None:
        """The served session finished; apply the end-of-session rule."""
        ...

    def on_idle_timeout(self) -> bool:
        """``T_out`` elapsed while idle; returns True if the vector changed."""
        ...

    def grant_probability(self, requester_class: int) -> float:
        """Current probability of granting a request of that class."""
        ...

    def favors(self, requester_class: int) -> bool:
        """Whether the class is currently favored (``Pa == 1.0``)."""
        ...

    def lowest_favored_class(self) -> int:
        """Figure 7's metric: the lowest class currently favored."""
        ...


class AdmissionPolicy(abc.ABC):
    """Factory + feature flags defining one admission-control protocol."""

    #: registry key and display name
    name: str = "abstract"
    #: do rejected requesters leave reminders with busy favoring suppliers?
    uses_reminders: bool = True
    #: do idle suppliers elevate after T_out?
    uses_idle_elevation: bool = True

    @abc.abstractmethod
    def make_supplier_state(
        self, own_class: int, ladder: ClassLadder
    ) -> SupplierStateLike:
        """Create the admission state for a new supplier of ``own_class``."""

    def describe(self) -> str:
        """Short human-readable description for reports."""
        flags = []
        if not self.uses_reminders:
            flags.append("no reminders")
        if not self.uses_idle_elevation:
            flags.append("no idle elevation")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return f"{self.name}{suffix}"


#: name -> policy factory; populated by the concrete policy modules.
POLICY_REGISTRY: dict[str, type[AdmissionPolicy]] = {}


def register_policy(policy_class: type[AdmissionPolicy]) -> type[AdmissionPolicy]:
    """Class decorator adding a policy to :data:`POLICY_REGISTRY`."""
    POLICY_REGISTRY[policy_class.name] = policy_class
    return policy_class


def make_policy(name: str) -> AdmissionPolicy:
    """Instantiate a registered policy by name."""
    try:
        policy_class = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ConfigurationError(
            f"unknown admission policy {name!r}; known: {known}"
        ) from None
    return policy_class()
