"""DAC_p2p — the paper's differentiated admission control protocol.

The per-supplier state is exactly
:class:`repro.core.admission.SupplierAdmissionState`; this module only
stamps the feature flags (reminders on, idle elevation on) and registers the
policy under the name ``"dac"``.
"""

from __future__ import annotations

from repro.core.admission import SupplierAdmissionState
from repro.core.model import ClassLadder
from repro.protocols.base import AdmissionPolicy, register_policy

__all__ = ["DacPolicy"]


@register_policy
class DacPolicy(AdmissionPolicy):
    """The paper's Protocol DAC_p2p (Section 4)."""

    name = "dac"
    uses_reminders = True
    uses_idle_elevation = True

    def make_supplier_state(
        self, own_class: int, ladder: ClassLadder
    ) -> SupplierAdmissionState:
        """Differentiated initial vector, full relax/tighten dynamics."""
        return SupplierAdmissionState(own_class=own_class, ladder=ladder)
