"""Admission-control policies: DAC_p2p, NDAC_p2p, and ablation variants.

A policy is a small factory + feature-flag object; the per-supplier state it
creates implements the event hooks of
:class:`repro.core.admission.SupplierAdmissionState`.  The simulator is
policy-agnostic — swapping ``"dac"`` for ``"ndac"`` (or any variant name in
:data:`POLICY_REGISTRY`) is the entire difference between the two sides of
every figure in the paper.
"""

from repro.protocols.base import AdmissionPolicy, POLICY_REGISTRY, make_policy
from repro.protocols.dac import DacPolicy
from repro.protocols.ndac import NdacPolicy
from repro.protocols.variants import (
    GenerousInitDacPolicy,
    LinearElevationDacPolicy,
    NoElevationDacPolicy,
    NoReminderDacPolicy,
)

__all__ = [
    "AdmissionPolicy",
    "POLICY_REGISTRY",
    "make_policy",
    "DacPolicy",
    "NdacPolicy",
    "NoReminderDacPolicy",
    "NoElevationDacPolicy",
    "LinearElevationDacPolicy",
    "GenerousInitDacPolicy",
]
