"""NDAC_p2p — the non-differentiated baseline of the paper's Section 5.

"The admission probability vector of each supplying peer is always
``[1.0, 1.0, 1.0, 1.0]``" — every request that reaches an idle supplier is
granted, nothing is ever elevated or tightened, and reminders are pointless
(there is no differentiation to tighten).  All other machinery (``M``
candidates, backoff, OTS_p2p) is identical to DAC_p2p.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.admission import AdmissionVector
from repro.core.model import ClassLadder
from repro.errors import ConfigurationError
from repro.protocols.base import AdmissionPolicy, register_policy

__all__ = ["NdacPolicy", "NdacSupplierState"]


@dataclass(slots=True)
class NdacSupplierState:
    """All-ones vector, no dynamics — only the busy flag does anything."""

    own_class: int
    ladder: ClassLadder
    vector: AdmissionVector = field(init=False)
    busy: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.ladder.validate_class(self.own_class)
        self.vector = AdmissionVector.all_ones(self.ladder)

    def on_session_start(self) -> None:
        """Mark busy; NDAC has no other session bookkeeping."""
        if self.busy:
            raise ConfigurationError("NDAC supplier enlisted while already busy")
        self.busy = True

    def on_request_while_busy(self, requester_class: int) -> None:
        """No-op: NDAC keeps no favored-class records."""

    def on_reminder(self, requester_class: int) -> None:
        """No-op: reminders have no effect on an all-ones vector."""

    def on_session_end(self) -> None:
        """Mark idle; the vector never changes."""
        self.busy = False

    def on_idle_timeout(self) -> bool:
        """Nothing to elevate; report 'no change' so timers are not re-armed."""
        return False

    def grant_probability(self, requester_class: int) -> float:
        """Always 1.0 — NDAC admits whoever reaches an idle supplier."""
        if not (
            requester_class.__class__ is int
            and 1 <= requester_class <= self.ladder.num_classes
        ):
            self.ladder.validate_class(requester_class)
        return 1.0

    def favors(self, requester_class: int) -> bool:
        """Every class is favored."""
        if not (
            requester_class.__class__ is int
            and 1 <= requester_class <= self.ladder.num_classes
        ):
            self.ladder.validate_class(requester_class)
        return True

    def lowest_favored_class(self) -> int:
        """Always the bottom of the ladder."""
        return self.ladder.num_classes


@register_policy
class NdacPolicy(AdmissionPolicy):
    """The paper's non-differentiated baseline protocol."""

    name = "ndac"
    uses_reminders = False
    uses_idle_elevation = False

    def make_supplier_state(
        self, own_class: int, ladder: ClassLadder
    ) -> NdacSupplierState:
        """All-ones vector with inert dynamics."""
        return NdacSupplierState(own_class=own_class, ladder=ladder)
