"""Named, declarative simulation workloads.

* :mod:`repro.scenarios.scenario` — the frozen :class:`Scenario`
  dataclass that expands to a :class:`~repro.simulation.config.SimulationConfig`;
* :mod:`repro.scenarios.registry` — name → scenario lookup and
  registration;
* :mod:`repro.scenarios.catalog` — the builtin workloads (the paper's
  four arrival patterns plus churn, asymmetric-population, DHT and
  flaky-network extensions), registered on import.

>>> from repro.scenarios import get_scenario
>>> config = get_scenario("flash_crowd").build_config(scale=0.02)
>>> config.arrival_pattern
3
"""

from repro.scenarios.scenario import Scenario
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_for_pattern,
    scenario_names,
)
from repro.scenarios.catalog import BUILTIN_SCENARIOS

__all__ = [
    "Scenario",
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "scenario_for_pattern",
    "BUILTIN_SCENARIOS",
]
