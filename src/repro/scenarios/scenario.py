"""The declarative :class:`Scenario` — a named, reusable workload.

A scenario captures *what the world looks like* — who seeds the system,
who shows up wanting the stream, in what temporal shape, over which
lookup substrate, and with how much churn — independently of *how big*
the run is (``scale``) and of per-experiment knobs (protocol variants,
``M``, timers), which stay free overrides.

Scenarios are frozen and hashable: the population maps are stored as
sorted ``(class, count)`` tuples, so a scenario can key result caches the
same way a config can.  :meth:`Scenario.build_config` expands a scenario
to a fully validated :class:`~repro.simulation.config.SimulationConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.simulation.config import SimulationConfig

__all__ = ["Scenario"]

HOUR = 3600.0

#: the paper's Section 5.1 population, expressed as scenario tuples
PAPER_SEEDS: tuple[tuple[int, int], ...] = ((1, 100),)
PAPER_REQUESTERS: tuple[tuple[int, int], ...] = (
    (1, 5000),
    (2, 5000),
    (3, 20000),
    (4, 20000),
)


@dataclass(frozen=True)
class Scenario:
    """A named workload that expands to a :class:`SimulationConfig`."""

    #: registry key; lowercase snake_case
    name: str
    #: one-line human description (shown by ``repro-p2pstream scenarios``)
    description: str
    #: first-request arrival pattern 1..4 (see :mod:`repro.simulation.arrivals`)
    arrival_pattern: int = 2
    #: admission policy the scenario is normally studied under
    protocol: str = "dac"
    #: full-scale per-class seed supplier counts, as sorted (class, count)
    seed_suppliers: tuple[tuple[int, int], ...] = PAPER_SEEDS
    #: full-scale per-class requesting peer counts, as sorted (class, count)
    requesting_peers: tuple[tuple[int, int], ...] = PAPER_REQUESTERS
    #: lookup substrate ("directory" or "chord")
    lookup: str = "directory"
    #: probability a probed candidate is unreachable
    down_probability: float = 0.0
    #: mean supplier online time before departing (None = no churn)
    supplier_mean_online_seconds: float | None = None
    #: mean offline time before a departed supplier rejoins
    supplier_mean_offline_seconds: float = 4 * HOUR
    #: whether departed suppliers ever rejoin
    suppliers_rejoin: bool = True
    #: session-lifecycle model scheduling mid-stream departures ("none",
    #: "onoff", "sessions", "diurnal", "flash"); model parameters ride in
    #: :attr:`config_overrides`
    lifecycle: str = "none"
    #: any further :class:`SimulationConfig` fields, as (field, value) pairs
    config_overrides: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ConfigurationError(
                f"scenario name must be non-empty snake_case, got {self.name!r}"
            )
        if not self.description:
            raise ConfigurationError(f"scenario {self.name!r} needs a description")

    # ------------------------------------------------------------------
    def build_config(self, scale: float = 1.0, **overrides: object) -> SimulationConfig:
        """Expand to a validated config at ``scale``, with free overrides.

        Scaling happens *before* the overrides are applied, so an override
        of an absolute count (e.g. ``requesting_peers``) is taken verbatim.
        """
        config = SimulationConfig(
            seed_suppliers={c: n for c, n in self.seed_suppliers},
            requesting_peers={c: n for c, n in self.requesting_peers},
            arrival_pattern=self.arrival_pattern,
            protocol=self.protocol,
            lookup=self.lookup,
            down_probability=self.down_probability,
            supplier_mean_online_seconds=self.supplier_mean_online_seconds,
            supplier_mean_offline_seconds=self.supplier_mean_offline_seconds,
            suppliers_rejoin=self.suppliers_rejoin,
            lifecycle=self.lifecycle,
            **dict(self.config_overrides),
        )
        if scale != 1.0:
            config = config.scaled(scale)
        if overrides:
            config = config.replace(**overrides)
        return config

    def describe(self) -> str:
        """One line for scenario listings."""
        total = sum(n for _, n in self.requesting_peers)
        seeds = sum(n for _, n in self.seed_suppliers)
        return (
            f"{self.name}: {self.description} "
            f"(pattern {self.arrival_pattern}, {self.protocol}, "
            f"{seeds} seeds + {total} requesters at full scale)"
        )
