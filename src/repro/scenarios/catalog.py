"""Builtin scenario catalog.

The four paper arrival patterns over the Section-5.1 population, plus the
extension workloads the repository's examples and benchmarks study.
Importing :mod:`repro.scenarios` registers all of them.
"""

from __future__ import annotations

from repro.scenarios.registry import register
from repro.scenarios.scenario import Scenario

__all__ = ["BUILTIN_SCENARIOS"]

HOUR = 3600.0

BUILTIN_SCENARIOS: tuple[Scenario, ...] = (
    # ---- the paper's evaluation workloads (population of Section 5.1) ----
    Scenario(
        name="paper_default",
        description="the paper's evaluation: triangle-shaped arrivals "
        "peaking mid-window",
        arrival_pattern=2,
    ),
    Scenario(
        name="constant",
        description="steady first-request arrivals across the whole window",
        arrival_pattern=1,
    ),
    Scenario(
        name="flash_crowd",
        description="a premiere: an initial arrival burst, then a long tail",
        arrival_pattern=3,
    ),
    Scenario(
        name="diurnal",
        description="periodic evening waves as time zones hit prime time",
        arrival_pattern=4,
    ),
    Scenario(
        name="quickstart",
        description="the guided tour's workload: the paper's world, meant "
        "to be run at a small --scale for smoke tests and CI",
        arrival_pattern=2,
    ),
    # ---- extension workloads -------------------------------------------
    Scenario(
        name="heavy_churn",
        description="suppliers stay ~8h then leave, rejoining after ~1h",
        arrival_pattern=2,
        supplier_mean_online_seconds=8 * HOUR,
        supplier_mean_offline_seconds=1 * HOUR,
    ),
    Scenario(
        name="shrinking_pool",
        description="churn with no rejoin: the supplier pool only drains",
        arrival_pattern=2,
        supplier_mean_online_seconds=12 * HOUR,
        suppliers_rejoin=False,
    ),
    Scenario(
        name="asymmetric_classes",
        description="bandwidth-poor audience: 90% of requesters in the "
        "bottom class",
        arrival_pattern=2,
        requesting_peers=((1, 1000), (2, 1500), (3, 2500), (4, 45000)),
    ),
    Scenario(
        name="underreporting",
        description="the incentive study's defector world: high-bandwidth "
        "peers pledge (and deliver) class 4",
        arrival_pattern=2,
        requesting_peers=((1, 0), (2, 0), (3, 20000), (4, 30000)),
    ),
    Scenario(
        name="sparse_seeds",
        description="a tenth of the paper's seeds face the full audience",
        arrival_pattern=2,
        seed_suppliers=((1, 10),),
    ),
    Scenario(
        name="chord_overlay",
        description="paper workload discovered over the Chord DHT instead "
        "of the central directory",
        arrival_pattern=2,
        lookup="chord",
    ),
    Scenario(
        name="flaky_network",
        description="every probe finds the candidate down 30% of the time",
        arrival_pattern=2,
        down_probability=0.3,
    ),
    # ---- population-scale workloads ------------------------------------
    # Twice the paper's population (100k requesters) and multi-day
    # horizons: tractable interactively only on the fast path — the
    # calendar kernel plus a probe subscription that skips the expensive
    # Figure-7 snapshot and the per-message accounting.  The probe
    # subset and message tracking are part of what these scenarios
    # *measure*; kernel choice never changes results (see
    # repro.simulation.kernel) and is free to override.
    Scenario(
        name="metropolis_100k",
        description="a metropolis-scale audience: twice the paper's "
        "population (100k requesters) on the fast path",
        arrival_pattern=2,
        seed_suppliers=((1, 200),),
        requesting_peers=((1, 10000), (2, 10000), (3, 40000), (4, 40000)),
        config_overrides=(
            ("kernel", "calendar"),
            ("probes", ("capacity", "admission_rate", "overall_admission", "table1")),
            ("track_messages", False),
        ),
    ),
    Scenario(
        name="flash_crowd_100k",
        description="a metropolis-scale premiere: the 100k-requester "
        "audience arriving as a flash crowd",
        arrival_pattern=3,
        seed_suppliers=((1, 200),),
        requesting_peers=((1, 10000), (2, 10000), (3, 40000), (4, 40000)),
        config_overrides=(
            ("kernel", "calendar"),
            ("probes", ("capacity", "admission_rate", "overall_admission", "table1")),
            ("track_messages", False),
        ),
    ),
    Scenario(
        name="diurnal_week",
        description="a week of evening waves: the paper's population with "
        "arrivals over 7 days and an 8-day horizon",
        arrival_pattern=4,
        config_overrides=(
            ("kernel", "calendar"),
            ("probes", ("capacity", "admission_rate", "overall_admission", "table1")),
            ("track_messages", False),
            ("arrival_window_seconds", 7 * 24 * HOUR),
            ("horizon_seconds", 8 * 24 * HOUR),
        ),
    ),
    Scenario(
        name="megacity_1m",
        description="a million-requester megacity audience on the array "
        "engine: the paper's class mix at 10x its population, steady "
        "arrivals, struct-of-arrays peer state",
        arrival_pattern=1,
        seed_suppliers=((1, 2000),),
        requesting_peers=(
            (1, 100000),
            (2, 100000),
            (3, 400000),
            (4, 400000),
        ),
        config_overrides=(
            ("kernel", "calendar"),
            ("engine", "array"),
            ("probes", ("capacity", "admission_rate", "overall_admission", "table1")),
            ("track_messages", False),
        ),
    ),
    # ---- dynamic-membership workloads (session-lifecycle models) --------
    # Suppliers can die *mid-stream* here: departures are kernel-scheduled
    # events, active sessions are interrupted, and requesters recover by
    # re-probing and resuming from their buffer position (see
    # repro.simulation.lifecycle).  The continuity probe is subscribed
    # automatically for the default-probe scenarios.
    Scenario(
        name="flash_departure",
        description="mid-premiere blackout: 30% of suppliers vanish "
        "simultaneously at hour 36, mid-stream sessions must recover",
        arrival_pattern=2,
        lifecycle="flash",
        config_overrides=(
            ("lifecycle_flash_at_seconds", 36 * HOUR),
            ("lifecycle_flash_fraction", 0.3),
            ("lifecycle_mean_down_seconds", 1 * HOUR),
        ),
    ),
    Scenario(
        name="unstable_suppliers_100k",
        description="metropolis-scale audience over trace-shaped supplier "
        "sessions: heavy-tailed online periods, mid-stream recovery",
        arrival_pattern=2,
        seed_suppliers=((1, 200),),
        requesting_peers=((1, 10000), (2, 10000), (3, 40000), (4, 40000)),
        lifecycle="sessions",
        config_overrides=(
            ("lifecycle_mean_up_seconds", 6 * HOUR),
            ("lifecycle_mean_down_seconds", 45 * 60.0),
            ("lifecycle_sigma", 1.0),
            ("kernel", "calendar"),
            (
                "probes",
                (
                    "capacity",
                    "admission_rate",
                    "overall_admission",
                    "table1",
                    "continuity",
                ),
            ),
            ("track_messages", False),
        ),
    ),
    Scenario(
        name="diurnal_churn_week",
        description="a week of evening waves where suppliers also sleep at "
        "night: diurnal departures over the 8-day horizon",
        arrival_pattern=4,
        lifecycle="diurnal",
        config_overrides=(
            ("lifecycle_mean_up_seconds", 10 * HOUR),
            ("lifecycle_mean_down_seconds", 45 * 60.0),
            ("lifecycle_night_factor", 0.25),
            ("kernel", "calendar"),
            (
                "probes",
                (
                    "capacity",
                    "admission_rate",
                    "overall_admission",
                    "table1",
                    "continuity",
                ),
            ),
            ("track_messages", False),
            ("arrival_window_seconds", 7 * 24 * HOUR),
            ("horizon_seconds", 8 * 24 * HOUR),
        ),
    ),
)

for _scenario in BUILTIN_SCENARIOS:
    register(_scenario)
