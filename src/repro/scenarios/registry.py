"""The scenario registry — workloads addressable by name.

Downstream code (the CLI, benchmarks, examples) asks for workloads by
name instead of hand-rolling config blocks; adding a new workload to the
whole toolchain is one :func:`register` call.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenarios.scenario import Scenario

__all__ = [
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "scenario_for_pattern",
]

_SCENARIOS: dict[str, Scenario] = {}


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry; returns it for chaining.

    Registering a name twice is an error unless ``replace=True`` — silent
    shadowing of a builtin is almost always a bug in user code.
    """
    if scenario.name in _SCENARIOS and not replace:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)


def all_scenarios() -> list[Scenario]:
    """Every registered scenario, sorted by name."""
    return [_SCENARIOS[name] for name in scenario_names()]


def scenario_for_pattern(pattern_id: int) -> Scenario:
    """The canonical paper-population scenario for an arrival pattern.

    Keeps ``--pattern N`` CLI/example paths on the registry: the four
    paper patterns map onto the four builtin paper-population scenarios.
    """
    mapping = {1: "constant", 2: "paper_default", 3: "flash_crowd", 4: "diurnal"}
    try:
        return get_scenario(mapping[pattern_id])
    except KeyError:
        raise ConfigurationError(
            f"arrival pattern must be 1..4, got {pattern_id}"
        ) from None
