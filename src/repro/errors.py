"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`P2PStreamError`, so applications can catch library failures with a
single ``except`` clause while still letting programming errors (e.g.
``TypeError``) propagate.
"""

from __future__ import annotations

__all__ = [
    "P2PStreamError",
    "ConfigurationError",
    "ClassLadderError",
    "AssignmentError",
    "InfeasibleSessionError",
    "CapacityError",
    "SchedulingError",
    "LookupError_",
    "SimulationError",
    "BatchWorkerError",
    "ClaimError",
    "StoreMergeError",
    "TraceError",
]


class P2PStreamError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(P2PStreamError):
    """A configuration value is missing, out of range, or inconsistent."""


class ClassLadderError(ConfigurationError):
    """A peer class index is outside the configured bandwidth ladder."""


class AssignmentError(P2PStreamError):
    """A media-data assignment request is malformed or cannot be computed."""


class InfeasibleSessionError(AssignmentError):
    """The supplier set cannot sustain a streaming session.

    Raised when the aggregated out-bound bandwidth of the proposed supplying
    peers does not equal the media playback rate ``R0``, which the paper's
    model requires for a session to be feasible.
    """


class CapacityError(P2PStreamError):
    """Capacity bookkeeping was asked to do something inconsistent."""


class SchedulingError(P2PStreamError):
    """A transmission schedule is internally inconsistent."""


class LookupError_(P2PStreamError):
    """A peer-to-peer lookup operation failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`LookupError`.
    """


class SimulationError(P2PStreamError):
    """The discrete-event simulation reached an invalid state."""


class BatchWorkerError(SimulationError):
    """A batch worker failed on one specific config.

    Raised by :func:`~repro.orchestration.batch.run_batch` in place of a
    bare ``BrokenProcessPool`` (or a naked worker exception): it names
    the failing config's index and label so a dead grid point is
    identifiable without bisecting the batch.
    """

    def __init__(self, index: int, label: str, reason: str) -> None:
        super().__init__(
            f"batch worker failed on config {index} ({label}): {reason}"
        )
        self.index = index
        self.label = label
        self.reason = reason


class ClaimError(P2PStreamError):
    """A spec-claim operation was invalid (bad lease, foreign claim, ...)."""


class StoreMergeError(P2PStreamError):
    """Two result stores disagree on a record they both hold.

    Same spec hash but differing payload fingerprints means a
    determinism violation somewhere; merging refuses to pick a side.
    """


class TraceError(P2PStreamError):
    """An event trace could not be written or parsed."""
