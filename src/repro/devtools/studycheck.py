"""Study-export schema checks behind ``scripts/check_study_json.py``.

Validates a ``repro study --export json`` file against the record
schema so the export contract stays stable: schema tag, version stamp,
and for every record the provenance, scalar and metrics fields
downstream tooling relies on.  Problems surface as
:class:`~repro.devtools.reporting.Finding` objects; the first schema
violation stops the walk.

``check_study_json.py A --equal B`` additionally asserts two exports
are bit-identical up to wall time — the contract a sharded-and-merged
study must satisfy against its serial oracle, checked record-by-record
via the same wall-time-excluding fingerprint
:meth:`~repro.orchestration.study.RunRecord.fingerprint` uses.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.devtools.reporting import Finding, report

__all__ = [
    "SchemaProblem",
    "check_file",
    "compare_files",
    "main",
    "record_fingerprint",
]

EXPECTED_SCHEMA = "repro.study.v1"

RECORD_FIELDS = {
    "spec_hash": str,
    "config": dict,
    "scalars": dict,
    "metrics": dict,
    "events_processed": int,
    "wall_seconds": (int, float),
    "version": str,
    "axes": list,
}
REQUIRED_SCALARS = ("final_capacity", "max_capacity", "capacity_fraction_of_max")
REQUIRED_METRIC_SERIES = ("capacity_series", "overall_admission_rate_series")
REQUIRED_CONFIG_FIELDS = ("protocol", "master_seed", "arrival_pattern")


class SchemaProblem(ValueError):
    """A study export violates the record schema."""


def _fail(message: str) -> None:
    raise SchemaProblem(message)


def _check_record(index: int, record: object) -> None:
    if not isinstance(record, dict):
        _fail(f"records[{index}] is not an object")
    for name, types in RECORD_FIELDS.items():
        if name not in record:
            _fail(f"records[{index}] missing field {name!r}")
        if not isinstance(record[name], types):
            _fail(f"records[{index}].{name} has type "
                  f"{type(record[name]).__name__}, expected {types}")
    spec_hash = record["spec_hash"]
    if len(spec_hash) != 64 or set(spec_hash) - set("0123456789abcdef"):
        _fail(f"records[{index}].spec_hash is not a sha256 hex digest")
    for name in REQUIRED_CONFIG_FIELDS:
        if name not in record["config"]:
            _fail(f"records[{index}].config missing {name!r}")
    for name in REQUIRED_SCALARS:
        if not isinstance(record["scalars"].get(name), (int, float)):
            _fail(f"records[{index}].scalars.{name} missing or non-numeric")
    for name in REQUIRED_METRIC_SERIES:
        series = record["metrics"].get(name)
        if not isinstance(series, list):
            _fail(f"records[{index}].metrics.{name} missing or not a list")
        for point in series:
            if not (isinstance(point, list) and len(point) == 2):
                _fail(f"records[{index}].metrics.{name} has a malformed "
                      f"sample: {point!r}")


def check_file(path: Path) -> tuple[list[Finding], str]:
    """Validate one study export; findings plus an ok-summary string."""

    def finding(message: str) -> tuple[list[Finding], str]:
        return [Finding(
            file=str(path), line=0, rule="study-schema", message=message
        )], ""

    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return finding(f"cannot read {path}: {exc}")
    except ValueError as exc:
        return finding(f"{path} is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        return finding("top level is not an object")
    if payload.get("schema") != EXPECTED_SCHEMA:
        return finding(f"schema is {payload.get('schema')!r}, expected "
                       f"{EXPECTED_SCHEMA!r}")
    if not isinstance(payload.get("version"), str):
        return finding("version stamp missing or not a string")
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        return finding("records missing, not a list, or empty")
    if payload.get("count") != len(records):
        return finding(f"count={payload.get('count')!r} but "
                       f"{len(records)} records")
    try:
        for index, record in enumerate(records):
            _check_record(index, record)
    except SchemaProblem as exc:
        return finding(str(exc))
    return [], f"{len(records)} record(s), version {payload['version']}"


def record_fingerprint(record: dict) -> str:
    """Digest of an exported record dict, wall time excluded.

    Byte-compatible with
    :meth:`~repro.orchestration.study.RunRecord.fingerprint`: exports
    serialize ``RunRecord.to_dict()`` verbatim, so hashing the same
    canonical JSON (minus ``wall_seconds``) reproduces the in-process
    digest without importing the simulator.
    """
    payload = {k: v for k, v in record.items() if k != "wall_seconds"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def compare_files(path: Path, other: Path) -> tuple[list[Finding], str]:
    """Assert two study exports agree record-for-record up to wall time."""

    def finding(message: str) -> tuple[list[Finding], str]:
        return [Finding(
            file=str(path), line=0, rule="study-equal", message=message
        )], ""

    payloads = []
    for source in (path, other):
        findings, _ = check_file(source)
        if findings:
            return findings, ""
        payloads.append(json.loads(source.read_text(encoding="utf-8")))
    first, second = payloads
    if len(first["records"]) != len(second["records"]):
        return finding(
            f"{path} has {len(first['records'])} records but {other} has "
            f"{len(second['records'])}"
        )
    for index, (a, b) in enumerate(zip(first["records"], second["records"])):
        if a["spec_hash"] != b["spec_hash"]:
            return finding(
                f"records[{index}]: spec hashes differ "
                f"({a['spec_hash'][:12]}… vs {b['spec_hash'][:12]}…)"
            )
        if record_fingerprint(a) != record_fingerprint(b):
            return finding(
                f"records[{index}] (spec {a['spec_hash'][:12]}…): payloads "
                "differ beyond wall time — the runs are not bit-identical"
            )
    return [], f"{len(first['records'])} record(s) bit-identical up to wall time"


def main(argv: list[str]) -> int:
    """Validate the study JSON file named on the command line.

    ``FILE`` checks one export's schema; ``FILE --equal OTHER``
    additionally requires both exports to agree up to wall time.
    """
    if len(argv) == 2:
        findings, summary = check_file(Path(argv[1]))
    elif len(argv) == 4 and argv[2] == "--equal":
        findings, summary = compare_files(Path(argv[1]), Path(argv[3]))
    else:
        print("usage: check_study_json.py PATH/TO/study.json "
              "[--equal OTHER.json]")
        return 2
    return report("check_study_json", findings, ok_detail=summary)
