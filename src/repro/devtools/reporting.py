"""Shared finding/exit-code conventions for every repository checker.

All the guards this repository runs in CI — the docs checker, the
benchmark/study JSON schema checkers, and the ``detlint`` static
analyzer — report through one vocabulary: a flat, sortable
:class:`Finding` (file, line, rule, message, severity) and one exit-code
convention (0 = clean, 1 = at least one error-severity finding, 2 =
usage error).  Centralizing the conventions keeps every checker's output
greppable the same way and lets ``tests`` assert on structured findings
instead of scraping stderr text.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO, Iterable, Sequence

__all__ = [
    "Finding",
    "SEVERITIES",
    "exit_code",
    "print_findings",
    "report",
]

#: recognized severities, most severe first; only "error" affects exit codes
SEVERITIES: tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One problem a checker found, anchored to a file location.

    ``file`` is repository-relative (posix separators), ``line`` is
    1-based (0 when the finding concerns the file as a whole — e.g. a
    malformed JSON export), ``rule`` is the stable machine-readable rule
    id tools and suppressions refer to, and ``severity`` is one of
    :data:`SEVERITIES`.
    """

    file: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """The canonical one-line rendering: ``file:line: [rule] message``."""
        location = f"{self.file}:{self.line}" if self.line else self.file
        tag = f"[{self.rule}]" if self.severity == "error" else f"[{self.rule}!]"
        return f"{location}: {tag} {self.message}"


def exit_code(findings: Iterable[Finding]) -> int:
    """0 when no finding has error severity, 1 otherwise."""
    return 1 if any(f.severity == "error" for f in findings) else 0


def print_findings(
    findings: Sequence[Finding], stream: IO[str] | None = None
) -> None:
    """Write each finding's canonical line to ``stream`` (default stderr)."""
    stream = stream if stream is not None else sys.stderr
    for finding in sorted(findings):
        print(finding.format(), file=stream)


def report(
    tool: str,
    findings: Sequence[Finding],
    *,
    ok_detail: str = "",
    stream: IO[str] | None = None,
) -> int:
    """Print findings plus a one-line summary; return the exit code.

    This is the whole tail of a checker's ``main``: findings (if any) go
    to ``stream``/stderr, the summary line is prefixed with the tool
    name, and the returned value follows the shared exit-code
    convention.
    """
    stream = stream if stream is not None else sys.stderr
    code = exit_code(findings)
    if findings:
        print_findings(findings, stream=stream)
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        tail = f" and {warnings} warning(s)" if warnings else ""
        print(f"{tool}: {errors} error(s){tail}", file=stream)
    else:
        detail = f" ({ok_detail})" if ok_detail else ""
        print(f"{tool}: ok{detail}")
    return code
