"""The detlint rules: the determinism contracts, checked statically.

Each rule encodes one invariant the reproduction's claims rest on — the
contracts the parity/regression suites only *sample* dynamically:

* :class:`NoGlobalRng` — bit-identical runs require every draw to come
  from an injected ``random.Random`` stream (see
  :mod:`repro.simulation.randoms`); the shared module-level RNG (or an
  unseeded ``np.random`` call) is cross-run, cross-import-order state.
* :class:`NoWallclock` — simulated time is the only clock inside the
  simulation packages; a wall-clock read that steers behaviour breaks
  replay.  Benchmarks and the CLI may measure wall time freely.
* :class:`NoUnorderedIteration` — iterating a ``set`` or a directory
  listing feeds hash-order (or filesystem-order) into whatever consumes
  the loop; anywhere that order can reach event scheduling or hashing it
  must be ``sorted()`` first.
* :class:`ConfigHashDrift` — every ``SimulationConfig`` field must be
  either hashed by ``config_hash`` or excluded with a written rationale
  in ``HASH_EXCLUDED_FIELDS``; the executable pops and the documented
  allowlist must agree exactly, or the ResultStore's cache keys drift.
* :class:`SlotsHotpath` — the classes on the PR-4 hot-path registry are
  allocated/touched millions of times per run and must declare
  ``__slots__``.
* :class:`ExportSync` — ``repro.__all__``, the imports that back it,
  ``repro._version.__version__`` and the ``pyproject.toml`` version stay
  in lock-step.

Every rule is a plain object satisfying the
:class:`~repro.devtools.staticcheck.framework.Checker` or
:class:`~repro.devtools.staticcheck.framework.ProjectChecker` protocol,
parameterized so the test suite can point it at fixture trees.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.reporting import Finding
from repro.devtools.staticcheck.framework import (
    Checker,
    ModuleSource,
    ProjectChecker,
    RuleScope,
)

__all__ = [
    "ConfigHashDrift",
    "ExportSync",
    "HOT_PATH_REGISTRY",
    "NoGlobalRng",
    "NoUnorderedIteration",
    "NoWallclock",
    "SlotsHotpath",
    "all_checkers",
    "rule_names",
]

#: classes on the hot path of the PR-4/PR-6 engines: allocated or touched
#: per event at population scale, so attribute storage must be slotted.
#: file (repo-relative) -> class names that must declare ``__slots__``.
HOT_PATH_REGISTRY: dict[str, tuple[str, ...]] = {
    "src/repro/simulation/engine.py": ("Simulator",),
    "src/repro/simulation/entities.py": ("SimPeer",),
    "src/repro/simulation/kernel.py": (
        "EventHandle",
        "HeapKernel",
        "CalendarKernel",
        "AutoCalendarKernel",
    ),
    "src/repro/simulation/arraystate.py": ("PeerArrays", "SessionTable"),
    "src/repro/simulation/arrayengine.py": ("ArrayEngine",),
    "src/repro/streaming/session.py": ("ActiveSession",),
}


def _attribute_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


class NoGlobalRng:
    """All randomness must flow from injected ``random.Random`` streams."""

    rule = "no-global-rng"
    description = (
        "module-level random.* / unseeded np.random.* calls are banned; "
        "draw from an injected random.Random stream"
    )
    #: np.random attributes that *construct* seeded generators (allowed)
    NUMPY_ALLOWED = frozenset(
        {"default_rng", "Generator", "RandomState", "SeedSequence"}
    )
    #: names importable from ``random`` that do not touch the module RNG
    RANDOM_ALLOWED = frozenset({"Random"})

    def __init__(self, scope: RuleScope | None = None) -> None:
        self.scope = scope or RuleScope(include=("src/repro/",))

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        random_aliases: set[str] = set()
        numpy_aliases: set[str] = set()
        numpy_random_aliases: set[str] = set()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            numpy_random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in self.RANDOM_ALLOWED:
                            findings.append(self._finding(
                                module, node.lineno,
                                f"'from random import {alias.name}' binds the "
                                "shared module-level RNG",
                            ))
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_aliases.add(alias.asname or "random")
        for call in _iter_calls(module.tree):
            chain = _attribute_chain(call.func)
            if chain is None or len(chain) < 2:
                continue
            head, attr = chain[0], chain[-1]
            if (
                len(chain) == 2
                and head in random_aliases
                and attr not in self.RANDOM_ALLOWED
            ):
                findings.append(self._finding(
                    module, call.lineno,
                    f"{head}.{attr}() draws from the shared module-level RNG",
                ))
            elif (
                len(chain) == 3
                and head in numpy_aliases
                and chain[1] == "random"
                and attr not in self.NUMPY_ALLOWED
            ):
                findings.append(self._finding(
                    module, call.lineno,
                    f"{'.'.join(chain)}() uses numpy's unseeded global RNG",
                ))
            elif (
                len(chain) == 2
                and head in numpy_random_aliases
                and attr not in self.NUMPY_ALLOWED
            ):
                findings.append(self._finding(
                    module, call.lineno,
                    f"{head}.{attr}() uses numpy's unseeded global RNG",
                ))
        return findings

    def _finding(self, module: ModuleSource, line: int, what: str) -> Finding:
        return Finding(
            file=module.relpath, line=line, rule=self.rule,
            message=f"{what}; inject a random.Random stream instead",
        )


class NoWallclock:
    """No wall-clock reads inside the deterministic simulation packages."""

    rule = "no-wallclock"
    description = (
        "time.time/perf_counter/datetime.now are banned in "
        "simulation/protocols/streaming/network (allowed in benchmarks/cli)"
    )
    TIME_FUNCS = frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "localtime",
        "gmtime",
    })
    DATETIME_METHODS = frozenset({"now", "utcnow", "today"})

    def __init__(self, scope: RuleScope | None = None) -> None:
        self.scope = scope or RuleScope(include=(
            "src/repro/simulation/",
            "src/repro/protocols/",
            "src/repro/streaming/",
            "src/repro/network/",
        ))

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        time_aliases: set[str] = set()
        datetime_module_aliases: set[str] = set()
        datetime_class_aliases: set[str] = set()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "time":
                        time_aliases.add(bound)
                    elif alias.name == "datetime":
                        datetime_module_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self.TIME_FUNCS:
                            findings.append(self._finding(
                                module, node.lineno,
                                f"'from time import {alias.name}'",
                            ))
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_class_aliases.add(alias.asname or alias.name)
        for call in _iter_calls(module.tree):
            chain = _attribute_chain(call.func)
            if chain is None or len(chain) < 2:
                continue
            head, attr = chain[0], chain[-1]
            if len(chain) == 2 and head in time_aliases and attr in self.TIME_FUNCS:
                findings.append(
                    self._finding(module, call.lineno, f"{head}.{attr}()")
                )
            elif attr in self.DATETIME_METHODS and (
                (len(chain) == 2 and head in datetime_class_aliases)
                or (
                    len(chain) == 3
                    and head in datetime_module_aliases
                    and chain[1] in ("datetime", "date")
                )
            ):
                findings.append(
                    self._finding(module, call.lineno, f"{'.'.join(chain)}()")
                )
        return findings

    def _finding(self, module: ModuleSource, line: int, what: str) -> Finding:
        return Finding(
            file=module.relpath, line=line, rule=self.rule,
            message=(
                f"{what} reads the wall clock inside a deterministic "
                "package; simulated time is the only clock here"
            ),
        )


class NoUnorderedIteration:
    """No iteration over sets or directory listings without ``sorted()``."""

    rule = "no-unordered-iteration"
    description = (
        "iterating set/frozenset values or os.listdir/Path.glob results "
        "leaks nondeterministic order; wrap in sorted()"
    )
    PATH_METHODS = frozenset({"glob", "rglob", "iterdir"})
    OS_FUNCS = frozenset({"listdir", "scandir"})
    #: wrappers whose iteration order is their argument's order
    TRANSPARENT = frozenset({"enumerate", "reversed", "tuple", "list", "iter"})
    #: consumers whose result cannot depend on iteration order, so a
    #: comprehension fed straight into them is exempt (``sum`` is NOT
    #: here: float addition is order-sensitive)
    ORDER_INSENSITIVE = frozenset(
        {"sorted", "min", "max", "any", "all", "set", "frozenset", "len"}
    )

    def __init__(self, scope: RuleScope | None = None) -> None:
        self.scope = scope or RuleScope(include=("src/repro/",))

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        exempt: set[ast.expr] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.ORDER_INSENSITIVE
                and node.args
                and isinstance(
                    node.args[0],
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp),
                )
            ):
                exempt.add(node.args[0])
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if node not in exempt:
                    iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                what = self._unordered(expr)
                if what is not None:
                    findings.append(Finding(
                        file=module.relpath, line=expr.lineno, rule=self.rule,
                        message=(
                            f"iterating {what} has no deterministic order; "
                            "sort it (or suppress with a rationale where "
                            "order provably cannot matter)"
                        ),
                    ))
        return findings

    def _unordered(self, expr: ast.expr) -> str | None:
        """A description of why ``expr`` iterates unordered, or None."""
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return f"{func.id}(...)"
                if func.id in self.TRANSPARENT and expr.args:
                    return self._unordered(expr.args[0])
                if func.id == "zip":
                    for arg in expr.args:
                        inner = self._unordered(arg)
                        if inner is not None:
                            return inner
                return None
            chain = _attribute_chain(func)
            if chain is None:
                return None
            if chain[-1] in self.PATH_METHODS:
                return f".{chain[-1]}() results"
            if len(chain) == 2 and chain[0] == "os" and chain[1] in self.OS_FUNCS:
                return f"os.{chain[1]}() results"
        return None


class SlotsHotpath:
    """Hot-path classes must declare ``__slots__``."""

    rule = "slots-hotpath"
    description = (
        "classes on the hot-path registry must declare __slots__ "
        "(directly or via @dataclass(slots=True))"
    )

    def __init__(self, registry: dict[str, tuple[str, ...]] | None = None) -> None:
        self.registry = dict(registry) if registry is not None else HOT_PATH_REGISTRY
        self.anchors = tuple(self.registry)

    def check_project(self, root: Path) -> Iterable[Finding]:
        findings: list[Finding] = []
        for relpath, class_names in sorted(self.registry.items()):
            path = root / relpath
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError, ValueError):
                findings.append(Finding(
                    file=relpath, line=0, rule=self.rule,
                    message="hot-path registry file cannot be parsed",
                ))
                continue
            defined = {
                node.name: node
                for node in ast.walk(tree)
                if isinstance(node, ast.ClassDef)
            }
            for name in class_names:
                node = defined.get(name)
                if node is None:
                    findings.append(Finding(
                        file=relpath, line=1, rule=self.rule,
                        message=(
                            f"hot-path registry names class {name} but the "
                            "file defines no such class (stale registry?)"
                        ),
                    ))
                elif not self._declares_slots(node):
                    findings.append(Finding(
                        file=relpath, line=node.lineno, rule=self.rule,
                        message=(
                            f"hot-path class {name} does not declare "
                            "__slots__ (per-event allocations must stay "
                            "compact; see the hot-path registry)"
                        ),
                    ))
        return findings

    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for statement in node.body:
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                chain = _attribute_chain(decorator.func)
                if chain and chain[-1] == "dataclass":
                    for keyword in decorator.keywords:
                        if keyword.arg == "slots" and (
                            isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            return True
        return False


class ConfigHashDrift:
    """``config_hash`` pops and ``HASH_EXCLUDED_FIELDS`` must agree."""

    rule = "config-hash-drift"
    description = (
        "every SimulationConfig field is hashed or excluded with a "
        "rationale in HASH_EXCLUDED_FIELDS; pops and allowlist must match"
    )

    def __init__(
        self,
        config_path: str = "src/repro/simulation/config.py",
        runspec_path: str = "src/repro/orchestration/runspec.py",
        config_class: str = "SimulationConfig",
        constant: str = "HASH_EXCLUDED_FIELDS",
        hash_function: str = "config_hash",
    ) -> None:
        self.config_path = config_path
        self.runspec_path = runspec_path
        self.config_class = config_class
        self.constant = constant
        self.hash_function = hash_function
        self.anchors = (config_path, runspec_path)

    def check_project(self, root: Path) -> Iterable[Finding]:
        findings: list[Finding] = []
        fields = self._config_fields(root, findings)
        allowlist = self._allowlist(root, findings)
        pops = self._pops(root, findings)
        if fields is None or allowlist is None or pops is None:
            return findings
        for name, (rationale, line) in sorted(allowlist.items()):
            if name not in fields:
                findings.append(Finding(
                    file=self.runspec_path, line=line, rule=self.rule,
                    message=(
                        f"{self.constant} excludes {name!r}, which is not a "
                        f"field of {self.config_class} (stale exclusion)"
                    ),
                ))
            if not rationale.strip():
                findings.append(Finding(
                    file=self.runspec_path, line=line, rule=self.rule,
                    message=(
                        f"exclusion of {name!r} has an empty rationale; "
                        "every excluded field must say why it cannot "
                        "change measurements"
                    ),
                ))
        for name, line in sorted(pops.items()):
            if name not in allowlist:
                findings.append(Finding(
                    file=self.runspec_path, line=line, rule=self.rule,
                    message=(
                        f"{self.hash_function} leaves {name!r} out of the "
                        f"hash but {self.constant} does not list it; add "
                        "the field with a rationale or hash it"
                    ),
                ))
        for name, (_, line) in sorted(allowlist.items()):
            if name not in pops:
                findings.append(Finding(
                    file=self.runspec_path, line=line, rule=self.rule,
                    message=(
                        f"{self.constant} lists {name!r} but "
                        f"{self.hash_function} still hashes it; drop the "
                        "entry or pop the field"
                    ),
                ))
        return findings

    def _parse(
        self, root: Path, relpath: str, findings: list[Finding]
    ) -> ast.Module | None:
        try:
            return ast.parse((root / relpath).read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(Finding(
                file=relpath, line=0, rule=self.rule,
                message=f"cannot parse for hash-drift analysis: {exc}",
            ))
            return None

    def _config_fields(
        self, root: Path, findings: list[Finding]
    ) -> set[str] | None:
        tree = self._parse(root, self.config_path, findings)
        if tree is None:
            return None
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == self.config_class:
                return {
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                }
        findings.append(Finding(
            file=self.config_path, line=1, rule=self.rule,
            message=f"class {self.config_class} not found",
        ))
        return None

    def _allowlist(
        self, root: Path, findings: list[Finding]
    ) -> dict[str, tuple[str, int]] | None:
        tree = self._parse(root, self.runspec_path, findings)
        if tree is None:
            return None
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                targets = [node.target.id]
            else:
                continue
            if self.constant not in targets or node.value is None:
                continue
            if not isinstance(node.value, ast.Dict):
                findings.append(Finding(
                    file=self.runspec_path, line=node.lineno, rule=self.rule,
                    message=f"{self.constant} must be a literal dict of "
                            "field name -> rationale string",
                ))
                return None
            allowlist: dict[str, tuple[str, int]] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    findings.append(Finding(
                        file=self.runspec_path,
                        line=getattr(key, "lineno", node.lineno),
                        rule=self.rule,
                        message=f"{self.constant} entries must be literal "
                                "str -> str pairs",
                    ))
                    continue
                allowlist[key.value] = (value.value, key.lineno)
            return allowlist
        findings.append(Finding(
            file=self.runspec_path, line=1, rule=self.rule,
            message=(
                f"{self.constant} not found; the hash-exclusion allowlist "
                "must be an importable module constant"
            ),
        ))
        return None

    def _pops(self, root: Path, findings: list[Finding]) -> dict[str, int] | None:
        tree = self._parse(root, self.runspec_path, findings)
        if tree is None:
            return None
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == self.hash_function
            ):
                pops: dict[str, int] = {}
                for call in (
                    n for n in ast.walk(node) if isinstance(n, ast.Call)
                ):
                    func = call.func
                    if not (
                        isinstance(func, ast.Attribute) and func.attr == "pop"
                    ):
                        continue
                    if not call.args:
                        continue
                    first = call.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        pops[first.value] = call.lineno
                    else:
                        findings.append(Finding(
                            file=self.runspec_path, line=call.lineno,
                            rule=self.rule,
                            message=(
                                f"{self.hash_function} pops a non-literal "
                                "key; exclusions must be literal so they "
                                "can be audited statically"
                            ),
                        ))
                return pops
        findings.append(Finding(
            file=self.runspec_path, line=1, rule=self.rule,
            message=f"function {self.hash_function} not found",
        ))
        return None


class ExportSync:
    """``__all__``, its imports, ``_version`` and pyproject stay in sync."""

    rule = "export-sync"
    description = (
        "repro.__all__ must match the names bound in __init__, export "
        "__version__ from repro._version, and agree with pyproject.toml"
    )

    def __init__(
        self,
        init_path: str = "src/repro/__init__.py",
        version_path: str = "src/repro/_version.py",
        pyproject_path: str = "pyproject.toml",
        version_module: str = "repro._version",
    ) -> None:
        self.init_path = init_path
        self.version_path = version_path
        self.pyproject_path = pyproject_path
        self.version_module = version_module
        self.anchors = (init_path, version_path)

    def check_project(self, root: Path) -> Iterable[Finding]:
        findings: list[Finding] = []
        try:
            tree = ast.parse((root / self.init_path).read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(Finding(
                file=self.init_path, line=0, rule=self.rule,
                message=f"cannot parse package __init__: {exc}",
            ))
            return findings
        bound: dict[str, int] = {}
        version_source: str | None = None
        exported: list[tuple[str, int]] | None = None
        all_line = 1
        for node in tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    bound.setdefault(name, node.lineno)
                    if name == "__version__" and isinstance(node, ast.ImportFrom):
                        version_source = node.module
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.setdefault(node.name, node.lineno)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            all_line = node.lineno
                            exported = self._literal_names(node, findings)
                        else:
                            bound.setdefault(target.id, node.lineno)
        if exported is None:
            findings.append(Finding(
                file=self.init_path, line=1, rule=self.rule,
                message="__all__ is missing or not a literal list of strings",
            ))
            return findings
        seen: set[str] = set()
        for name, line in exported:
            if name in seen:
                findings.append(Finding(
                    file=self.init_path, line=line, rule=self.rule,
                    message=f"__all__ lists {name!r} twice",
                ))
            seen.add(name)
            if name not in bound:
                findings.append(Finding(
                    file=self.init_path, line=line, rule=self.rule,
                    message=f"__all__ exports {name!r} but __init__ never "
                            "binds it",
                ))
        for name, line in sorted(bound.items()):
            if name.startswith("_"):
                continue
            if name not in seen:
                findings.append(Finding(
                    file=self.init_path, line=line, rule=self.rule,
                    message=(
                        f"{name!r} is bound in __init__ but missing from "
                        "__all__; export it or make it private"
                    ),
                ))
        if "__version__" not in seen:
            findings.append(Finding(
                file=self.init_path, line=all_line, rule=self.rule,
                message="__all__ must export __version__",
            ))
        elif version_source != self.version_module:
            findings.append(Finding(
                file=self.init_path, line=bound.get("__version__", 1),
                rule=self.rule,
                message=(
                    f"__version__ must be imported from {self.version_module} "
                    f"(found {version_source!r})"
                ),
            ))
        findings.extend(self._check_version_files(root))
        return findings

    @staticmethod
    def _literal_names(
        node: ast.Assign, findings: list[Finding]
    ) -> list[tuple[str, int]]:
        names: list[tuple[str, int]] = []
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append((element.value, element.lineno))
        return names

    def _check_version_files(self, root: Path) -> list[Finding]:
        findings: list[Finding] = []
        version: str | None = None
        version_line = 1
        try:
            tree = ast.parse(
                (root / self.version_path).read_text(encoding="utf-8")
            )
            for node in tree.body:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == "__version__"
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, str)
                        ):
                            version = node.value.value
                            version_line = node.lineno
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(Finding(
                file=self.version_path, line=0, rule=self.rule,
                message=f"cannot parse version module: {exc}",
            ))
            return findings
        if version is None:
            findings.append(Finding(
                file=self.version_path, line=1, rule=self.rule,
                message="__version__ string literal not found",
            ))
            return findings
        pyproject = root / self.pyproject_path
        if pyproject.exists():
            import tomllib

            try:
                declared = tomllib.loads(
                    pyproject.read_text(encoding="utf-8")
                ).get("project", {}).get("version")
            except tomllib.TOMLDecodeError as exc:
                findings.append(Finding(
                    file=self.pyproject_path, line=0, rule=self.rule,
                    message=f"cannot parse pyproject.toml: {exc}",
                ))
                return findings
            if declared != version:
                findings.append(Finding(
                    file=self.version_path, line=version_line, rule=self.rule,
                    message=(
                        f"__version__ is {version!r} but pyproject.toml "
                        f"declares {declared!r}; bump both together"
                    ),
                ))
        return findings


def all_checkers(
    rules: Sequence[str] | None = None,
) -> list[Checker | ProjectChecker]:
    """Every default rule instance, optionally filtered to ``rules``."""
    checkers: list[Checker | ProjectChecker] = [
        NoGlobalRng(),
        NoWallclock(),
        NoUnorderedIteration(),
        ConfigHashDrift(),
        SlotsHotpath(),
        ExportSync(),
    ]
    if rules is None:
        return checkers
    by_name = {checker.rule: checker for checker in checkers}
    unknown = [name for name in rules if name not in by_name]
    if unknown:
        raise ValueError(
            f"unknown detlint rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(by_name))}"
        )
    return [by_name[name] for name in rules]


def rule_names() -> list[str]:
    """The rule ids of every default checker, sorted."""
    return sorted(checker.rule for checker in all_checkers())
