"""The detlint checker harness: sources, scoping, suppressions, baseline.

The framework knows nothing about the project's specific contracts; it
provides the machinery every rule shares:

* :class:`ModuleSource` — a parsed Python file (text, AST, suppression
  table) handed to per-module checkers;
* the :class:`Checker` / :class:`ProjectChecker` protocols — per-module
  AST rules versus whole-repository cross-checks (a project rule reads
  several files at once, e.g. comparing ``SimulationConfig`` fields with
  the hash-exclusion allowlist);
* :class:`RuleScope` — per-path rule configuration as include/exclude
  repository-relative prefixes, so e.g. wall-clock reads are banned in
  ``src/repro/simulation`` but fine in ``benchmarks``;
* inline suppressions — a ``# detlint: ignore[rule]`` (or a bare
  ``# detlint: ignore``) comment on the flagged line silences it;
* an optional JSON baseline file of known findings, so the linter can be
  adopted on a tree with historic debt and still fail on anything new;
* :func:`run_detlint` — walk the selected paths, run every applicable
  checker, and return the surviving findings sorted.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.devtools.reporting import Finding

__all__ = [
    "Checker",
    "ModuleSource",
    "ProjectChecker",
    "RuleScope",
    "load_baseline",
    "load_module",
    "parse_suppressions",
    "run_detlint",
    "write_baseline",
]

#: directories never scanned (generated output, caches, VCS internals)
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "output", "api"}
)

#: ``# detlint: ignore`` or ``# detlint: ignore[rule-a,rule-b]``
_SUPPRESSION = re.compile(
    r"#\s*detlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?"
)

#: the file-level baseline schema tag
BASELINE_SCHEMA = "repro.detlint.baseline.v1"


@dataclass(frozen=True)
class RuleScope:
    """Where a rule applies, as repository-relative path prefixes.

    A module is in scope when its posix relative path starts with any
    ``include`` prefix and with no ``exclude`` prefix.  The default
    scope (empty include prefix) matches everything scanned.
    """

    include: tuple[str, ...] = ("",)
    exclude: tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        """True when ``relpath`` falls under this scope."""
        if any(relpath.startswith(prefix) for prefix in self.exclude):
            return False
        return any(relpath.startswith(prefix) for prefix in self.include)


@dataclass(frozen=True)
class ModuleSource:
    """One parsed Python source file, ready for per-module checkers."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    #: line -> suppressed rule ids; ``None`` value = every rule suppressed
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)

    def suppressed(self, line: int, rule: str) -> bool:
        """True when ``rule`` is silenced on ``line`` by an inline comment."""
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules


@runtime_checkable
class Checker(Protocol):
    """A per-module rule: inspect one parsed file, yield findings."""

    rule: str
    description: str
    scope: RuleScope

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Findings for ``module`` (already known to be in scope)."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class ProjectChecker(Protocol):
    """A whole-repository rule cross-checking several files at once.

    ``anchors`` names the repository-relative files the rule reads; the
    rule runs when at least one anchor falls under the selected paths.
    """

    rule: str
    description: str
    anchors: tuple[str, ...]

    def check_project(self, root: Path) -> Iterable[Finding]:
        """Findings for the tree rooted at ``root``."""
        ...  # pragma: no cover - protocol


def parse_suppressions(text: str) -> dict[int, frozenset[str] | None]:
    """The per-line suppression table of a source file.

    Keys are 1-based line numbers carrying a ``# detlint: ignore``
    comment; the value is the frozenset of silenced rule ids, or ``None``
    when the bare form silences every rule on that line.
    """
    table: dict[int, frozenset[str] | None] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[number] = None
        else:
            table[number] = frozenset(
                name.strip() for name in rules.split(",") if name.strip()
            )
    return table


def load_module(root: Path, path: Path) -> ModuleSource | Finding:
    """Parse ``path`` into a :class:`ModuleSource`.

    A file that cannot be read or parsed returns a ``parse-error``
    finding instead — a broken file must fail the lint run, not dodge it.
    """
    relpath = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 0) or 0
        return Finding(
            file=relpath, line=line, rule="parse-error", message=str(exc)
        )
    return ModuleSource(
        path=path,
        relpath=relpath,
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )


def iter_python_files(root: Path, paths: Sequence[str]) -> list[Path]:
    """Every ``.py`` file under the selected paths, skipping generated dirs."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for selector in paths:
        target = root / selector
        if target.is_file() and target.suffix == ".py":
            candidates: Iterable[Path] = [target]
        elif target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            continue
        for candidate in candidates:
            relative = candidate.relative_to(root)
            if any(part in SKIP_DIR_NAMES for part in relative.parts[:-1]):
                continue
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def _covered(relpath: str, paths: Sequence[str]) -> bool:
    """True when ``relpath`` lies under one of the selected paths."""
    for selector in paths:
        prefix = selector.rstrip("/")
        if relpath == prefix or relpath.startswith(prefix + "/"):
            return True
    return False


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The ``(file, rule, message)`` triples a baseline file accepts."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path} is not a detlint baseline (schema "
            f"{data.get('schema')!r}, expected {BASELINE_SCHEMA!r})"
        )
    return {
        (entry["file"], entry["rule"], entry["message"])
        for entry in data.get("findings", [])
    }


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as a baseline accepting exactly these problems."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"file": f.file, "rule": f.rule, "message": f.message}
            for f in sorted(findings)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _suppression_table_for(
    root: Path, relpath: str, cache: dict[str, dict[int, frozenset[str] | None]]
) -> dict[int, frozenset[str] | None]:
    """Suppressions of an arbitrary finding target, loaded lazily."""
    if relpath not in cache:
        target = root / relpath
        try:
            text = target.read_text(encoding="utf-8")
        except OSError:
            text = ""
        cache[relpath] = parse_suppressions(text)
    return cache[relpath]


def run_detlint(
    root: Path,
    paths: Sequence[str] | None = None,
    checkers: Sequence[Checker | ProjectChecker] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
) -> list[Finding]:
    """Run every applicable checker over the selected paths.

    ``paths`` are repository-relative files or directories (default:
    ``src``, ``benchmarks``, ``examples``).  Per-module checkers see the
    files their :class:`RuleScope` admits; project checkers run when one
    of their anchor files is covered.  Inline suppressions and baseline
    entries are filtered out before the sorted findings return.
    """
    from repro.devtools.staticcheck.rules import all_checkers

    root = root.resolve()
    paths = list(paths) if paths else ["src", "benchmarks", "examples"]
    active = list(checkers) if checkers is not None else all_checkers()
    module_checkers = [c for c in active if hasattr(c, "check_module")]
    project_checkers = [c for c in active if hasattr(c, "check_project")]

    findings: list[Finding] = []
    suppression_cache: dict[str, dict[int, frozenset[str] | None]] = {}
    for path in iter_python_files(root, paths):
        loaded = load_module(root, path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        suppression_cache[loaded.relpath] = loaded.suppressions
        for checker in module_checkers:
            if not checker.scope.applies(loaded.relpath):
                continue
            for finding in checker.check_module(loaded):
                if not loaded.suppressed(finding.line, finding.rule):
                    findings.append(finding)

    for checker in project_checkers:
        if not any(_covered(anchor, paths) for anchor in checker.anchors):
            continue
        for finding in checker.check_project(root):
            table = _suppression_table_for(root, finding.file, suppression_cache)
            rules = table.get(finding.line, ())
            if finding.line in table and (
                rules is None or finding.rule in rules
            ):
                continue
            findings.append(finding)

    if baseline:
        findings = [
            f
            for f in findings
            if (f.file, f.rule, f.message) not in baseline
        ]
    return sorted(findings)
