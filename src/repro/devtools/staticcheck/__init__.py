"""detlint — AST-based determinism & invariant analysis for this repo.

The parity suites sample the determinism contracts (a few dozen configs
per run); detlint enforces them statically over *every* line.  The
framework (:mod:`~repro.devtools.staticcheck.framework`) is a small
pluggable checker harness — per-module AST checkers and whole-project
cross-checkers, per-path rule scoping, inline
``# detlint: ignore[rule]`` suppressions, and an optional baseline file
— and the project rules (:mod:`~repro.devtools.staticcheck.rules`)
encode the contracts the simulation's reproducibility rests on:

``no-global-rng``
    all randomness flows from injected ``random.Random`` streams;
``no-wallclock``
    no wall-clock reads inside simulation/protocols/streaming/network;
``no-unordered-iteration``
    no iteration over sets or directory listings without ``sorted()``;
``config-hash-drift``
    every ``SimulationConfig`` field is hashed or excluded-with-rationale
    in ``HASH_EXCLUDED_FIELDS``;
``slots-hotpath``
    hot-path classes declare ``__slots__``;
``export-sync``
    ``repro.__all__``, the imports backing it, ``repro._version`` and
    ``pyproject.toml`` agree.

Run it as ``python -m repro lint`` or
``python -m repro.devtools.staticcheck``.
"""

from repro.devtools.reporting import Finding
from repro.devtools.staticcheck.framework import (
    Checker,
    ModuleSource,
    ProjectChecker,
    RuleScope,
    run_detlint,
)
from repro.devtools.staticcheck.rules import all_checkers

__all__ = [
    "Checker",
    "Finding",
    "ModuleSource",
    "ProjectChecker",
    "RuleScope",
    "all_checkers",
    "run_detlint",
]
