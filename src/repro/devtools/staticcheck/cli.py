"""The detlint command line, shared by ``repro lint`` and ``-m`` runs.

``python -m repro.devtools.staticcheck [PATHS...]`` (or the ``repro
lint`` subcommand, which forwards here) walks the selected paths from
the repository root, runs every rule in scope, and exits 0 when clean,
1 when any unsuppressed error-severity finding survives, 2 on usage
errors — the shared convention of :mod:`repro.devtools.reporting`.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.reporting import report
from repro.devtools.staticcheck.framework import (
    load_baseline,
    run_detlint,
    write_baseline,
)
from repro.devtools.staticcheck.rules import all_checkers

__all__ = ["build_parser", "main", "run"]

#: the paths a bare invocation lints (the acceptance surface)
DEFAULT_PATHS: tuple[str, ...] = ("src", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    """Construct the detlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "detlint: AST-based determinism & invariant analysis "
            "(no-global-rng, no-wallclock, no-unordered-iteration, "
            "config-hash-drift, slots-hotpath, export-sync)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint, relative to --root "
             f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root the paths and rule anchors are relative to "
             "(default: the current directory)",
    )
    parser.add_argument(
        "--rules", nargs="+", default=None, metavar="RULE",
        help="run only these rules (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the available rules and exit",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="finding output format (default text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of known findings to tolerate",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current findings as a baseline file and exit 0",
    )
    return parser


def run(
    paths: Sequence[str] | None = None,
    *,
    root: str = ".",
    rules: Sequence[str] | None = None,
    list_rules: bool = False,
    output_format: str = "text",
    baseline: str | None = None,
    write_baseline_path: str | None = None,
) -> int:
    """Execute a lint run; returns the process exit code."""
    try:
        checkers = all_checkers(rules)
    except ValueError as exc:
        print(f"detlint: error: {exc}", file=sys.stderr)
        return 2
    if list_rules:
        for checker in sorted(checkers, key=lambda c: c.rule):
            print(f"{checker.rule}: {checker.description}")
        return 0
    root_path = Path(root).resolve()
    known: set[tuple[str, str, str]] | None = None
    if baseline:
        try:
            known = load_baseline(Path(baseline))
        except (OSError, ValueError) as exc:
            print(f"detlint: error: {exc}", file=sys.stderr)
            return 2
    findings = run_detlint(
        root_path, paths=paths or list(DEFAULT_PATHS),
        checkers=checkers, baseline=known,
    )
    if write_baseline_path:
        write_baseline(Path(write_baseline_path), findings)
        print(
            f"detlint: wrote baseline with {len(findings)} finding(s) "
            f"to {write_baseline_path}"
        )
        return 0
    if output_format == "json":
        payload = [
            {
                "file": f.file, "line": f.line, "rule": f.rule,
                "message": f.message, "severity": f.severity,
            }
            for f in findings
        ]
        print(_json.dumps(payload, indent=2))
        return 1 if any(f.severity == "error" for f in findings) else 0
    scanned = " ".join(paths or DEFAULT_PATHS)
    return report(
        "detlint", findings,
        ok_detail=f"{len(checkers)} rule(s) over {scanned}",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.devtools.staticcheck``."""
    args = build_parser().parse_args(argv)
    return run(
        args.paths or None,
        root=args.root,
        rules=args.rules,
        list_rules=args.list_rules,
        output_format=args.format,
        baseline=args.baseline,
        write_baseline_path=args.write_baseline,
    )
