"""``python -m repro.devtools.staticcheck`` — run detlint directly."""

import sys

from repro.devtools.staticcheck.cli import main

if __name__ == "__main__":  # pragma: no cover - thin module runner
    sys.exit(main())
