"""Benchmark-JSON schema checks behind ``scripts/check_bench_json.py``.

Validates a benchmark export against its schema so the CI perf-smoke
job (and users) can trust the export contracts stay stable.  The file's
``schema`` tag selects the validator:

* ``repro.bench_kernel_scaling.v1`` — ``bench_kernel_scaling.py``:
  per-run throughput fields and per-scale speedup summaries;
* ``repro.bench_engine_scaling.v1`` — ``bench_engine_scaling.py``:
  per-engine setup/run timing splits, array-vs-object speedups and the
  megacity end-to-end record.

Problems surface as :class:`~repro.devtools.reporting.Finding` objects;
the first schema violation stops the walk (everything after a structural
mismatch would be noise).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.reporting import Finding, report

__all__ = ["SchemaProblem", "check_file", "main"]

KERNEL_SCHEMA = "repro.bench_kernel_scaling.v1"
ENGINE_SCHEMA = "repro.bench_engine_scaling.v1"

KERNEL_RUN_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "mode": str,
    "engine": str,
    "kernel": str,
    "events": int,
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
}
KERNEL_SPEEDUP_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "fast_kernel": str,
    "events_per_sec": (int, float),
    "speedup_vs_full_heap": (int, float),
}

ENGINE_RUN_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "scenario": str,
    "engine": str,
    "events": int,
    "setup_seconds": (int, float),
    "run_seconds": (int, float),
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
}
ENGINE_SPEEDUP_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "events_per_sec_object": (int, float),
    "events_per_sec_array": (int, float),
    "speedup_array_vs_object": (int, float),
    "speedup_total_wall": (int, float),
}
MEGACITY_FIELDS = {
    "scenario": str,
    "scale": (int, float),
    "peers": int,
    "engine": str,
    "completed": bool,
    "events": int,
    "setup_seconds": (int, float),
    "run_seconds": (int, float),
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
}


class SchemaProblem(ValueError):
    """A benchmark export violates its schema."""


def _fail(message: str) -> None:
    raise SchemaProblem(message)


def _check_fields(label: str, entry: object, fields: dict) -> None:
    if not isinstance(entry, dict):
        _fail(f"{label} is not an object")
    for name, types in fields.items():
        if name not in entry:
            _fail(f"{label} missing field {name!r}")
        value = entry[name]
        if types is not bool and isinstance(value, bool):
            _fail(f"{label}.{name} has type bool, expected {types}")
        if not isinstance(value, types):
            _fail(f"{label}.{name} has type {type(value).__name__}, "
                  f"expected {types}")


def _check_common_header(data: dict) -> list:
    """Schema-independent envelope: version, scenario, non-empty runs."""
    if not isinstance(data.get("version"), str):
        _fail("missing version stamp")
    if not isinstance(data.get("scenario"), str):
        _fail("missing scenario name")
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        _fail("runs must be a non-empty list")
    return runs


def _check_kernel_scaling(data: dict) -> str:
    runs = _check_common_header(data)
    for index, run in enumerate(runs):
        _check_fields(f"runs[{index}]", run, KERNEL_RUN_FIELDS)
        if run["events_per_sec"] <= 0 or run["wall_seconds"] <= 0:
            _fail(f"runs[{index}] has non-positive throughput")
        probes = run.get("probes")
        if probes is not None and not isinstance(probes, list):
            _fail(f"runs[{index}].probes must be null or a list")
    speedups = data.get("speedups")
    if not isinstance(speedups, list) or not speedups:
        _fail("speedups must be a non-empty list")
    for index, entry in enumerate(speedups):
        _check_fields(f"speedups[{index}]", entry, KERNEL_SPEEDUP_FIELDS)
        vs_pre = entry.get("speedup_vs_pre_refactor")
        if vs_pre is not None and (
            isinstance(vs_pre, bool) or not isinstance(vs_pre, (int, float))
        ):
            _fail(f"speedups[{index}].speedup_vs_pre_refactor must be "
                  "null or numeric")
    return f"{len(runs)} runs, {len(speedups)} speedup summaries"


def _check_engine_scaling(data: dict) -> str:
    runs = _check_common_header(data)
    for index, run in enumerate(runs):
        _check_fields(f"runs[{index}]", run, ENGINE_RUN_FIELDS)
        if run["engine"] not in ("object", "array"):
            _fail(f"runs[{index}].engine is {run['engine']!r}")
        if run["events_per_sec"] <= 0 or run["run_seconds"] <= 0:
            _fail(f"runs[{index}] has non-positive throughput")
    speedups = data.get("speedups")
    if not isinstance(speedups, list) or not speedups:
        _fail("speedups must be a non-empty list")
    for index, entry in enumerate(speedups):
        _check_fields(f"speedups[{index}]", entry, ENGINE_SPEEDUP_FIELDS)
        if entry["speedup_array_vs_object"] <= 0:
            _fail(f"speedups[{index}] has non-positive speedup")
    megacity = data.get("megacity")
    _check_fields("megacity", megacity, MEGACITY_FIELDS)
    if megacity["engine"] != "array":
        _fail(f"megacity.engine is {megacity['engine']!r}, expected 'array'")
    if not megacity["completed"] or megacity["events"] <= 0:
        _fail("megacity run did not complete")
    return (f"{len(runs)} runs, {len(speedups)} speedup summaries, "
            f"megacity at scale {megacity['scale']}")


_CHECKERS = {
    KERNEL_SCHEMA: _check_kernel_scaling,
    ENGINE_SCHEMA: _check_engine_scaling,
}


def check_file(path: Path) -> tuple[list[Finding], str]:
    """Validate one benchmark export; findings plus an ok-summary string."""

    def finding(message: str) -> tuple[list[Finding], str]:
        return [Finding(
            file=str(path), line=0, rule="bench-schema", message=message
        )], ""

    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return finding(f"cannot read {path}: {exc}")
    if not isinstance(data, dict):
        return finding("top level is not an object")
    schema = data.get("schema")
    checker = _CHECKERS.get(schema)
    if checker is None:
        return finding(f"schema is {schema!r}, expected one of "
                       f"{sorted(_CHECKERS)}")
    try:
        summary = checker(data)
    except SchemaProblem as exc:
        return finding(str(exc))
    return [], f"[{schema}] {summary}"


def main(argv: list[str]) -> int:
    """Validate the benchmark JSON file named on the command line."""
    if len(argv) != 2:
        print("usage: check_bench_json.py PATH/TO/BENCH_file.json")
        return 2
    findings, summary = check_file(Path(argv[1]))
    return report("check_bench_json", findings, ok_detail=summary)
