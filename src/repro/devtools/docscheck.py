"""Documentation-suite checks: links, cross-references, docstrings.

The library backend of ``scripts/check_docs.py`` (a thin CI shim), run
in the tier-1 suite via ``tests/test_docs.py``.  It keeps the docs from
rotting:

* every relative markdown link in ``README.md`` and ``docs/*.md``
  resolves to an existing file;
* every backticked repository path (``src/repro/...``,
  ``simulation/lifecycle.py``, ...) exists — generated artifacts under
  ``benchmarks/output``/``docs/api`` and friends are exempt;
* every backticked dotted reference (``repro.simulation.kernel``,
  ``repro.orchestration.run_batch``) imports, either as a module or as
  an attribute of one;
* every ``--flag`` mentioned on a documented ``python -m repro`` /
  ``repro-p2pstream`` command line exists on some CLI subcommand, and
  every documented subcommand is real;
* every public symbol exported by ``repro.__all__`` and every public
  module has a docstring, so the ``pdoc`` API reference renders without
  blank pages.

All problems surface as :class:`~repro.devtools.reporting.Finding`
objects under the shared exit-code convention.
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
import pkgutil
import re
import sys
from pathlib import Path

from repro.devtools.reporting import Finding, report

__all__ = [
    "DOC_FILES",
    "check_api_docstrings",
    "check_cli_references",
    "check_markdown",
    "cli_vocabulary",
    "documented_cli_lines",
    "dotted_reference_resolves",
    "is_generated",
    "iter_doc_files",
    "main",
    "resolve_repo_path",
]

#: markdown files the checker owns
DOC_FILES = ("README.md", "docs/ARCHITECTURE.md", "docs/EXPERIMENTS.md")

#: path prefixes that are generated at runtime, not committed
GENERATED_PREFIXES = (
    "benchmarks/output",
    "docs/api",
    "cache",
    "results",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)#][^)]*)\)")
_CODE = re.compile(r"`([^`]+)`")
_PATHLIKE = re.compile(r"^[\w./-]+\.(py|md|json|txt|yml)$")
_DOTTED = re.compile(r"^repro(\.\w+)+$")
_FLAG = re.compile(r"--[a-z][a-z0-9-]*")


def iter_doc_files(root: Path):
    """The owned markdown files that exist under ``root``."""
    for name in DOC_FILES:
        path = root / name
        if path.exists():
            yield path


def is_generated(path_text: str) -> bool:
    """True for paths generated at runtime (exempt from existence checks)."""
    return any(path_text.startswith(prefix) for prefix in GENERATED_PREFIXES)


def resolve_repo_path(root: Path, doc: Path, text: str) -> bool:
    """A backticked or linked path may be repo-rooted, package-rooted or
    doc-relative."""
    candidates = [root / text, root / "src" / "repro" / text, doc.parent / text]
    return any(candidate.exists() for candidate in candidates)


def _line_of(text: str, position: int) -> int:
    """1-based line number of a character offset in ``text``."""
    return text.count("\n", 0, position) + 1


def check_markdown(root: Path) -> list[Finding]:
    """Link targets, path references and dotted references in the docs."""
    findings: list[Finding] = []
    for doc in iter_doc_files(root):
        text = doc.read_text(encoding="utf-8")
        relative = doc.relative_to(root).as_posix()
        for match in _LINK.finditer(text):
            target = match.group(1).strip()
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target or is_generated(target):
                continue
            if not resolve_repo_path(root, doc, target):
                findings.append(Finding(
                    file=relative, line=_line_of(text, match.start()),
                    rule="doc-link",
                    message=f"broken link target {target!r}",
                ))
        for match in _CODE.finditer(text):
            token = match.group(1).strip()
            if _PATHLIKE.match(token) and "/" in token:
                if is_generated(token):
                    continue
                if not resolve_repo_path(root, doc, token):
                    findings.append(Finding(
                        file=relative, line=_line_of(text, match.start()),
                        rule="doc-path",
                        message=f"referenced path {token!r} does not exist",
                    ))
            elif _DOTTED.match(token):
                if not dotted_reference_resolves(token):
                    findings.append(Finding(
                        file=relative, line=_line_of(text, match.start()),
                        rule="doc-reference",
                        message=f"dotted reference {token!r} does not import",
                    ))
    return findings


def dotted_reference_resolves(dotted: str) -> bool:
    """True when ``dotted`` is an importable module or a module attribute."""
    try:
        if importlib.util.find_spec(dotted) is not None:
            return True
    except (ImportError, ModuleNotFoundError, ValueError):
        pass
    module_name, _, attribute = dotted.rpartition(".")
    try:
        module = importlib.import_module(module_name)
    except ImportError:
        return False
    return hasattr(module, attribute)


def cli_vocabulary() -> tuple[set[str], set[str]]:
    """The CLI's real subcommands and the union of their option strings.

    Walks subparsers recursively, so nested subcommands (``study shard``,
    ``study merge``, ...) contribute both their names and their flags.
    """
    import argparse

    from repro.cli import build_parser

    commands: set[str] = set()
    flags: set[str] = set()

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name, sub in action.choices.items():
                    commands.add(name)
                    walk(sub)
            else:
                flags.update(
                    opt for opt in action.option_strings
                    if opt.startswith("--")
                )

    walk(build_parser())
    return commands, flags


def documented_cli_lines(text: str) -> list[str]:
    """Command lines invoking the CLI, with backslash continuations joined."""
    lines: list[str] = []
    pending: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if pending is not None:
            pending = pending.rstrip("\\") + " " + line
            if not line.endswith("\\"):
                lines.append(pending)
                pending = None
            continue
        if "python -m repro " in line or "repro-p2pstream " in line:
            if line.endswith("\\"):
                pending = line
            else:
                lines.append(line)
    if pending is not None:
        lines.append(pending)
    return lines


def check_cli_references(root: Path) -> list[Finding]:
    """Documented CLI commands and flags must exist on the real parser."""
    findings: list[Finding] = []
    commands, flags = cli_vocabulary()
    for doc in iter_doc_files(root):
        relative = doc.relative_to(root).as_posix()
        for line in documented_cli_lines(doc.read_text(encoding="utf-8")):
            if "python -m repro " in line:
                tail = line.split("python -m repro ", 1)[1]
            else:
                tail = line.split("repro-p2pstream ", 1)[1]
            words = tail.split()
            if words and not words[0].startswith("-"):
                command = words[0]
                if command not in commands:
                    findings.append(Finding(
                        file=relative, line=0, rule="doc-cli",
                        message=(
                            f"documented command {command!r} is not a CLI "
                            f"subcommand (known: {', '.join(sorted(commands))})"
                        ),
                    ))
            for flag in _FLAG.findall(line):
                if flag not in flags:
                    findings.append(Finding(
                        file=relative, line=0, rule="doc-cli",
                        message=f"documented flag {flag!r} exists on no "
                                "CLI subcommand",
                    ))
    return findings


def _module_relpath(module_name: str, module: object) -> str:
    """Best-effort repo-relative source path of an imported module."""
    file = getattr(module, "__file__", None)
    if file and file.endswith("__init__.py"):
        return "src/" + module_name.replace(".", "/") + "/__init__.py"
    return "src/" + module_name.replace(".", "/") + ".py"


def check_api_docstrings() -> list[Finding]:
    """Every export in ``repro.__all__`` and every module has a docstring."""
    findings: list[Finding] = []
    init_path = "src/repro/__init__.py"
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name, None)
        if obj is None:
            findings.append(Finding(
                file=init_path, line=0, rule="doc-docstring",
                message=f"repro.__all__ exports missing symbol {name!r}",
            ))
            continue
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # data exports (version string, name tuples)
        if not inspect.getdoc(obj):
            findings.append(Finding(
                file=init_path, line=0, rule="doc-docstring",
                message=f"repro.{name} has no docstring",
            ))
            continue
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                target = member.fget if isinstance(member, property) else member
                if callable(target) and not inspect.getdoc(target):
                    findings.append(Finding(
                        file=init_path, line=0, rule="doc-docstring",
                        message=f"repro.{name}.{member_name} has no docstring",
                    ))
    for module_info in pkgutil.walk_packages(repro.__path__, "repro."):
        if module_info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        module = importlib.import_module(module_info.name)
        if not module.__doc__:
            findings.append(Finding(
                file=_module_relpath(module_info.name, module), line=1,
                rule="doc-docstring",
                message=f"module {module_info.name} has no docstring",
            ))
    return findings


def main(argv: list[str]) -> int:
    """Run every docs check from the repo root (optional first argument)."""
    default_root = Path(__file__).resolve().parents[3]
    root = Path(argv[1]).resolve() if len(argv) > 1 else default_root
    sys.path.insert(0, str(root / "src"))
    findings = (
        check_markdown(root)
        + check_cli_references(root)
        + check_api_docstrings()
    )
    documents = len(list(iter_doc_files(root)))
    return report(
        "check_docs", findings,
        ok_detail=f"{documents} documents, links + CLI references + "
                  "API docstrings",
    )
