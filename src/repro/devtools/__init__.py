"""Developer tooling: shared check reporting and the detlint analyzer.

Everything under ``repro.devtools`` is tooling *about* the codebase, not
part of the simulation itself: the shared :class:`~repro.devtools.reporting.Finding`
/ exit-code conventions every repository checker speaks, the library
backends of the ``scripts/check_*.py`` CI shims
(:mod:`~repro.devtools.docscheck`, :mod:`~repro.devtools.benchcheck`,
:mod:`~repro.devtools.studycheck`), and the
:mod:`~repro.devtools.staticcheck` package — ``detlint``, the AST-based
determinism and invariant analyzer run by ``python -m repro lint``.

Nothing here is imported by the simulation packages; the devtools layer
depends on them (it parses and cross-checks their sources), never the
other way around.
"""

from repro.devtools.reporting import Finding, exit_code, print_findings, report

__all__ = ["Finding", "exit_code", "print_findings", "report"]
