"""Single source of the package version.

Lives in its own module (instead of ``repro/__init__``) so that deep
submodules — notably the study/record machinery, which stamps every
:class:`~repro.orchestration.study.RunRecord` with the version that
produced it — can import the version without importing the top-level
package mid-initialisation.
"""

__version__ = "1.5.0"
