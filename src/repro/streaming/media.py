"""Media-file geometry (Section 2, assumptions 2 and 5).

The media stream is Constant-Bit-Rate with playback rate ``R0`` and is cut
into equal-size segments whose playback time ``δt`` is "in the magnitude of
seconds".  The paper's evaluation streams a 60-minute video.

Everything downstream works in *slots* (integer multiples of ``δt``); this
class is the single place where slots are tied back to wall-clock seconds
and to bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MediaFile"]

#: Paper default: a 60-minute show.
DEFAULT_SHOW_SECONDS = 60 * 60.0
#: Paper: "δt is typically in the magnitude of seconds" — we default to 5 s.
DEFAULT_SEGMENT_SECONDS = 5.0
#: A generic streaming-video playback rate used for bit-level reporting only.
DEFAULT_PLAYBACK_BPS = 1_000_000.0


@dataclass(frozen=True)
class MediaFile:
    """A CBR media file: show time, segment duration and playback rate.

    Parameters
    ----------
    show_seconds:
        Total playback duration ``D`` of the media.
    segment_seconds:
        Playback duration ``δt`` of one segment (one slot).  Must divide the
        show time so the file is a whole number of segments.
    playback_bps:
        Playback rate ``R0`` in bits/second.  The protocol logic never needs
        it (it works in fractions of ``R0``); it only scales bit-level
        reporting such as buffer occupancy in bytes.
    media_id:
        Identifier used by the lookup substrate (the paper's evaluation has
        a single popular video; multi-file systems hash this id).
    """

    show_seconds: float = DEFAULT_SHOW_SECONDS
    segment_seconds: float = DEFAULT_SEGMENT_SECONDS
    playback_bps: float = DEFAULT_PLAYBACK_BPS
    media_id: str = "video-0"

    def __post_init__(self) -> None:
        if self.show_seconds <= 0:
            raise ConfigurationError(f"show_seconds must be > 0, got {self.show_seconds}")
        if self.segment_seconds <= 0:
            raise ConfigurationError(
                f"segment_seconds must be > 0, got {self.segment_seconds}"
            )
        if self.playback_bps <= 0:
            raise ConfigurationError(f"playback_bps must be > 0, got {self.playback_bps}")
        ratio = self.show_seconds / self.segment_seconds
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigurationError(
                f"segment_seconds ({self.segment_seconds}) must divide "
                f"show_seconds ({self.show_seconds}) into whole segments"
            )

    @property
    def num_segments(self) -> int:
        """Number of segments in the file."""
        return round(self.show_seconds / self.segment_seconds)

    @property
    def segment_bits(self) -> float:
        """Size of one segment in bits (``R0 · δt``)."""
        return self.playback_bps * self.segment_seconds

    @property
    def total_bits(self) -> float:
        """Size of the whole file in bits."""
        return self.playback_bps * self.show_seconds

    def slots_to_seconds(self, slots: float) -> float:
        """Convert a duration in slots (multiples of ``δt``) to seconds."""
        return slots * self.segment_seconds

    def seconds_to_slots(self, seconds: float) -> float:
        """Convert seconds to (possibly fractional) slots."""
        return seconds / self.segment_seconds

    def playback_deadline_seconds(self, segment: int, start_delay_slots: int) -> float:
        """Wall-clock time at which ``segment`` must be present for playback.

        Playback begins ``start_delay_slots`` slots after transmission start,
        and segment ``s`` is consumed during playback slot ``s``.
        """
        return self.slots_to_seconds(start_delay_slots + segment)
