"""Slot-by-slot playback simulation (verification of the analytic schedule).

:mod:`repro.core.schedule` computes buffering delays analytically.  This
module *replays* a session segment by segment — arrivals feeding a buffer, a
playhead draining it — and reports what actually happens: when each segment
arrived, whether the playhead ever stalled, and the smallest start delay
that avoids stalls empirically.

The test suite cross-checks the empirical results against the analytic ones
(and against Theorem 1); examples use it to visualise schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import Assignment
from repro.core.schedule import TransmissionSchedule
from repro.errors import SchedulingError
from repro.streaming.media import MediaFile

__all__ = ["PlaybackSimulation", "simulate_playback", "empirical_min_delay_slots"]


@dataclass(frozen=True)
class PlaybackSimulation:
    """Outcome of replaying a session's playback.

    Attributes
    ----------
    start_delay_slots:
        The delay the playback was attempted with.
    stalled_segments:
        Segments whose playback deadline passed before they arrived (empty
        means continuous playback).
    arrival_slots:
        Arrival slot of each simulated segment, indexed by segment.
    buffered_at_start:
        Number of segments already in the buffer when playback started.
    """

    start_delay_slots: int
    stalled_segments: tuple[int, ...]
    arrival_slots: tuple[int, ...]
    buffered_at_start: int

    @property
    def continuous(self) -> bool:
        """True when playback never stalled."""
        return not self.stalled_segments


def simulate_playback(
    assignment: Assignment,
    start_delay_slots: int,
    num_segments: int | None = None,
    media: MediaFile | None = None,
) -> PlaybackSimulation:
    """Replay playback of ``num_segments`` under ``assignment``.

    Segments arrive per the transmission schedule; playback consumes segment
    ``s`` during slot ``start_delay_slots + s``.  A segment that has not
    fully arrived by the *start* of its playback slot is a stall.

    ``num_segments`` defaults to the whole file when ``media`` is given,
    otherwise to four assignment periods.
    """
    if start_delay_slots < 0:
        raise SchedulingError(f"start delay must be >= 0, got {start_delay_slots}")
    schedule = TransmissionSchedule.from_assignment(assignment)
    if num_segments is None:
        if media is not None:
            num_segments = media.num_segments
        else:
            num_segments = 4 * assignment.period_len

    arrivals = [schedule.arrival_slot(s) for s in range(num_segments)]
    stalled = tuple(
        s for s in range(num_segments) if arrivals[s] > start_delay_slots + s
    )
    buffered = sum(1 for slot in arrivals if slot <= start_delay_slots)
    return PlaybackSimulation(
        start_delay_slots=start_delay_slots,
        stalled_segments=stalled,
        arrival_slots=tuple(arrivals),
        buffered_at_start=buffered,
    )


def empirical_min_delay_slots(
    assignment: Assignment, num_segments: int | None = None
) -> int:
    """Smallest start delay with stall-free playback, found by replay.

    Walks delays upward from zero; the analytic bound
    (:func:`repro.core.schedule.min_start_delay_slots`) guarantees
    termination within ``period_len`` steps.
    """
    delay = 0
    while True:
        result = simulate_playback(assignment, delay, num_segments=num_segments)
        if result.continuous:
            return delay
        delay += 1
        if delay > 4 * assignment.period_len:
            raise SchedulingError(
                "no stall-free delay found within four periods; "
                "assignment is malformed"
            )
