"""Multi-supplier streaming sessions (Sections 2–3 of the paper).

A :class:`StreamingSession` binds together:

* the requesting peer and the supplying peers (whose offers sum to ``R0``),
* the OTS_p2p assignment (or a baseline assignment, for comparisons),
* the timing facts that the rest of the system needs — the buffering delay,
  how long each supplier is busy, and when the requester finishes
  downloading (and is promoted to supplier).

Sessions are *plans*: they carry no clocks of their own.  The simulator
instantiates one per admission and schedules its end event from
:attr:`StreamingSession.transfer_seconds`.

:class:`ActiveSession` is the mutable in-flight counterpart used by the
session-lifecycle extension (:mod:`repro.simulation.lifecycle`): it pins
the live supplier set, the scheduled end event and the requester's buffer
position, so a mid-stream supplier departure can interrupt the session and
the recovery path can resume it from where the buffer left off.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.assignment import Assignment, ots_assignment
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import TransmissionSchedule, min_start_delay_slots
from repro.errors import InfeasibleSessionError
from repro.streaming.media import MediaFile

__all__ = ["StreamingSession", "ActiveSession", "plan_session"]


class ActiveSession:
    """One in-flight streaming session, interruptible mid-stream.

    Where :class:`StreamingSession` is a static *plan*, an
    ``ActiveSession`` is the running instance the lifecycle-aware request
    path tracks: who is serving it right now, when its current leg
    started, how much transfer remains (the requester's buffer position),
    and the stall bookkeeping the continuity probes consume.  ``requester``
    and ``suppliers`` are the simulation's peer objects; this class never
    inspects them, so it stays free of simulation-layer imports.

    Attributes
    ----------
    requester / suppliers:
        The admitted requesting peer and the peers currently serving it.
    resumed_at:
        Simulated time the current leg started (admission or last resume).
    remaining_seconds:
        Transfer time still owed when the current leg started.  Under the
        ``resume`` recovery mode an interruption subtracts the elapsed
        leg; under ``restart`` it resets to the full transfer time.
    end_handle:
        Cancellable handle of the scheduled session-end event.
    interrupted_at:
        When the session was last interrupted (``None`` while streaming).
    interruptions / recovery_attempts / stall_seconds:
        Continuity bookkeeping: stalls suffered, failed recovery probes
        since the last interruption, and accumulated stall time.
    """

    __slots__ = (
        "requester",
        "suppliers",
        "resumed_at",
        "remaining_seconds",
        "end_handle",
        "interrupted_at",
        "interruptions",
        "recovery_attempts",
        "stall_seconds",
    )

    def __init__(
        self,
        requester,
        suppliers: list,
        resumed_at: float,
        remaining_seconds: float,
    ) -> None:
        self.requester = requester
        self.suppliers = suppliers
        self.resumed_at = resumed_at
        self.remaining_seconds = remaining_seconds
        self.end_handle = None
        self.interrupted_at: float | None = None
        self.interruptions = 0
        self.recovery_attempts = 0
        self.stall_seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActiveSession(requester={getattr(self.requester, 'peer_id', '?')}, "
            f"suppliers={len(self.suppliers)}, "
            f"remaining={self.remaining_seconds:.0f}s, "
            f"interruptions={self.interruptions})"
        )


@dataclass(frozen=True)
class StreamingSession:
    """An admitted peer-to-peer streaming session, fully planned.

    Attributes
    ----------
    requester_id / requester_class:
        The admitted requesting peer.
    assignment:
        Per-period media-data assignment over the suppliers.
    media:
        The media file being streamed.
    buffering_delay_slots:
        Minimum start delay under ``assignment``; equals the number of
        suppliers when the assignment is OTS_p2p (Theorem 1).
    """

    requester_id: int
    requester_class: int
    assignment: Assignment
    media: MediaFile
    buffering_delay_slots: int

    @property
    def suppliers(self) -> tuple[SupplierOffer, ...]:
        """The supplying peers serving this session."""
        return self.assignment.suppliers

    @property
    def num_suppliers(self) -> int:
        """How many supplying peers participate."""
        return len(self.assignment.suppliers)

    @property
    def buffering_delay_seconds(self) -> float:
        """Buffering delay in wall-clock seconds (``slots · δt``)."""
        return self.media.slots_to_seconds(self.buffering_delay_slots)

    @property
    def transfer_seconds(self) -> float:
        """Time from transmission start until every byte has arrived.

        The aggregate supply rate equals ``R0`` and every supplier's pipe is
        kept full, so the transfer takes exactly the show time — each
        supplier is busy for the whole of it.  (A final-period tail could
        release some suppliers marginally earlier; the paper treats session
        length as the show time and so do we.)
        """
        return self.media.show_seconds

    @property
    def playback_end_seconds(self) -> float:
        """When playback finishes: show time plus the buffering delay."""
        return self.media.show_seconds + self.buffering_delay_seconds

    def schedule(self) -> TransmissionSchedule:
        """The segment-arrival schedule implied by the assignment."""
        return TransmissionSchedule.from_assignment(self.assignment)

    def supplier_busy_seconds(self, supplier_index: int) -> float:
        """How long ``suppliers[supplier_index]`` is busy with this session."""
        if not 0 <= supplier_index < self.num_suppliers:
            raise InfeasibleSessionError(
                f"supplier index {supplier_index} out of range 0..{self.num_suppliers - 1}"
            )
        return self.media.show_seconds

    def describe(self) -> str:
        """Multi-line human-readable session summary."""
        lines = [
            f"session for peer {self.requester_id} (class {self.requester_class}):",
            f"  suppliers: "
            + ", ".join(
                f"{s.peer_id}(c{s.peer_class})" for s in self.suppliers
            ),
            f"  buffering delay: {self.buffering_delay_slots} slots "
            f"({self.buffering_delay_seconds:.1f} s)",
            f"  transfer time: {self.transfer_seconds:.0f} s",
        ]
        return "\n".join(lines)


def plan_session(
    requester_id: int,
    requester_class: int,
    offers: Sequence[SupplierOffer],
    media: MediaFile,
    ladder: ClassLadder | None = None,
    assignment: Assignment | None = None,
) -> StreamingSession:
    """Plan a streaming session: run OTS_p2p and package the timing facts.

    This is what an admitted requesting peer executes (Section 4.2): compute
    the optimal assignment over the granted suppliers, then notify them —
    the notification being the simulator's job.

    Parameters
    ----------
    assignment:
        Pass an explicit (possibly non-OTS) assignment to study baselines;
        by default OTS_p2p is used, as in the paper.
    """
    ladder = ladder or ClassLadder()
    if assignment is None:
        assignment = ots_assignment(offers, ladder)
    delay = min_start_delay_slots(assignment)
    return StreamingSession(
        requester_id=requester_id,
        requester_class=requester_class,
        assignment=assignment,
        media=media,
        buffering_delay_slots=delay,
    )
