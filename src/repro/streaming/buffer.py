"""Receiver-buffer occupancy accounting.

The paper's model assumes each peer "has sufficient storage to store the
entire media file" (footnote 1), so buffer occupancy never gates admission —
but the occupancy profile is still interesting: it shows how much a
requesting peer must *hold* at any moment, which differs sharply between
assignment algorithms and is the natural cost axis of the low buffering
delay OTS_p2p achieves.

Occupancy is measured at slot granularity: segments enter the buffer at
their arrival slot and leave once their playback slot has completed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.schedule import TransmissionSchedule
from repro.errors import SchedulingError
from repro.streaming.media import MediaFile

__all__ = ["BufferStats", "occupancy_profile"]


@dataclass(frozen=True)
class BufferStats:
    """Summary of a playback run's buffer behaviour.

    Attributes
    ----------
    peak_segments:
        Maximum number of segments simultaneously held.
    peak_slot:
        First slot at which the peak occurred.
    mean_segments:
        Time-average occupancy over the observed horizon.
    profile:
        Occupancy (in segments) at the end of each slot.
    """

    peak_segments: int
    peak_slot: int
    mean_segments: float
    profile: tuple[int, ...]

    def peak_bytes(self, media: MediaFile) -> float:
        """Peak occupancy converted to bytes via the media's segment size."""
        return self.peak_segments * media.segment_bits / 8.0


def occupancy_profile(
    assignment: Assignment,
    start_delay_slots: int,
    num_segments: int | None = None,
) -> BufferStats:
    """Compute the buffer-occupancy profile of a playback run.

    A segment occupies the buffer from its arrival slot (exclusive of the
    slot during which it is still arriving) until its playback slot has
    completed.  Playback of segment ``s`` occupies slot
    ``start_delay_slots + s``.
    """
    if start_delay_slots < 0:
        raise SchedulingError(f"start delay must be >= 0, got {start_delay_slots}")
    schedule = TransmissionSchedule.from_assignment(assignment)
    if num_segments is None:
        num_segments = 4 * assignment.period_len

    horizon = start_delay_slots + num_segments
    occupancy = [0] * horizon
    for s in range(num_segments):
        arrive = schedule.arrival_slot(s)
        depart = start_delay_slots + s + 1  # slot after playback completes
        for slot in range(arrive, min(depart, horizon)):
            occupancy[slot] += 1

    peak = max(occupancy) if occupancy else 0
    peak_slot = occupancy.index(peak) if occupancy else 0
    mean = sum(occupancy) / len(occupancy) if occupancy else 0.0
    return BufferStats(
        peak_segments=peak,
        peak_slot=peak_slot,
        mean_segments=mean,
        profile=tuple(occupancy),
    )
