"""Media-streaming substrate: CBR media model, sessions, playback buffers.

The paper's evaluation never transfers real bytes — with a CBR stream and the
exact power-of-two rate ladder, every segment's arrival time is analytic.
This package provides:

* :mod:`repro.streaming.media` — the media-file geometry (show time,
  segment duration, playback rate);
* :mod:`repro.streaming.session` — a multi-supplier streaming session:
  assignment, timing, busy intervals, buffering delay;
* :mod:`repro.streaming.playback` — an explicit playback-buffer simulation
  that *verifies* continuity instead of assuming it;
* :mod:`repro.streaming.buffer` — receiver-buffer occupancy accounting.
"""

from repro.streaming.media import MediaFile
from repro.streaming.session import StreamingSession, plan_session
from repro.streaming.playback import PlaybackSimulation, simulate_playback
from repro.streaming.buffer import BufferStats, occupancy_profile

__all__ = [
    "MediaFile",
    "StreamingSession",
    "plan_session",
    "PlaybackSimulation",
    "simulate_playback",
    "BufferStats",
    "occupancy_profile",
]
