"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One simulation run; prints the summary and (optionally) figure reports.
``compare``
    DAC vs NDAC under one workload; prints Figure 4/5/6 style output.
``sweep``
    Parameter sweep (M, T_out, E_bkf, …) printing Figure 8/9 style output.
``replicate``
    Multi-seed replication with mean ± CI summaries.
``scenarios``
    List every registered workload scenario.
``assignment``
    OTS_p2p vs baselines on a supplier set given as classes, e.g.
    ``repro-p2pstream assignment 1 2 3 3``.
``patterns``
    Show the four arrival patterns as ASCII histograms.

Simulation commands pick their workload with ``--scenario NAME`` (see
``scenarios``) or the legacy ``--pattern N`` shorthand, and accept
``--scale`` so full paper scale (1.0) or quick runs (0.05) are one flag
away.  ``compare``/``sweep``/``replicate`` take ``--jobs N`` to fan their
independent runs out over worker processes.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import report
from repro.analysis.plots import ascii_chart, render_table
from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    round_robin_assignment,
)
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import min_start_delay_slots
from repro.errors import P2PStreamError
from repro.scenarios import (
    all_scenarios,
    get_scenario,
    scenario_for_pattern,
    scenario_names,
)
from repro.simulation.arrivals import arrivals_per_bin, generate_arrival_times, make_pattern
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SeriesPoint
from repro.simulation.runner import compare_protocols, run_simulation, sweep_parameter

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-p2pstream",
        description="Reproduction of 'On Peer-to-Peer Media Streaming' (ICDCS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=0.1,
                       help="population scale (1.0 = paper's 50,100 peers)")
        p.add_argument("--scenario", choices=scenario_names(), default=None,
                       help="workload scenario (see the 'scenarios' command)")
        p.add_argument("--pattern", type=int, default=None, choices=[1, 2, 3, 4],
                       help="first-request arrival pattern (default: 2, "
                            "or the scenario's own pattern)")
        p.add_argument("--seed", type=int, default=None, help="master RNG seed")
        p.add_argument("--lookup", choices=["directory", "chord"], default=None,
                       help="lookup substrate (default: the scenario's)")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=positive_int, default=1,
                       help="worker processes for independent runs (default 1)")

    run_p = sub.add_parser("run", help="run one simulation")
    add_common(run_p)
    run_p.add_argument("--protocol", default=None,
                       help="admission policy name (dac, ndac, dac-no-reminder, "
                            "...; default: the scenario's, normally dac)")
    run_p.add_argument("--figures", action="store_true",
                       help="print Figure 5/6/7 reports for the run")

    cmp_p = sub.add_parser("compare", help="DAC vs NDAC comparison")
    add_common(cmp_p)
    add_jobs(cmp_p)

    sweep_p = sub.add_parser("sweep", help="parameter sweep")
    add_common(sweep_p)
    add_jobs(sweep_p)
    sweep_p.add_argument("parameter",
                         choices=["probe_candidates", "t_out_seconds", "e_bkf"])
    sweep_p.add_argument("values", nargs="+", type=float, help="values to sweep")

    rep_p = sub.add_parser("replicate", help="multi-seed replication")
    add_common(rep_p)
    add_jobs(rep_p)
    rep_p.add_argument("--replications", type=positive_int, default=3,
                       help="number of derived master seeds (default 3)")
    rep_p.add_argument("--protocol", default=None,
                       help="admission policy to replicate (default: the "
                            "scenario's, normally dac)")

    sub.add_parser("scenarios", help="list the registered workload scenarios")

    asg_p = sub.add_parser("assignment", help="compare assignment algorithms")
    asg_p.add_argument("classes", nargs="+", type=int,
                       help="supplier classes (offers must sum to R0), e.g. 1 2 3 3")
    asg_p.add_argument("--num-classes", type=int, default=4)

    pat_p = sub.add_parser("patterns", help="show the arrival patterns")
    pat_p.add_argument("--peers", type=int, default=5000)
    pat_p.add_argument("--window-hours", type=float, default=72.0)

    exp_p = sub.add_parser(
        "experiment", help="regenerate one paper table/figure by id"
    )
    add_common(exp_p)
    exp_p.add_argument("experiment_id", nargs="?", default=None,
                       help="experiment id (fig1, fig4, ..., table1); omit to list")

    return parser


def _make_config(args: argparse.Namespace, **extra: object) -> SimulationConfig:
    """Expand the workload selection flags to a scaled configuration.

    ``--scenario`` picks a registered scenario; ``--pattern`` without a
    scenario maps to the canonical paper-population scenario of that
    arrival pattern (pattern 2 when neither flag is given).  Explicit
    ``--pattern``/``--lookup``/``--seed``/``--protocol`` override the
    scenario's values.
    """
    if args.scenario is not None:
        scenario = get_scenario(args.scenario)
    else:
        scenario = scenario_for_pattern(args.pattern if args.pattern else 2)
    if args.pattern is not None:
        extra["arrival_pattern"] = args.pattern
    if args.lookup is not None:
        extra["lookup"] = args.lookup
    if args.seed is not None:
        extra["master_seed"] = args.seed
    if getattr(args, "protocol", None) is not None:
        extra["protocol"] = args.protocol
    return scenario.build_config(scale=args.scale, **extra)


def _cmd_run(args: argparse.Namespace) -> int:
    config = _make_config(args)
    print(config.describe())
    result = run_simulation(config)
    print(result.summary())
    rejections = result.metrics.mean_rejections_before_admission()
    delays = result.metrics.mean_buffering_delay_slots()
    rows = [
        [f"class {c}", f"{rejections[c]:.2f}", f"{delays[c]:.2f}"]
        for c in sorted(rejections)
    ]
    print(render_table(["", "avg rejections", "avg delay (x dt)"], rows))
    if args.figures:
        print()
        print(report.figure5_report(result, label=config.protocol))
        print()
        print(report.figure6_report(result, label=config.protocol))
        print()
        print(report.figure7_report(result))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _make_config(args)
    print(config.describe())
    results = compare_protocols(config, jobs=args.jobs)
    pattern = config.arrival_pattern
    print(report.figure4_report(results, pattern=pattern))
    print()
    print(report.table1_report({(name, pattern): r for name, r in results.items()}))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _make_config(args)
    values: list[object] = [
        int(v) if args.parameter == "probe_candidates" else v for v in args.values
    ]
    results = sweep_parameter(config, args.parameter, values, jobs=args.jobs)
    if args.parameter == "e_bkf":
        print(report.figure9_report(results))
    else:
        label = {"probe_candidates": "M", "t_out_seconds": "T_out"}[args.parameter]
        print(report.figure8_report(results, parameter_label=label))
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.analysis.replication import replicate

    config = _make_config(args)
    print(config.describe())
    replicated = replicate(
        config, replications=args.replications, jobs=args.jobs
    )
    print(f"seeds: {', '.join(str(s) for s in replicated.seeds)}")
    rows = [["final capacity", str(replicated.final_capacity())]]
    for peer_class in sorted(config.requesting_peers):
        if config.requesting_peers[peer_class]:
            rows.append([
                f"class {peer_class} rejections",
                str(replicated.rejections_of_class(peer_class)),
            ])
    print(render_table(
        ["metric", "mean ± 95% CI"], rows,
        title=f"{args.replications}-seed replication",
    ))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    print("registered scenarios:")
    for scenario in all_scenarios():
        print(f"  {scenario.describe()}")
    return 0


def _cmd_assignment(args: argparse.Namespace) -> int:
    ladder = ClassLadder(args.num_classes)
    offers = [
        SupplierOffer(peer_id=i + 1, peer_class=c, units=ladder.offer_units(c))
        for i, c in enumerate(args.classes)
    ]
    for name, algorithm in (
        ("OTS_p2p (optimal)", ots_assignment),
        ("contiguous (Assignment I)", contiguous_assignment),
        ("round robin", round_robin_assignment),
    ):
        assignment = algorithm(offers, ladder)
        print(f"{name}: buffering delay {min_start_delay_slots(assignment)} x dt")
        print(assignment.describe())
        print()
    return 0


def _cmd_patterns(args: argparse.Namespace) -> int:
    window = args.window_hours * 3600.0
    for pattern_id in (1, 2, 3, 4):
        pattern = make_pattern(pattern_id, window)
        times = generate_arrival_times(pattern, args.peers)
        bins = arrivals_per_bin(times, 3600.0, window)
        series = {
            f"pattern {pattern_id}": [
                SeriesPoint(hour=float(h), value=float(v)) for h, v in enumerate(bins)
            ]
        }
        print(ascii_chart(series, title=f"Arrival pattern {pattern_id}",
                          y_label="arrivals/hour", height=10))
        print()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import list_experiments, run_experiment

    if args.experiment_id is None:
        print("available experiments:")
        print(list_experiments())
        return 0
    config = _make_config(args)
    print(run_experiment(args.experiment_id, config))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "replicate": _cmd_replicate,
    "scenarios": _cmd_scenarios,
    "assignment": _cmd_assignment,
    "patterns": _cmd_patterns,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except P2PStreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
