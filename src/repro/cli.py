"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One simulation run; prints the summary and (optionally) figure reports.
``study``
    Declarative experiment grid — scenario × protocols × sweeps × seeds —
    executed through the :class:`~repro.orchestration.study.Study`
    builder.  ``--protocols dac ndac`` adds a protocol axis, repeatable
    ``--sweep PARAM V1 V2 ...`` adds parameter axes, ``--seeds K``
    replicates every point; prints a per-run table plus mean ± CI
    aggregates, and ``--export json|csv`` writes the full record set.
    ``--resume`` re-enters a crashed or sharded run through the claim
    protocol (requires ``--cache-dir``): finished specs are served from
    the store, orphaned (expired-lease) specs are reclaimed and
    executed, and specs another live worker holds are skipped.
``study shard``
    Claim and execute one slice of a study grid against a shared or
    per-host :class:`~repro.orchestration.store.ResultStore`
    (``--store DIR``), cooperating with other workers through the
    lease-based claim protocol in :mod:`repro.orchestration.shard`:
    ``--slice I/N`` takes every N-th spec starting at I, ``--owner`` and
    ``--lease`` control claim identity and expiry, ``--claim-batch``
    sets the claim-wave size (smaller waves interleave better with
    other workers and tolerate shorter leases), and ``--executed-log``
    appends one ``owner spec_hash`` line per executed spec.
``study merge``
    Fold N shard stores into one (``--into DEST SRC...``), verifying
    spec-hash and payload agreement on every overlap; disagreement
    aborts the merge, because two differing records under one spec hash
    mean a determinism violation.
``study status``
    Claimed / done / orphaned census of a store's records and claims
    (``--store DIR``); with a grid (``--scenario`` plus the usual axis
    flags) also reports how many specs remain pending.
``compare``
    DAC vs NDAC under one workload; prints Figure 4/5/6 style output.
``sweep``
    Parameter sweep (M, T_out, E_bkf, …) printing Figure 8/9 style output.
``replicate``
    Multi-seed replication with mean ± CI summaries.
``experiment``
    Regenerate one paper table/figure by id (``fig1`` … ``table1``).
``scenarios``
    List every registered workload scenario.
``perf``
    Performance harness: run one workload under every event kernel and
    requested execution engine (``--engines``), plus the
    full-instrumentation reference, and print events/sec.
``assignment``
    OTS_p2p vs baselines on a supplier set given as classes, e.g.
    ``repro-p2pstream assignment 1 2 3 3``.
``patterns``
    Show the four arrival patterns as ASCII histograms.
``lint``
    detlint — the AST-based determinism & invariant analyzer
    (:mod:`repro.devtools.staticcheck`): checks the RNG-injection
    discipline, the wall-clock ban, unordered-iteration hazards, the
    ``config_hash`` exclusion allowlist, hot-path ``__slots__`` and the
    public-export surface.  ``--rules`` selects a subset,
    ``--list-rules`` names them, ``--baseline``/``--write-baseline``
    manage a known-findings file.

Simulation commands pick their workload with ``--scenario NAME`` (see
``scenarios``) or the legacy ``--pattern N`` shorthand, and accept
``--scale`` so full paper scale (1.0) or quick runs (0.05) are one flag
away.  ``--kernel`` selects the event-queue kernel
(results are bit-identical either way; the calendar kernels are faster
at population scale), ``--engine object|array`` selects the execution
engine (also bit-identical; the struct-of-arrays engine is built for
100k+ populations), ``--lifecycle`` selects a session-lifecycle model
scheduling mid-stream supplier departures (with ``--recovery``
choosing what interrupted requesters do; see
:mod:`repro.simulation.lifecycle`), ``--probes NAME...`` (on
``run``/``study``) subscribes only the named metric probes (space- or
comma-separated), and ``--profile`` (on ``run``/``study``) wraps
execution in :mod:`cProfile` and prints the top 25 cumulative entries.  Grid commands (``study``/``compare``/``sweep``/``replicate``)
take ``--jobs N`` to fan their independent runs out over worker
processes, ``--cache-dir DIR`` to memoize run records on disk (repeat
invocations are served from the
:class:`~repro.orchestration.store.ResultStore` without re-simulating;
``--no-cache`` forces re-execution), and ``--export json|csv`` (with
``--out BASE``) to write the record set for downstream analysis.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from repro.analysis import report
from repro.analysis.plots import ascii_chart, render_table
from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    round_robin_assignment,
)
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import min_start_delay_slots
from repro.errors import P2PStreamError
from repro.scenarios import (
    all_scenarios,
    get_scenario,
    scenario_for_pattern,
    scenario_names,
)
from repro.orchestration.shard import (
    merge_stores,
    shard_run,
    store_status,
)
from repro.orchestration.store import ResultStore
from repro.orchestration.study import ResultSet, Study
from repro.simulation.arrivals import arrivals_per_bin, generate_arrival_times, make_pattern
from repro.simulation.config import ENGINE_NAMES, SimulationConfig
from repro.simulation.kernel import KERNEL_NAMES
from repro.simulation.lifecycle import LIFECYCLE_NAMES, RECOVERY_MODES
from repro.simulation.metrics import SeriesPoint
from repro.simulation.probes import PROBE_NAMES
from repro.simulation.runner import run_simulation

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-p2pstream",
        description="Reproduction of 'On Peer-to-Peer Media Streaming' (ICDCS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=0.1,
                       help="population scale (1.0 = paper's 50,100 peers)")
        p.add_argument("--scenario", choices=scenario_names(), default=None,
                       help="workload scenario (see the 'scenarios' command)")
        p.add_argument("--pattern", type=int, default=None, choices=[1, 2, 3, 4],
                       help="first-request arrival pattern (default: 2, "
                            "or the scenario's own pattern)")
        p.add_argument("--seed", type=int, default=None, help="master RNG seed")
        p.add_argument("--lookup", choices=["directory", "chord"], default=None,
                       help="lookup substrate (default: the scenario's)")
        p.add_argument("--kernel", choices=list(KERNEL_NAMES), default=None,
                       help="event-queue kernel (results are bit-identical; "
                            "default: the scenario's, normally heap)")
        p.add_argument("--engine", choices=list(ENGINE_NAMES), default=None,
                       help="execution engine (results are bit-identical; "
                            "'array' runs struct-of-arrays state for "
                            "100k+ populations; default: the scenario's, "
                            "normally object)")
        p.add_argument("--lifecycle", choices=list(LIFECYCLE_NAMES),
                       default=None,
                       help="session-lifecycle model scheduling mid-stream "
                            "supplier departures (default: the scenario's, "
                            "normally none)")
        p.add_argument("--recovery", choices=list(RECOVERY_MODES),
                       default=None,
                       help="what interrupted requesters do under a "
                            "lifecycle model (default: the scenario's, "
                            "normally resume)")

    def probe_names(text: str) -> list[str]:
        """One ``--probes`` token: a probe name or a comma-separated list."""
        names = [name for name in text.split(",") if name]
        if not names:
            raise argparse.ArgumentTypeError("empty probe list")
        for name in names:
            if name not in PROBE_NAMES:
                raise argparse.ArgumentTypeError(
                    f"unknown probe {name!r}; known: {', '.join(PROBE_NAMES)}"
                )
        return names

    def add_probes(p: argparse.ArgumentParser) -> None:
        p.add_argument("--probes", nargs="+", type=probe_names,
                       default=None, metavar="PROBE",
                       help="subscribe only these metric probes, space- or "
                            "comma-separated (default: the scenario's, "
                            f"normally all; known: {', '.join(PROBE_NAMES)})")

    def add_profile(p: argparse.ArgumentParser) -> None:
        p.add_argument("--profile", action="store_true",
                       help="wrap execution in cProfile and print the top "
                            "25 cumulative entries")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def positive_float(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
        return value

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=positive_int, default=1,
                       help="worker processes for independent runs (default 1)")

    def add_cache(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None,
                       help="directory memoizing run records on disk; repeat "
                            "invocations skip already-computed runs")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass cached records (fresh runs still land "
                            "in --cache-dir)")

    def add_export(p: argparse.ArgumentParser) -> None:
        p.add_argument("--export", action="append", choices=["json", "csv"],
                       default=None, metavar="FORMAT",
                       help="write the run records as json or csv "
                            "(repeatable)")
        p.add_argument("--out", default=None,
                       help="output base path for --export "
                            "(default: the command name; files get "
                            ".json/.csv suffixes)")

    run_p = sub.add_parser("run", help="run one simulation")
    add_common(run_p)
    add_probes(run_p)
    add_profile(run_p)
    run_p.add_argument("--protocol", default=None,
                       help="admission policy name (dac, ndac, dac-no-reminder, "
                            "...; default: the scenario's, normally dac)")
    run_p.add_argument("--figures", action="store_true",
                       help="print Figure 5/6/7 reports for the run")

    def add_grid(p: argparse.ArgumentParser) -> None:
        p.add_argument("--protocols", nargs="+", default=None,
                       metavar="PROTOCOL",
                       help="admission policies to grid over (default: "
                            "the scenario's single protocol)")
        p.add_argument("--sweep", action="append", nargs="+", default=None,
                       metavar=("PARAM VALUE", "VALUE"),
                       help="sweep a config field: --sweep PARAM V1 V2 ... "
                            "(repeatable; values coerced to the field's "
                            "type)")
        p.add_argument("--seeds", type=positive_int, default=1,
                       help="replications per grid point (default 1)")
        p.add_argument("--seed-stride", type=positive_int, default=1,
                       help="stride between derived master seeds (default 1)")

    study_p = sub.add_parser(
        "study", help="declarative grid: protocols x sweeps x seeds"
    )
    add_common(study_p)
    add_probes(study_p)
    add_profile(study_p)
    add_jobs(study_p)
    add_cache(study_p)
    add_export(study_p)
    add_grid(study_p)
    study_p.add_argument("--resume", action="store_true",
                         help="re-enter a crashed or sharded run through "
                              "the claim protocol (requires --cache-dir): "
                              "serve finished specs, reclaim orphaned ones, "
                              "skip specs held by live workers")
    study_p.add_argument("--owner", default=None,
                         help="claim owner identity for --resume "
                              "(default: host-pid)")
    study_p.add_argument("--lease", type=positive_float, default=900.0,
                         help="claim lease seconds for --resume "
                              "(default 900)")

    study_sub = study_p.add_subparsers(
        dest="study_command", metavar="SUBCOMMAND",
        help="sharded execution: shard, merge, status "
             "(omit to run the grid in this process)",
    )

    shard_p = study_sub.add_parser(
        "shard", help="claim and execute a slice of a study against a store"
    )
    add_common(shard_p)
    add_probes(shard_p)
    add_jobs(shard_p)
    add_grid(shard_p)
    shard_p.add_argument("--store", required=True,
                         help="result store directory (shared between "
                              "workers, or per-host and merged later)")
    shard_p.add_argument("--owner", default=None,
                         help="claim owner identity (default: host-pid)")
    shard_p.add_argument("--lease", type=positive_float, default=900.0,
                         help="claim lease seconds; must exceed one claim "
                              "wave's runtime (default 900)")
    shard_p.add_argument("--slice", default="0/1", metavar="I/N",
                         help="execute every N-th spec starting at I "
                              "(default 0/1: the whole grid)")
    shard_p.add_argument("--claim-batch", type=positive_int, default=None,
                         metavar="K",
                         help="claim at most K specs per wave (default: "
                              "the whole slice at once)")
    shard_p.add_argument("--executed-log", default=None, metavar="FILE",
                         help="append one 'owner spec_hash' line per "
                              "executed spec")

    merge_p = study_sub.add_parser(
        "merge", help="fold shard stores into one, verifying agreement"
    )
    merge_p.add_argument("--into", required=True, metavar="DEST",
                         help="destination store directory")
    merge_p.add_argument("sources", nargs="+", metavar="SRC",
                         help="source store directories")

    status_p = study_sub.add_parser(
        "status", help="claimed/done/orphaned census of a store"
    )
    add_common(status_p)
    add_probes(status_p)
    add_grid(status_p)
    status_p.add_argument("--store", required=True,
                          help="result store directory to census")

    cmp_p = sub.add_parser("compare", help="DAC vs NDAC comparison")
    add_common(cmp_p)
    add_jobs(cmp_p)
    add_cache(cmp_p)
    add_export(cmp_p)

    sweep_p = sub.add_parser("sweep", help="parameter sweep")
    add_common(sweep_p)
    add_jobs(sweep_p)
    add_cache(sweep_p)
    add_export(sweep_p)
    sweep_p.add_argument("parameter",
                         choices=["probe_candidates", "t_out_seconds", "e_bkf"])
    sweep_p.add_argument("values", nargs="+", type=float, help="values to sweep")

    rep_p = sub.add_parser("replicate", help="multi-seed replication")
    add_common(rep_p)
    add_jobs(rep_p)
    add_cache(rep_p)
    add_export(rep_p)
    rep_p.add_argument("--replications", type=positive_int, default=3,
                       help="number of derived master seeds (default 3)")
    rep_p.add_argument("--protocol", default=None,
                       help="admission policy to replicate (default: the "
                            "scenario's, normally dac)")

    sub.add_parser("scenarios", help="list the registered workload scenarios")

    perf_p = sub.add_parser(
        "perf", help="events/sec of one workload under every event kernel"
    )
    add_common(perf_p)
    perf_p.add_argument("--kernels", nargs="+", choices=list(KERNEL_NAMES),
                        default=None, metavar="KERNEL",
                        help="kernels to measure (default: --kernel if "
                             "given, else all)")
    perf_p.add_argument("--engines", nargs="+", choices=list(ENGINE_NAMES),
                        default=None, metavar="ENGINE",
                        help="execution engines to measure (default: "
                             "--engine if given, else the workload's)")
    perf_p.add_argument("--repeats", type=positive_int, default=1,
                        help="measurements per kernel; the best is reported "
                             "(default 1)")
    perf_p.add_argument("--no-reference", action="store_true",
                        help="skip the full-instrumentation reference run "
                             "(heap kernel, every probe, message accounting)")

    asg_p = sub.add_parser("assignment", help="compare assignment algorithms")
    asg_p.add_argument("classes", nargs="+", type=int,
                       help="supplier classes (offers must sum to R0), e.g. 1 2 3 3")
    asg_p.add_argument("--num-classes", type=int, default=4)

    pat_p = sub.add_parser("patterns", help="show the arrival patterns")
    pat_p.add_argument("--peers", type=int, default=5000)
    pat_p.add_argument("--window-hours", type=float, default=72.0)

    lint_p = sub.add_parser(
        "lint", help="detlint: determinism & invariant static analysis"
    )
    lint_p.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="files or directories to lint, relative to "
                             "--root (default: src benchmarks examples)")
    lint_p.add_argument("--root", default=".",
                        help="repository root (default: current directory)")
    lint_p.add_argument("--rules", nargs="+", default=None, metavar="RULE",
                        help="run only these rules (default: all)")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="list the available rules and exit")
    lint_p.add_argument("--format", choices=["text", "json"], default="text",
                        help="finding output format (default text)")
    lint_p.add_argument("--baseline", default=None, metavar="FILE",
                        help="JSON baseline of known findings to tolerate")
    lint_p.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write current findings as a baseline, exit 0")

    exp_p = sub.add_parser(
        "experiment", help="regenerate one paper table/figure by id"
    )
    add_common(exp_p)
    add_cache(exp_p)
    exp_p.add_argument("experiment_id", nargs="?", default=None,
                       help="experiment id (fig1, fig4, ..., table1); omit to list")

    return parser


def _make_config(args: argparse.Namespace, **extra: object) -> SimulationConfig:
    """Expand the workload selection flags to a scaled configuration.

    ``--scenario`` picks a registered scenario; ``--pattern`` without a
    scenario maps to the canonical paper-population scenario of that
    arrival pattern (pattern 2 when neither flag is given).  Explicit
    ``--pattern``/``--lookup``/``--seed``/``--protocol`` override the
    scenario's values.
    """
    if args.scenario is not None:
        scenario = get_scenario(args.scenario)
    else:
        scenario = scenario_for_pattern(args.pattern if args.pattern else 2)
    if args.pattern is not None:
        extra["arrival_pattern"] = args.pattern
    if args.lookup is not None:
        extra["lookup"] = args.lookup
    if args.seed is not None:
        extra["master_seed"] = args.seed
    if getattr(args, "protocol", None) is not None:
        extra["protocol"] = args.protocol
    if getattr(args, "kernel", None) is not None:
        extra["kernel"] = args.kernel
    if getattr(args, "engine", None) is not None:
        extra["engine"] = args.engine
    if getattr(args, "lifecycle", None) is not None:
        extra["lifecycle"] = args.lifecycle
    if getattr(args, "recovery", None) is not None:
        extra["lifecycle_recovery"] = args.recovery
    if getattr(args, "probes", None) is not None:
        # each --probes token may itself be a comma-separated list
        extra["probes"] = tuple(
            name for chunk in args.probes for name in chunk
        )
    return scenario.build_config(scale=args.scale, **extra)


def _maybe_profiled(args: argparse.Namespace, body) -> int:
    """Run ``body`` under cProfile when ``--profile`` was given."""
    if not getattr(args, "profile", False):
        return body()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return body()
    finally:
        profiler.disable()
        print()
        print("profile (top 25 by cumulative time):")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)


def _store_from(args: argparse.Namespace) -> ResultStore | None:
    """The record store selected by ``--cache-dir``, if any."""
    cache_dir = getattr(args, "cache_dir", None)
    return ResultStore(cache_dir) if cache_dir else None


def _export_result_set(
    args: argparse.Namespace, result_set: ResultSet, default_base: str
) -> None:
    """Write the record set to every ``--export`` format requested."""
    for fmt in getattr(args, "export", None) or []:
        base = getattr(args, "out", None) or default_base
        path = Path(f"{base}.{fmt}")
        if fmt == "json":
            result_set.to_json(path)
        else:
            result_set.to_csv(path)
        print(f"wrote {path}")


def _coerce_sweep_value(parameter: str, text: str) -> object:
    """Parse a ``--sweep`` value string to the config field's type."""
    defaults = {
        f.name: f.default
        for f in dataclasses.fields(SimulationConfig)
        if f.default is not dataclasses.MISSING
    }
    default = defaults.get(parameter)
    try:
        if isinstance(default, bool):
            return text.lower() in ("1", "true", "yes")
        if isinstance(default, int):
            return int(text)
        if isinstance(default, float):
            return float(text)
    except ValueError:
        raise P2PStreamError(
            f"--sweep {parameter} value {text!r} is not a valid "
            f"{type(default).__name__}"
        ) from None
    if isinstance(default, str):
        return text
    # optional/dict-valued fields: best-effort numeric, else verbatim
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def _cmd_run(args: argparse.Namespace) -> int:
    return _maybe_profiled(args, lambda: _run_body(args))


def _run_body(args: argparse.Namespace) -> int:
    config = _make_config(args)
    print(config.describe())
    result = run_simulation(config)
    print(result.summary())
    rejections = result.metrics.mean_rejections_before_admission()
    delays = result.metrics.mean_buffering_delay_slots()
    rows = [
        [f"class {c}", f"{rejections[c]:.2f}", f"{delays[c]:.2f}"]
        for c in sorted(rejections)
    ]
    print(render_table(["", "avg rejections", "avg delay (x dt)"], rows))
    if args.figures:
        print()
        print(report.figure5_report(result, label=config.protocol))
        print()
        print(report.figure6_report(result, label=config.protocol))
        print()
        print(report.figure7_report(result))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    command = getattr(args, "study_command", None)
    if command == "shard":
        return _study_shard_body(args)
    if command == "merge":
        return _study_merge_body(args)
    if command == "status":
        return _study_status_body(args)
    return _maybe_profiled(args, lambda: _study_body(args))


def _build_study(args: argparse.Namespace) -> Study:
    """Expand the shared grid flags into a :class:`Study` builder."""
    config = _make_config(args)
    study = Study.from_config(config, scenario=args.scenario)
    if args.protocols:
        study.protocols(*args.protocols)
    for sweep_spec in args.sweep or []:
        if len(sweep_spec) < 2:
            raise P2PStreamError(
                "--sweep needs a parameter name and at least one value"
            )
        parameter = sweep_spec[0]
        study.sweep(
            parameter,
            [_coerce_sweep_value(parameter, text) for text in sweep_spec[1:]],
        )
    study.seeds(args.seeds, stride=args.seed_stride)
    return study


def _parse_slice(text: str) -> tuple[int, int]:
    """``I/N`` — this worker's round-robin slice of the spec list."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise P2PStreamError(
            f"--slice must look like I/N (e.g. 0/2), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise P2PStreamError(
            f"--slice needs 0 <= I < N with N >= 1, got {text!r}"
        )
    return index, count


def _study_shard_body(args: argparse.Namespace) -> int:
    config = _make_config(args)
    print(config.describe())
    slice_index, slice_count = _parse_slice(args.slice)
    report = shard_run(
        _build_study(args),
        ResultStore(args.store),
        owner=args.owner,
        lease_seconds=args.lease,
        jobs=args.jobs,
        slice_index=slice_index,
        slice_count=slice_count,
        claim_batch=args.claim_batch,
        executed_log=args.executed_log,
    )
    print(report.summary())
    return 0


def _study_merge_body(args: argparse.Namespace) -> int:
    destination = ResultStore(args.into, require_version=None)
    sources = [ResultStore(path, require_version=None) for path in args.sources]
    report = merge_stores(destination, sources)
    print(report.summary())
    return 0


def _study_status_body(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    # Pending counts need the grid; build it only when the invocation
    # actually describes one (otherwise report just the store's state).
    wants_grid = (
        args.scenario is not None or args.protocols or args.sweep
        or args.seeds != 1
    )
    study = _build_study(args) if wants_grid else None
    print(store_status(store, study).summary())
    return 0


def _study_body(args: argparse.Namespace) -> int:
    if args.resume and not args.cache_dir:
        raise P2PStreamError(
            "--resume needs --cache-dir: resumption is defined by the "
            "records and claims already on disk"
        )
    config = _make_config(args)
    print(config.describe())
    study = _build_study(args)
    result_set = study.run(
        jobs=args.jobs,
        store=_store_from(args),
        cache=not args.no_cache,
        resume=args.resume,
        owner=args.owner,
        lease_seconds=args.lease,
    )
    rows = []
    for record in result_set:
        axes = " ".join(
            f"{name}={value}" for name, value in record.axes
            if name not in ("protocol", "seed")
        )
        rows.append([
            record.scenario or "-",
            record.protocol,
            str(record.seed),
            axes or "-",
            f"{record.scalars['final_capacity']:.0f}",
            f"{100 * record.capacity_fraction_of_max:.1f}%",
            f"{record.wall_seconds:.2f}s",
            "cache" if record.result is None else "run",
        ])
    print(render_table(
        ["scenario", "protocol", "seed", "axes", "capacity", "% of max",
         "wall", "source"],
        rows,
        title=f"study: {len(result_set)} runs",
    ))
    if args.seeds > 1:
        print()
        print("final capacity across seeds (mean ± 95% CI):")
        for key, aggregate in result_set.aggregate("final_capacity").items():
            label = " ".join(
                f"{name}={value}" for name, value in key if value is not None
            )
            print(f"  {label or 'all runs'}: {aggregate}")
    _export_result_set(args, result_set, "study")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _make_config(args)
    print(config.describe())
    result_set = (
        Study.from_config(config, scenario=args.scenario)
        .protocols("dac", "ndac")
        .run(jobs=args.jobs, store=_store_from(args), cache=not args.no_cache)
    )
    results = {record.protocol: record for record in result_set}
    pattern = config.arrival_pattern
    print(report.figure4_report(results, pattern=pattern))
    print()
    print(report.table1_report({(name, pattern): r for name, r in results.items()}))
    _export_result_set(args, result_set, "compare")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _make_config(args)
    values: list[object] = [
        int(v) if args.parameter == "probe_candidates" else v for v in args.values
    ]
    result_set = (
        Study.from_config(config, scenario=args.scenario)
        .sweep(args.parameter, values)
        .run(jobs=args.jobs, store=_store_from(args), cache=not args.no_cache)
    )
    results = {value: record for value, record in zip(values, result_set)}
    if args.parameter == "e_bkf":
        print(report.figure9_report(results))
    else:
        label = {"probe_candidates": "M", "t_out_seconds": "T_out"}[args.parameter]
        print(report.figure8_report(results, parameter_label=label))
    _export_result_set(args, result_set, "sweep")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.analysis.replication import ReplicatedResult

    config = _make_config(args)
    print(config.describe())
    result_set = (
        Study.from_config(config, scenario=args.scenario)
        .seeds(args.replications)
        .run(jobs=args.jobs, store=_store_from(args), cache=not args.no_cache)
    )
    replicated = ReplicatedResult(
        config=config,
        seeds=tuple(record.seed for record in result_set),
        results=tuple(result_set.records),
    )
    print(f"seeds: {', '.join(str(s) for s in replicated.seeds)}")
    rows = [["final capacity", str(replicated.final_capacity())]]
    for peer_class in sorted(config.requesting_peers):
        if config.requesting_peers[peer_class]:
            rows.append([
                f"class {peer_class} rejections",
                str(replicated.rejections_of_class(peer_class)),
            ])
    print(render_table(
        ["metric", "mean ± 95% CI"], rows,
        title=f"{args.replications}-seed replication",
    ))
    _export_result_set(args, result_set, "replicate")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    config = _make_config(args)
    # --kernels wins; a bare --kernel measures just that kernel; neither
    # measures them all.  Same precedence for --engines/--engine, except
    # the default is the workload's own engine, not every engine (the
    # array engine rejects some policies).
    kernels = args.kernels or ([args.kernel] if args.kernel else list(KERNEL_NAMES))
    engines = args.engines or ([args.engine] if args.engine else [config.engine])
    print(config.describe())
    print()

    def measure(label: str, run_config: SimulationConfig) -> tuple[float, list[str]]:
        best = None
        for _ in range(args.repeats):
            result = run_simulation(run_config)
            events_per_sec = result.events_processed / result.wall_seconds
            if best is None or events_per_sec > best[0]:
                best = (events_per_sec, result)
        events_per_sec, result = best
        probes = run_config.probes
        return events_per_sec, [
            label,
            run_config.engine,
            # the array engine has its own dispatch core; kernel is unused
            run_config.kernel if run_config.engine == "object" else "-",
            "all" if probes is None else f"{len(probes)}/{len(PROBE_NAMES)}",
            f"{result.events_processed}",
            f"{result.wall_seconds:.2f}s",
            f"{events_per_sec:,.0f}",
        ]

    rows = []
    reference_events_per_sec = None
    if not args.no_reference:
        # the full-instrumentation path: every probe, message accounting,
        # binary heap — what every run paid before kernels and probe
        # subscriptions existed
        reference = config.replace(
            kernel="heap", engine="object", probes=None, track_messages=True
        )
        reference_events_per_sec, row = measure("reference", reference)
        rows.append(row + ["1.00x"])
    for engine in engines:
        # the kernel axis only exists on the object engine
        for kernel in kernels if engine == "object" else kernels[:1]:
            events_per_sec, row = measure(
                "workload", config.replace(kernel=kernel, engine=engine)
            )
            speedup = (
                f"{events_per_sec / reference_events_per_sec:.2f}x"
                if reference_events_per_sec
                else "-"
            )
            rows.append(row + [speedup])
    print(render_table(
        ["run", "engine", "kernel", "probes", "events", "wall",
         "events/sec", "speedup"],
        rows,
        title="perf: events/sec by engine and kernel",
    ))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    print("registered scenarios:")
    for scenario in all_scenarios():
        print(f"  {scenario.describe()}")
    return 0


def _cmd_assignment(args: argparse.Namespace) -> int:
    ladder = ClassLadder(args.num_classes)
    offers = [
        SupplierOffer(peer_id=i + 1, peer_class=c, units=ladder.offer_units(c))
        for i, c in enumerate(args.classes)
    ]
    for name, algorithm in (
        ("OTS_p2p (optimal)", ots_assignment),
        ("contiguous (Assignment I)", contiguous_assignment),
        ("round robin", round_robin_assignment),
    ):
        assignment = algorithm(offers, ladder)
        print(f"{name}: buffering delay {min_start_delay_slots(assignment)} x dt")
        print(assignment.describe())
        print()
    return 0


def _cmd_patterns(args: argparse.Namespace) -> int:
    window = args.window_hours * 3600.0
    for pattern_id in (1, 2, 3, 4):
        pattern = make_pattern(pattern_id, window)
        times = generate_arrival_times(pattern, args.peers)
        bins = arrivals_per_bin(times, 3600.0, window)
        series = {
            f"pattern {pattern_id}": [
                SeriesPoint(hour=float(h), value=float(v)) for h, v in enumerate(bins)
            ]
        }
        print(ascii_chart(series, title=f"Arrival pattern {pattern_id}",
                          y_label="arrivals/hour", height=10))
        print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # deferred so ordinary simulation commands never import the devtools
    from repro.devtools.staticcheck.cli import run as detlint_run

    return detlint_run(
        args.paths or None,
        root=args.root,
        rules=args.rules,
        list_rules=args.list_rules,
        output_format=args.format,
        baseline=args.baseline,
        write_baseline_path=args.write_baseline,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import list_experiments, run_experiment

    if args.experiment_id is None:
        print("available experiments:")
        print(list_experiments())
        return 0
    config = _make_config(args)
    print(run_experiment(
        args.experiment_id, config,
        store=_store_from(args), cache=not args.no_cache,
    ))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "study": _cmd_study,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "replicate": _cmd_replicate,
    "scenarios": _cmd_scenarios,
    "perf": _cmd_perf,
    "assignment": _cmd_assignment,
    "patterns": _cmd_patterns,
    "lint": _cmd_lint,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except P2PStreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
