"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One simulation run; prints the summary and (optionally) figure reports.
``compare``
    DAC vs NDAC under one pattern; prints Figure 4/5/6 style output.
``sweep``
    Parameter sweep (M, T_out, E_bkf, …) printing Figure 8/9 style output.
``assignment``
    OTS_p2p vs baselines on a supplier set given as classes, e.g.
    ``repro-p2pstream assignment 1 2 3 3``.
``patterns``
    Show the four arrival patterns as ASCII histograms.

Every command accepts ``--scale`` so full paper scale (1.0) or quick runs
(0.05) are one flag away.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import report
from repro.analysis.plots import ascii_chart, render_table
from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    round_robin_assignment,
)
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import min_start_delay_slots
from repro.errors import P2PStreamError
from repro.simulation.arrivals import arrivals_per_bin, generate_arrival_times, make_pattern
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SeriesPoint
from repro.simulation.runner import compare_protocols, run_simulation, sweep_parameter

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-p2pstream",
        description="Reproduction of 'On Peer-to-Peer Media Streaming' (ICDCS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=0.1,
                       help="population scale (1.0 = paper's 50,100 peers)")
        p.add_argument("--pattern", type=int, default=2, choices=[1, 2, 3, 4],
                       help="first-request arrival pattern")
        p.add_argument("--seed", type=int, default=None, help="master RNG seed")
        p.add_argument("--lookup", choices=["directory", "chord"], default="directory")

    run_p = sub.add_parser("run", help="run one simulation")
    add_common(run_p)
    run_p.add_argument("--protocol", default="dac",
                       help="admission policy name (dac, ndac, dac-no-reminder, ...)")
    run_p.add_argument("--figures", action="store_true",
                       help="print Figure 5/6/7 reports for the run")

    cmp_p = sub.add_parser("compare", help="DAC vs NDAC comparison")
    add_common(cmp_p)

    sweep_p = sub.add_parser("sweep", help="parameter sweep")
    add_common(sweep_p)
    sweep_p.add_argument("parameter",
                         choices=["probe_candidates", "t_out_seconds", "e_bkf"])
    sweep_p.add_argument("values", nargs="+", type=float, help="values to sweep")

    asg_p = sub.add_parser("assignment", help="compare assignment algorithms")
    asg_p.add_argument("classes", nargs="+", type=int,
                       help="supplier classes (offers must sum to R0), e.g. 1 2 3 3")
    asg_p.add_argument("--num-classes", type=int, default=4)

    pat_p = sub.add_parser("patterns", help="show the arrival patterns")
    pat_p.add_argument("--peers", type=int, default=5000)
    pat_p.add_argument("--window-hours", type=float, default=72.0)

    exp_p = sub.add_parser(
        "experiment", help="regenerate one paper table/figure by id"
    )
    add_common(exp_p)
    exp_p.add_argument("experiment_id", nargs="?", default=None,
                       help="experiment id (fig1, fig4, ..., table1); omit to list")

    return parser


def _make_config(args: argparse.Namespace, **extra: object) -> SimulationConfig:
    config = SimulationConfig(arrival_pattern=args.pattern, lookup=args.lookup, **extra)
    if args.seed is not None:
        config = config.replace(master_seed=args.seed)
    return config.scaled(args.scale)


def _cmd_run(args: argparse.Namespace) -> int:
    config = _make_config(args, protocol=args.protocol)
    print(config.describe())
    result = run_simulation(config)
    print(result.summary())
    rejections = result.metrics.mean_rejections_before_admission()
    delays = result.metrics.mean_buffering_delay_slots()
    rows = [
        [f"class {c}", f"{rejections[c]:.2f}", f"{delays[c]:.2f}"]
        for c in sorted(rejections)
    ]
    print(render_table(["", "avg rejections", "avg delay (x dt)"], rows))
    if args.figures:
        print()
        print(report.figure5_report(result, label=config.protocol))
        print()
        print(report.figure6_report(result, label=config.protocol))
        print()
        print(report.figure7_report(result))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _make_config(args)
    print(config.describe())
    results = compare_protocols(config)
    print(report.figure4_report(results, pattern=args.pattern))
    print()
    print(report.table1_report({(name, args.pattern): r for name, r in results.items()}))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _make_config(args)
    values: list[object] = [
        int(v) if args.parameter == "probe_candidates" else v for v in args.values
    ]
    results = sweep_parameter(config, args.parameter, values)
    if args.parameter == "e_bkf":
        print(report.figure9_report(results))
    else:
        label = {"probe_candidates": "M", "t_out_seconds": "T_out"}[args.parameter]
        print(report.figure8_report(results, parameter_label=label))
    return 0


def _cmd_assignment(args: argparse.Namespace) -> int:
    ladder = ClassLadder(args.num_classes)
    offers = [
        SupplierOffer(peer_id=i + 1, peer_class=c, units=ladder.offer_units(c))
        for i, c in enumerate(args.classes)
    ]
    for name, algorithm in (
        ("OTS_p2p (optimal)", ots_assignment),
        ("contiguous (Assignment I)", contiguous_assignment),
        ("round robin", round_robin_assignment),
    ):
        assignment = algorithm(offers, ladder)
        print(f"{name}: buffering delay {min_start_delay_slots(assignment)} x dt")
        print(assignment.describe())
        print()
    return 0


def _cmd_patterns(args: argparse.Namespace) -> int:
    window = args.window_hours * 3600.0
    for pattern_id in (1, 2, 3, 4):
        pattern = make_pattern(pattern_id, window)
        times = generate_arrival_times(pattern, args.peers)
        bins = arrivals_per_bin(times, 3600.0, window)
        series = {
            f"pattern {pattern_id}": [
                SeriesPoint(hour=float(h), value=float(v)) for h, v in enumerate(bins)
            ]
        }
        print(ascii_chart(series, title=f"Arrival pattern {pattern_id}",
                          y_label="arrivals/hour", height=10))
        print()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import list_experiments, run_experiment

    if args.experiment_id is None:
        print("available experiments:")
        print(list_experiments())
        return 0
    config = _make_config(args)
    print(run_experiment(args.experiment_id, config))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "assignment": _cmd_assignment,
    "patterns": _cmd_patterns,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except P2PStreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
