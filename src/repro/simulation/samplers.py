"""Periodic metric samplers.

:class:`Samplers` drives the three measurement clocks of a run — the
hourly capacity and rate samples and the 3-hourly favored-class snapshot —
feeding the :class:`~repro.simulation.metrics.MetricsCollector` that backs
Figures 4–9.  Sampling is pure observation: nothing here mutates protocol
state, so the subsystem can be rewired or silenced without changing a
run's dynamics (only its recorded series).

One of the three collaborators behind the
:class:`~repro.simulation.system.StreamingSystem` facade.
"""

from __future__ import annotations

from repro.core.capacity import CapacityLedger
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.metrics import MetricsCollector
from repro.simulation.registry import SupplierRegistry

__all__ = ["Samplers"]


class Samplers:
    """Self-rescheduling capacity/rate/favored samplers."""

    def __init__(
        self,
        *,
        sim: Simulator,
        config: SimulationConfig,
        metrics: MetricsCollector,
        ledger: CapacityLedger,
        registry: SupplierRegistry,
    ) -> None:
        self.sim = sim
        self.config = config
        self.metrics = metrics
        self.ledger = ledger
        self.registry = registry

    def start(self) -> None:
        """Take the t=0 samples; each sampler then reschedules itself.

        Only the clocks some subscribed probe consumes are started at all —
        an unsubscribed artifact costs neither its samples nor its events
        (the Figure-7 snapshot in particular walks the whole supplier
        population every 3 simulated hours).
        """
        if self.metrics.wants_capacity_samples:
            self._sample_capacity(None)
        if self.metrics.wants_rate_samples:
            self._sample_rates(None)
        if self.metrics.wants_favored_samples:
            self._sample_favored(None)

    def _sample_capacity(self, _arg: object) -> None:
        self.metrics.sample_capacity(self.sim.now, self.ledger)
        next_time = self.sim.now + self.config.capacity_sample_seconds
        if next_time <= self.config.horizon_seconds:
            self.sim.schedule_at(next_time, self._sample_capacity, None)

    def _sample_rates(self, _arg: object) -> None:
        self.metrics.sample_rates(self.sim.now)
        next_time = self.sim.now + self.config.rate_sample_seconds
        if next_time <= self.config.horizon_seconds:
            self.sim.schedule_at(next_time, self._sample_rates, None)

    def _sample_favored(self, _arg: object) -> None:
        self.metrics.sample_favored(self.sim.now, self.registry.favored_snapshot())
        next_time = self.sim.now + self.config.favored_snapshot_seconds
        if next_time <= self.config.horizon_seconds:
            self.sim.schedule_at(next_time, self._sample_favored, None)
