"""Minimal, fast discrete-event engine.

Nothing here is specific to streaming: a clock, monotone sequence numbers
for deterministic FIFO tie-breaking of simultaneous events (a strict
requirement for reproducible runs — Python's heap is not stable on its
own), and a dispatch loop.  The pending-event set itself lives behind the
pluggable :class:`~repro.simulation.kernel.EventKernel` seam, chosen per
configuration (``SimulationConfig.kernel``): the classic binary
:class:`~repro.simulation.kernel.HeapKernel` or the bucketed
:class:`~repro.simulation.kernel.CalendarKernel`.  Both honour the same
``(time, sequence)`` dispatch contract, so runs are bit-identical across
kernels (see :mod:`repro.simulation.kernel` for the contract).

Design notes
------------
* Events are ``(time, sequence, handle, callback, argument)`` tuples;
  comparing the monotonically increasing sequence number breaks time ties
  and never falls through to comparing callbacks (which would raise).
* Cancellation is *logical*: :meth:`Simulator.cancel` marks a handle dead
  and the kernel skips dead entries when they surface, compacting its
  storage when dead entries outnumber live ones.
  :attr:`Simulator.pending` is a live-count integer the kernels maintain
  incrementally — it is read in hot loops (runner progress accounting)
  and never recounts the queue.  The streaming system instead mostly uses
  generation counters on its own state, which is cheaper than allocating
  handles for the (very hot) idle-timer path.
* Time is float seconds.  All durations in this reproduction are sums of
  "nice" values (minutes, hours, powers of two), so float determinism is a
  non-issue in practice, and the regression suite pins exact outputs.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import SimulationError
from repro.simulation.kernel import EventHandle, EventKernel, HeapKernel, make_kernel

__all__ = ["Simulator", "EventHandle"]


class Simulator:
    """Clock + sequence numbers + dispatch over a pluggable event kernel.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(5.0, fired.append, "a")
    >>> _ = sim.schedule_at(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    __slots__ = ("now", "kernel", "_sequence", "events_processed")

    #: back-compat alias for the heap kernel's compaction threshold
    COMPACT_MIN_SIZE = HeapKernel.COMPACT_MIN_SIZE

    def __init__(
        self, start_time: float = 0.0, kernel: str | EventKernel = "heap"
    ) -> None:
        self.now = start_time
        self.kernel: EventKernel = (
            make_kernel(kernel) if isinstance(kernel, str) else kernel
        )
        self._sequence = 0
        self.events_processed = 0

    @property
    def _queue(self) -> list:
        """The heap kernel's raw entry list (tests and debugging only)."""
        return self.kernel._queue  # type: ignore[attr-defined]

    def schedule_at(
        self, time: float, callback: Callable, argument: object = None
    ) -> EventHandle:
        """Schedule ``callback(argument)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        self._sequence += 1
        handle = EventHandle(time=time, sequence=self._sequence)
        self.kernel.push((time, self._sequence, handle, callback, argument))
        return handle

    def schedule_in(
        self, delay: float, callback: Callable, argument: object = None
    ) -> EventHandle:
        """Schedule ``callback(argument)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, argument)

    def cancel(self, handle: EventHandle) -> None:
        """Mark an event dead; it is skipped when it reaches the queue head.

        When more than half the kernel's stored entries are dead, the
        kernel rebuilds its storage from the live entries so
        cancellation-heavy workloads don't keep paying queue costs for
        events that will never fire.
        """
        self.kernel.cancel(handle)

    @property
    def pending(self) -> int:
        """Number of live (not fired, not cancelled) events in the queue.

        A counter the kernel maintains incrementally — O(1), safe to read
        in hot progress-accounting loops.
        """
        return self.kernel.live

    def run(self, until: float | None = None) -> None:
        """Process events in time order until the queue drains or ``until``.

        With ``until`` set, events at exactly ``until`` are still processed;
        later ones stay queued and the clock is advanced to ``until``.
        """
        pop_due = self.kernel.pop_due
        while True:
            entry = pop_due(until)
            if entry is None:
                break
            time, _sequence, _handle, callback, argument = entry
            self.now = time
            self.events_processed += 1
            callback(argument)
        if until is not None and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event; False if queue is empty."""
        entry = self.kernel.pop_due(None)
        if entry is None:
            return False
        time, _sequence, _handle, callback, argument = entry
        self.now = time
        self.events_processed += 1
        callback(argument)
        return True
