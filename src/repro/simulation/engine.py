"""Minimal, fast discrete-event engine.

Nothing here is specific to streaming: a binary-heap event queue, a clock,
and deterministic FIFO tie-breaking for simultaneous events (a strict
requirement for reproducible runs — Python's heap is not stable on its own).

Design notes
------------
* Events are ``(time, sequence, callback, argument)`` tuples; comparing the
  monotonically increasing sequence number breaks time ties and never falls
  through to comparing callbacks (which would raise).
* Cancellation is *logical*: :meth:`Simulator.cancel` marks a handle dead
  and the main loop skips dead entries when they surface.  So that
  cancellation-heavy workloads don't drag a growing graveyard through
  every heap operation, the queue is compacted (live entries re-heapified)
  whenever dead entries outnumber live ones; :attr:`Simulator.pending`
  counts live events only.  The streaming system instead mostly uses
  generation counters on its own state, which is cheaper than allocating
  handles for the (very hot) idle-timer path.
* Time is float seconds.  All durations in this reproduction are sums of
  "nice" values (minutes, hours, powers of two), so float determinism is a
  non-issue in practice, and the regression suite pins exact outputs.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["Simulator", "EventHandle"]


@dataclass
class EventHandle:
    """Cancellable reference to a scheduled event."""

    time: float
    sequence: int
    cancelled: bool = False
    #: True once the event has left the queue (fired or skipped)
    done: bool = False


class Simulator:
    """Event queue + clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(5.0, fired.append, "a")
    >>> _ = sim.schedule_at(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    #: don't bother compacting queues smaller than this
    COMPACT_MIN_SIZE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self._queue: list[tuple[float, int, EventHandle, Callable, object]] = []
        self._sequence = 0
        self._cancelled = 0
        self.events_processed = 0

    def schedule_at(
        self, time: float, callback: Callable, argument: object = None
    ) -> EventHandle:
        """Schedule ``callback(argument)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        self._sequence += 1
        handle = EventHandle(time=time, sequence=self._sequence)
        heapq.heappush(self._queue, (time, self._sequence, handle, callback, argument))
        return handle

    def schedule_in(
        self, delay: float, callback: Callable, argument: object = None
    ) -> EventHandle:
        """Schedule ``callback(argument)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, argument)

    def cancel(self, handle: EventHandle) -> None:
        """Mark an event dead; it is skipped when it reaches the queue head.

        When more than half the queued entries are dead, the queue is
        rebuilt from the live entries so cancellation-heavy workloads
        don't keep paying heap costs for events that will never fire.
        """
        if handle.cancelled or handle.done:
            return
        handle.cancelled = True
        self._cancelled += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify (preserves (time, seq) order)."""
        self._queue = [
            entry for entry in self._queue if not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0

    @property
    def pending(self) -> int:
        """Number of live (not fired, not cancelled) events in the queue."""
        return len(self._queue) - self._cancelled

    def run(self, until: float | None = None) -> None:
        """Process events in time order until the queue drains or ``until``.

        With ``until`` set, events at exactly ``until`` are still processed;
        later ones stay queued and the clock is advanced to ``until``.
        """
        while self._queue:
            time, _seq, handle, callback, argument = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            handle.done = True
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self.events_processed += 1
            callback(argument)
        if until is not None and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event; False if queue is empty."""
        while self._queue:
            time, _seq, handle, callback, argument = heapq.heappop(self._queue)
            handle.done = True
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self.events_processed += 1
            callback(argument)
            return True
        return False
