"""The requesting peer's path through the protocol (the demand side).

:class:`RequestPath` implements every interaction a requesting peer has
with the system, end to end:

* first-request arrival scheduling per the configured pattern;
* the probe loop over up to ``M`` lookup candidates, high class to low
  class, with the probabilistic grant test at idle suppliers;
* admission → OTS_p2p session planning → busy marking → session-end events;
* rejection → reminder placement at busy favoring candidates → exponential
  backoff and retry;
* post-session promotion of the requester into the supplier population
  (handed to the :class:`~repro.simulation.registry.SupplierRegistry`);
* under a session-lifecycle model (:mod:`repro.simulation.lifecycle`),
  mid-stream interruption and recovery: sessions are tracked as
  :class:`~repro.streaming.session.ActiveSession` objects keyed by
  supplier, a supplier departure interrupts every session it serves, and
  the requester re-probes, honoring the paper's exponential backoff,
  until it can resume from its buffer position (or restarts/abandons,
  per ``lifecycle_recovery``).

One of the three collaborators behind the
:class:`~repro.simulation.system.StreamingSystem` facade.
"""

from __future__ import annotations

from operator import itemgetter

from repro.core.model import SupplierOffer
from repro.core.requesting import (
    CandidateReport,
    CandidateStatus,
    backoff_delay,
    choose_reminder_set,
)
from repro.errors import SimulationError
from repro.simulation.arrivals import generate_arrival_times, make_pattern
from repro.simulation.churn import NoChurn
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.entities import SimPeer
from repro.simulation.metrics import MetricsCollector
from repro.simulation.randoms import RandomStreams
from repro.simulation.registry import SupplierRegistry
from repro.simulation.trace import TraceRecorder
from repro.streaming.session import ActiveSession, plan_session

__all__ = ["RequestPath"]

#: sort key of the candidate probe order (C-level, it runs per request)
_CANDIDATE_CLASS = itemgetter(1)


class RequestPath:
    """Probe loop, admission, rejection/backoff and session lifecycle."""

    def __init__(
        self,
        *,
        sim: Simulator,
        config: SimulationConfig,
        policy,
        streams: RandomStreams,
        metrics: MetricsCollector,
        peers: list[SimPeer],
        lookup,
        transport,
        churn,
        registry: SupplierRegistry,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.ladder = config.ladder
        self.media = config.media
        self.policy = policy
        self.streams = streams
        self.metrics = metrics
        self.peers = peers
        self.lookup = lookup
        self.transport = transport
        self.churn = churn
        self.registry = registry
        self.trace = trace

        # The probe loop runs once per request event and a few times per
        # candidate — the hottest Python in a run.  Everything constant is
        # resolved once here instead of per event: ladder arithmetic,
        # policy flags, the named RNG streams (their accessors are
        # dict-backed properties), and whether the churn model can ever
        # report a candidate down (NoChurn never consumes RNG, so skipping
        # it is draw-for-draw identical).
        self._full_rate_units = self.ladder.full_rate_units
        self._offer_units = {
            c: self.ladder.offer_units(c) for c in self.ladder.classes
        }
        self._media_id = self.media.media_id
        self._probe_count = config.probe_candidates
        self._uses_reminders = policy.uses_reminders
        self._churn_active = not isinstance(churn, NoChurn)
        self._admission_rng = streams.admission
        self._churn_rng = streams.churn
        self._lookup_rng = streams.lookup
        # A session plan's timing depends only on the multiset of supplier
        # classes (OTS_p2p is deterministic in it), and the backoff only on
        # the rejection count — memoizing both skips re-deriving identical
        # values thousands of times per run.
        self._delay_slots_by_classes: dict[tuple[int, ...], int] = {}
        self._backoff_by_rejections: dict[int, float] = {}
        # Session-lifecycle state.  When disabled (the default) admissions
        # take the handle-free fast path and none of this is touched.
        self._lifecycle_enabled = config.lifecycle != "none"
        self._recovery = config.lifecycle_recovery
        self._sessions_by_supplier: dict[int, list[ActiveSession]] = {}

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def schedule_arrivals(self, requesters: list[SimPeer]) -> None:
        """Place every requester's first request per the arrival pattern."""
        pattern = make_pattern(
            self.config.arrival_pattern, self.config.arrival_window_seconds
        )
        times = generate_arrival_times(
            pattern,
            len(requesters),
            deterministic=self.config.deterministic_arrivals,
            rng=self.streams.arrivals,
        )
        for peer, time in zip(requesters, times):
            self.sim.schedule_at(time, self.on_request, peer)

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def on_request(self, peer: SimPeer) -> None:
        """A requesting peer makes a (first or retry) streaming request."""
        if peer.first_request_time is None:
            peer.first_request_time = self.sim.now
            self.metrics.on_first_request(peer.peer_class)
        else:
            self.metrics.on_retry(peer.peer_class)

        outcome = self._probe_candidates(peer)
        if outcome is None:
            self._reject(peer, enlisted_units=0, contacted_busy=[])
            return
        enlisted, contacted_busy, deficit = outcome
        if deficit == 0:
            self._admit(peer, enlisted)
        else:
            self._reject(
                peer,
                enlisted_units=self._full_rate_units - deficit,
                contacted_busy=contacted_busy,
            )

    def _probe_candidates(
        self, peer: SimPeer
    ) -> tuple[list[SimPeer], list[CandidateReport], int] | None:
        """Contact up to ``M`` candidates high-class-first; returns
        ``(enlisted suppliers, busy candidate reports, remaining deficit)``,
        or None when the lookup produced no candidates at all."""
        candidates = self.lookup.candidates(
            self._media_id, self._probe_count, peer.peer_id, self._lookup_rng
        )
        if not candidates:
            return None
        # Stable sort by class keeps the lookup's random order within a class.
        candidates.sort(key=_CANDIDATE_CLASS)

        admission_random = self._admission_rng.random
        peers = self.peers
        transport = self.transport
        offer_units = self._offer_units
        churn = self.churn if self._churn_active else None
        collect_busy = self._uses_reminders
        requester_id = peer.peer_id
        requester_class = peer.peer_class
        deficit = self._full_rate_units
        enlisted: list[SimPeer] = []
        contacted_busy: list[CandidateReport] = []

        for candidate_id, candidate_class in candidates:
            supplier = peers[candidate_id]
            if transport is not None:
                transport.round_trip("probe", requester_id, candidate_id)
            if churn is not None and churn.is_down(
                candidate_id, self.sim.now, self._churn_rng
            ):
                continue
            state = supplier.admission
            if state is None:
                raise SimulationError(
                    f"candidate {candidate_id} has no admission state"
                )
            if state.busy:
                state.on_request_while_busy(requester_class)
                # The reports only feed reminder placement; policies
                # without reminders never read them.
                if collect_busy:
                    contacted_busy.append(
                        CandidateReport(
                            peer_id=candidate_id,
                            peer_class=candidate_class,
                            units=offer_units[candidate_class],
                            status=CandidateStatus.BUSY,
                            favors_requester=state.favors(requester_class),
                        )
                    )
                continue
            probability = state.grant_probability(requester_class)
            if probability >= 1.0 or admission_random() < probability:
                # Candidates arrive in descending-offer order, so a granted
                # offer always fits the remaining deficit exactly (the
                # power-of-two ladder; see core.requesting.greedy_fill).
                enlisted.append(supplier)
                deficit -= offer_units[candidate_class]
                if deficit == 0:
                    break
        return enlisted, contacted_busy, deficit

    def _admit(self, peer: SimPeer, enlisted: list[SimPeer]) -> None:
        """Start the streaming session for an admitted requesting peer."""
        delay_slots = self._buffering_delay_slots(enlisted)
        num_suppliers = len(enlisted)
        for supplier in enlisted:
            supplier.admission.on_session_start()
            supplier.bump_idle_generation()
            supplier.sessions_served += 1
            if self.transport is not None:
                self.transport.send("session_start", peer.peer_id, supplier.peer_id)

        peer.admitted_time = self.sim.now
        peer.buffering_delay_slots = delay_slots
        peer.num_suppliers_served_by = num_suppliers
        self.metrics.on_admission(
            peer.peer_class,
            rejections_before=peer.rejections,
            num_suppliers=num_suppliers,
            buffering_delay_slots=delay_slots,
            waiting_seconds=peer.waiting_time or 0.0,
        )
        if self.trace:
            self.trace.record(
                "admission",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                suppliers=[s.peer_id for s in enlisted],
                delay_slots=delay_slots,
            )
        # The transfer takes exactly the show time (aggregate supply rate
        # == R0; see StreamingSession.transfer_seconds).
        if self._lifecycle_enabled:
            session = ActiveSession(
                requester=peer,
                suppliers=list(enlisted),
                resumed_at=self.sim.now,
                remaining_seconds=self.media.show_seconds,
            )
            session.end_handle = self.sim.schedule_in(
                self.media.show_seconds, self._on_tracked_session_end, session
            )
            self._track(session)
        else:
            self.sim.schedule_in(
                self.media.show_seconds, self._on_session_end, (peer, enlisted)
            )

    def _buffering_delay_slots(self, enlisted: list[SimPeer]) -> int:
        """OTS_p2p buffering delay for this supplier set, memoized.

        The delay depends only on the multiset of supplier classes, so the
        full session plan (assignment + schedule) runs once per distinct
        class combination; every later admission with the same mix reuses
        the value.  ``plan_session`` itself stays the single source of
        truth — this is a cache, not a reimplementation.
        """
        key = tuple(sorted(supplier.peer_class for supplier in enlisted))
        delay = self._delay_slots_by_classes.get(key)
        if delay is None:
            offers = [
                SupplierOffer(
                    peer_id=index,
                    peer_class=peer_class,
                    units=self._offer_units[peer_class],
                )
                for index, peer_class in enumerate(key)
            ]
            session = plan_session(
                requester_id=-1,
                requester_class=1,
                offers=offers,
                media=self.media,
                ladder=self.ladder,
            )
            delay = session.buffering_delay_slots
            self._delay_slots_by_classes[key] = delay
        return delay

    def _reject(
        self,
        peer: SimPeer,
        enlisted_units: int,
        contacted_busy: list[CandidateReport],
    ) -> None:
        """Handle a rejection: reminders, backoff, retry scheduling."""
        peer.rejections += 1
        self.metrics.on_rejection(peer.peer_class)

        if self._uses_reminders and contacted_busy:
            shortfall = self._full_rate_units - enlisted_units
            for report in choose_reminder_set(contacted_busy, shortfall):
                supplier = self.peers[report.peer_id]
                supplier.admission.on_reminder(peer.peer_class)
                self.metrics.on_reminder(peer.peer_class)
                if self.transport is not None:
                    self.transport.send("reminder", peer.peer_id, report.peer_id)

        delay = self._backoff_by_rejections.get(peer.rejections)
        if delay is None:
            delay = backoff_delay(
                peer.rejections, self.config.t_bkf_seconds, self.config.e_bkf
            )
            self._backoff_by_rejections[peer.rejections] = delay
        if self.trace:
            self.trace.record(
                "rejection",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                rejections=peer.rejections,
                backoff_seconds=delay,
            )
        retry_at = self.sim.now + delay
        if retry_at <= self.config.horizon_seconds:
            self.sim.schedule_at(retry_at, self.on_request, peer)

    def _on_session_end(self, payload: tuple[SimPeer, list[SimPeer]]) -> None:
        """A streaming session finished: free suppliers, promote requester."""
        peer, enlisted = payload
        for supplier in enlisted:
            supplier.admission.on_session_end()
            supplier.bump_idle_generation()
            self.registry.arm_idle_timer(supplier)
            if self.transport is not None:
                self.transport.send("session_end", peer.peer_id, supplier.peer_id)
        peer.promote(self.policy.make_supplier_state(peer.peer_class, self.ladder))
        self.registry.register(peer)

    # ------------------------------------------------------------------
    # session lifecycle: interruption and recovery (lifecycle models only)
    # ------------------------------------------------------------------
    def _track(self, session: ActiveSession) -> None:
        """Index the session under each supplier currently serving it."""
        for supplier in session.suppliers:
            self._sessions_by_supplier.setdefault(supplier.peer_id, []).append(
                session
            )

    def _untrack(self, session: ActiveSession) -> None:
        """Drop the session from every supplier's index entry."""
        for supplier in session.suppliers:
            sessions = self._sessions_by_supplier.get(supplier.peer_id)
            if sessions is not None:
                try:
                    sessions.remove(session)
                except ValueError:
                    pass  # the departing supplier's entry was popped whole
                if not sessions:
                    del self._sessions_by_supplier[supplier.peer_id]

    def _on_tracked_session_end(self, session: ActiveSession) -> None:
        """A lifecycle-tracked session delivered its final byte."""
        self._untrack(session)
        peer = session.requester
        for supplier in session.suppliers:
            supplier.admission.on_session_end()
            supplier.bump_idle_generation()
            self.registry.arm_idle_timer(supplier)
            if self.transport is not None:
                self.transport.send("session_end", peer.peer_id, supplier.peer_id)
        show = self.media.show_seconds
        self.metrics.on_session_complete(
            peer.peer_class,
            session.stall_seconds,
            session.interruptions,
            show / (show + session.stall_seconds),
        )
        peer.promote(self.policy.make_supplier_state(peer.peer_class, self.ladder))
        self.registry.register(peer)

    def on_supplier_departed(self, departed: SimPeer) -> None:
        """A supplier died mid-stream; interrupt every session it serves.

        Called by :class:`~repro.simulation.lifecycle.LifecycleDynamics`
        *after* the departure bookkeeping (ledger, lookup), so recovery
        probes can no longer discover the departed supplier.
        """
        sessions = self._sessions_by_supplier.pop(departed.peer_id, None)
        if not sessions:
            return
        for session in list(sessions):
            self._interrupt(session, departed)

    def _interrupt(self, session: ActiveSession, departed: SimPeer) -> None:
        """Stop a session mid-stream and start the configured recovery."""
        now = self.sim.now
        self.sim.cancel(session.end_handle)
        self._untrack(session)
        elapsed = now - session.resumed_at
        session.remaining_seconds = max(0.0, session.remaining_seconds - elapsed)
        peer = session.requester
        for supplier in session.suppliers:
            # Free every enlisted supplier — including the departed one,
            # whose busy flag must not survive into its next online period.
            supplier.admission.on_session_end()
            supplier.bump_idle_generation()
            if supplier is not departed:
                self.registry.arm_idle_timer(supplier)
                if self.transport is not None:
                    self.transport.send(
                        "session_interrupt", peer.peer_id, supplier.peer_id
                    )
        session.interruptions += 1
        session.interrupted_at = now
        session.recovery_attempts = 0
        self.metrics.on_interruption(peer.peer_class)
        if self.trace:
            self.trace.record(
                "session_interrupted",
                now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                departed=departed.peer_id,
                remaining_seconds=session.remaining_seconds,
            )
        if self._recovery == "abandon":
            self.metrics.on_session_lost(peer.peer_class)
            return
        if self._recovery == "restart":
            session.remaining_seconds = self.media.show_seconds
        # The recovery probe runs as its own event at the current time, so
        # a mass departure interrupts every session first and the freed-up
        # survivors are probed afterwards, in FIFO order.
        self.sim.schedule_at(now, self._attempt_recovery, session)

    def _attempt_recovery(self, session: ActiveSession) -> None:
        """Re-probe for the interrupted requester; resume or back off.

        Recovery probes reuse the admission probe loop (``M`` candidates,
        high class first, grant tests) but leave no reminders — an
        interrupted peer is mid-session, not queueing for a first slot.
        Failures back off exponentially per the paper's
        ``T_bkf``/``E_bkf``, counted from the interruption.
        """
        peer = session.requester
        outcome = self._probe_candidates(peer)
        enlisted: list[SimPeer] = []
        deficit = self._full_rate_units
        if outcome is not None:
            enlisted, _contacted_busy, deficit = outcome
        if deficit == 0:
            self._resume(session, enlisted)
            return
        session.recovery_attempts += 1
        self.metrics.on_recovery_retry(peer.peer_class)
        delay = self._backoff_by_rejections.get(session.recovery_attempts)
        if delay is None:
            delay = backoff_delay(
                session.recovery_attempts,
                self.config.t_bkf_seconds,
                self.config.e_bkf,
            )
            self._backoff_by_rejections[session.recovery_attempts] = delay
        retry_at = self.sim.now + delay
        if retry_at <= self.config.horizon_seconds:
            self.sim.schedule_at(retry_at, self._attempt_recovery, session)
        else:
            self.metrics.on_session_lost(peer.peer_class)
            if self.trace:
                self.trace.record(
                    "session_lost",
                    self.sim.now,
                    peer=peer.peer_id,
                    peer_class=peer.peer_class,
                    recovery_attempts=session.recovery_attempts,
                )

    def _resume(self, session: ActiveSession, enlisted: list[SimPeer]) -> None:
        """Re-admit an interrupted session onto a fresh supplier set."""
        now = self.sim.now
        peer = session.requester
        delay_slots = self._buffering_delay_slots(enlisted)
        for supplier in enlisted:
            supplier.admission.on_session_start()
            supplier.bump_idle_generation()
            supplier.sessions_served += 1
            if self.transport is not None:
                self.transport.send(
                    "session_resume", peer.peer_id, supplier.peer_id
                )
        latency = now - session.interrupted_at
        # The stall the viewer sees: waiting for re-admission plus the
        # resumed session's buffering delay before playback restarts.
        stall = latency + self.media.slots_to_seconds(delay_slots)
        session.stall_seconds += stall
        session.interrupted_at = None
        session.suppliers = list(enlisted)
        session.resumed_at = now
        session.end_handle = self.sim.schedule_in(
            session.remaining_seconds, self._on_tracked_session_end, session
        )
        self._track(session)
        self.metrics.on_recovery(peer.peer_class, latency, stall)
        if self.trace:
            self.trace.record(
                "session_resumed",
                now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                suppliers=[s.peer_id for s in enlisted],
                recovery_latency_seconds=latency,
                remaining_seconds=session.remaining_seconds,
            )
