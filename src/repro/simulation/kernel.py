"""Pluggable event-queue kernels behind the :class:`Simulator` facade.

A *kernel* owns the pending-event set of a run: it stores ``(time,
sequence, handle, callback, argument)`` entries, hands back the earliest
one on demand, and tracks logical cancellation.  The
:class:`~repro.simulation.engine.Simulator` supplies the clock, the
monotone sequence numbers and the dispatch loop; everything about *how*
the pending set is organised lives here, so alternative priority-queue
disciplines can be swapped per :class:`~repro.simulation.config.SimulationConfig`
without touching the simulation layer.

The determinism contract
------------------------
Every kernel MUST dispatch events in strictly increasing ``(time,
sequence)`` order, where ``sequence`` is the monotonically increasing
integer the simulator assigns at ``schedule_*`` time:

* events at distinct times fire in time order;
* events at the *same* time fire in scheduling (FIFO) order — Python
  heaps are not stable on their own, which is why the sequence number is
  part of every entry and always compared before anything else could be;
* cancellation is *logical* (the handle is flagged; the entry is skipped
  when it surfaces) so cancelling never perturbs the order of the
  surviving events;
* kernels never compare callbacks or arguments (sequence numbers are
  unique, so tuple comparison always stops at the sequence).

Because the simulation layer derives every random draw from named,
config-seeded streams and schedules events in a deterministic order, this
contract makes kernels *interchangeable*: the same configuration produces
bit-identical metrics under :class:`HeapKernel` and
:class:`CalendarKernel` (the cross-kernel parity suite in
``tests/simulation/test_kernel.py`` pins exactly that, and
:func:`~repro.orchestration.runspec.config_hash` therefore excludes the
``kernel`` field from result-cache keys).

Kernels
-------
:class:`HeapKernel`
    The classic single binary heap.  Robust for any event mix; every
    push/pop costs ``O(log n)`` tuple comparisons over the whole pending
    set — which at population scale (100k prescheduled arrivals) is the
    dominant constant of the hot loop.
:class:`CalendarKernel`
    A bucketed calendar queue: entries hash into fixed-width time buckets
    (default 120 s), each bucket a small heap, with a second tiny heap
    ordering the non-empty bucket indices.  Tuned for the near-future
    timer churn that dominates this workload (idle-elevation ``T_out``,
    backoff retries, session ends): pushes land in buckets of tens of
    entries instead of a 100k-entry global heap.  Simulated time only
    moves forward, so bucket indices are popped monotonically.
:class:`AutoCalendarKernel`
    The calendar queue with its bucket width chosen from the workload
    itself: entries are staged until the first pop (in practice, the end
    of system construction — prescheduled arrivals, timers, samplers),
    then the width is set from the staged events' mean spacing so buckets
    hold roughly :attr:`~AutoCalendarKernel.TARGET_PER_BUCKET` entries.
    Spares population-scale runs from hand-tuning ``bucket_seconds``.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "EventHandle",
    "EventKernel",
    "HeapKernel",
    "CalendarKernel",
    "AutoCalendarKernel",
    "KERNEL_NAMES",
    "make_kernel",
]

#: one queued event: (time, sequence, handle, callback, argument)
Entry = tuple[float, int, "EventHandle", Callable, object]


@dataclass(slots=True)
class EventHandle:
    """Cancellable reference to a scheduled event."""

    time: float
    sequence: int
    cancelled: bool = False
    #: True once the event has left the queue (fired or skipped)
    done: bool = False


@runtime_checkable
class EventKernel(Protocol):
    """What the :class:`~repro.simulation.engine.Simulator` needs of a queue."""

    #: number of live (not fired, not cancelled) entries — maintained
    #: incrementally, never recounted
    live: int

    def push(self, entry: Entry) -> None:
        """Store one event entry (its time is ``>=`` the current clock)."""
        ...

    def cancel(self, handle: EventHandle) -> None:
        """Logically delete the entry behind ``handle`` (idempotent)."""
        ...

    def pop_due(self, until: float | None) -> Entry | None:
        """Remove and return the earliest live event's stored entry;
        ``None`` when the queue is empty or the earliest live event is
        after ``until``.  The stored tuple itself is returned — one less
        allocation on a path that runs once per event."""
        ...


class HeapKernel:
    """Single binary-heap event queue with dead-entry compaction.

    Cancellation marks the handle and the main loop skips dead entries
    when they surface.  So that cancellation-heavy workloads don't drag a
    growing graveyard through every heap operation, the queue is
    compacted (live entries re-heapified) whenever dead entries outnumber
    live ones and the queue is at least :attr:`COMPACT_MIN_SIZE` long.
    """

    name = "heap"

    #: don't bother compacting queues smaller than this
    COMPACT_MIN_SIZE = 64

    __slots__ = ("_queue", "_dead", "live")

    def __init__(self) -> None:
        self._queue: list[Entry] = []
        self._dead = 0
        self.live = 0

    def push(self, entry: Entry) -> None:
        """O(log n) insert."""
        heapq.heappush(self._queue, entry)
        self.live += 1

    def cancel(self, handle: EventHandle) -> None:
        """Flag the handle dead; compact when the dead outnumber the live."""
        if handle.cancelled or handle.done:
            return
        handle.cancelled = True
        self._dead += 1
        self.live -= 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._dead * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify (preserves (time, seq) order)."""
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    def pop_due(self, until: float | None) -> Entry | None:
        """Earliest live entry at or before ``until`` (``None`` if none)."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if until is not None and entry[0] > until:
                return None
            heapq.heappop(queue)
            handle = entry[2]
            handle.done = True
            if handle.cancelled:
                self._dead -= 1
                continue
            self.live -= 1
            return entry
        return None


class CalendarKernel:
    """Bucketed calendar queue tuned for near-future timer churn.

    Entries hash by ``int(time // bucket_seconds)`` into per-bucket heaps;
    a small heap of bucket indices orders the buckets themselves.  All
    entries of bucket ``i`` precede all entries of bucket ``j > i``, and
    the per-bucket heaps order ``(time, sequence)`` within a bucket, so
    global dispatch order is exactly the heap kernel's.

    The width trades bucket count against bucket size; the default suits
    the paper's minutes-scale timers (``T_out`` 20 min, backoff >= 10 min,
    hourly samplers) at populations of 10k-100k peers.
    """

    name = "calendar"

    #: default bucket width in simulated seconds
    DEFAULT_BUCKET_SECONDS = 120.0

    #: don't bother compacting queues smaller than this (same policy as
    #: the heap kernel, applied across all buckets)
    COMPACT_MIN_SIZE = 64

    __slots__ = ("_width", "_buckets", "_order", "_dead", "live")

    def __init__(self, bucket_seconds: float = DEFAULT_BUCKET_SECONDS) -> None:
        if bucket_seconds <= 0:
            raise ConfigurationError(
                f"bucket width must be > 0 seconds, got {bucket_seconds}"
            )
        self._width = bucket_seconds
        self._buckets: dict[int, list[Entry]] = {}
        #: heap of the indices of currently existing buckets
        self._order: list[int] = []
        self._dead = 0
        self.live = 0

    def push(self, entry: Entry) -> None:
        """O(log bucket-size) insert, plus O(log buckets) on first use."""
        index = int(entry[0] // self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = bucket = []
            heapq.heappush(self._order, index)
        heapq.heappush(bucket, entry)
        self.live += 1

    def cancel(self, handle: EventHandle) -> None:
        """Flag the handle dead; compact when the dead outnumber the live."""
        if handle.cancelled or handle.done:
            return
        handle.cancelled = True
        self._dead += 1
        self.live -= 1
        size = self.live + self._dead
        if size >= self.COMPACT_MIN_SIZE and self._dead * 2 > size:
            self._compact()

    def _compact(self) -> None:
        """Rebuild every bucket from its live entries; drop empty buckets."""
        buckets: dict[int, list[Entry]] = {}
        for index, bucket in self._buckets.items():
            kept = [entry for entry in bucket if not entry[2].cancelled]
            if kept:
                heapq.heapify(kept)
                buckets[index] = kept
        self._buckets = buckets
        self._order = sorted(buckets)
        self._dead = 0

    def pop_due(self, until: float | None) -> Entry | None:
        """Earliest live entry at or before ``until`` (``None`` if none)."""
        order = self._order
        buckets = self._buckets
        while order:
            index = order[0]
            bucket = buckets.get(index)
            if not bucket:
                # drained (or compacted away) bucket; retire its index
                heapq.heappop(order)
                if bucket is not None:
                    del buckets[index]
                continue
            entry = bucket[0]
            if until is not None and entry[0] > until:
                return None
            heapq.heappop(bucket)
            handle = entry[2]
            handle.done = True
            if handle.cancelled:
                self._dead -= 1
                continue
            self.live -= 1
            return entry
        return None


class AutoCalendarKernel(CalendarKernel):
    """Calendar queue that sizes its buckets from the workload itself.

    A fixed bucket width is a wager on the event mix: too narrow and a
    long-horizon run pays for millions of empty buckets, too wide and a
    population-scale run degenerates into a handful of giant heaps.  This
    kernel defers the bet.  Pushes are *staged* in a plain list until the
    first :meth:`pop_due` — by which point system construction has
    prescheduled the bulk of the workload (arrivals, samplers, lifecycle
    timers) — then the width is calibrated so that a bucket holds roughly
    :attr:`TARGET_PER_BUCKET` of the staged entries::

        width = clamp(span / count * TARGET_PER_BUCKET,
                      MIN_BUCKET_SECONDS, MAX_BUCKET_SECONDS)

    where ``span`` is the staged entries' time range.  The staged entries
    are then folded into the calendar and the kernel behaves exactly like
    :class:`CalendarKernel` from there on.

    The width only affects how entries are *binned*, never the ``(time,
    sequence)`` dispatch order, so the determinism contract — and
    cross-kernel bit-parity — holds regardless of what width the
    calibration picks.
    """

    name = "calendar-auto"

    #: aim for about this many staged entries per bucket
    TARGET_PER_BUCKET = 16

    #: calibration clamp — never finer than a second, never coarser than
    #: an hour (the workload's outermost timer scale)
    MIN_BUCKET_SECONDS = 1.0
    MAX_BUCKET_SECONDS = 3600.0

    __slots__ = ("_staged",)

    def __init__(self) -> None:
        super().__init__()
        #: pushes received before calibration; ``None`` once calibrated
        self._staged: list[Entry] | None = []

    def push(self, entry: Entry) -> None:
        """Stage until first pop; calendar insert thereafter.

        The calendar insert is inlined (not ``super().push``): push runs
        once per scheduled event, and the extra bound-method call showed
        up as a measurable constant in ``bench_calendar_width.py``.
        """
        staged = self._staged
        if staged is not None:
            staged.append(entry)
            self.live += 1
            return
        index = int(entry[0] // self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = bucket = []
            heapq.heappush(self._order, index)
        heapq.heappush(bucket, entry)
        self.live += 1

    def cancel(self, handle: EventHandle) -> None:
        """Flag the handle dead (staged entries are dropped at calibration)."""
        if self._staged is None:
            super().cancel(handle)
            return
        if handle.cancelled or handle.done:
            return
        # No compaction while staging: the buckets are still empty, and
        # calibration filters cancelled entries out anyway.
        handle.cancelled = True
        self.live -= 1

    def pop_due(self, until: float | None) -> Entry | None:
        """Calibrate on first use, then run the calendar pop (inlined —
        this is the once-per-event path; see :meth:`push`)."""
        if self._staged is not None:
            self._calibrate()
        order = self._order
        buckets = self._buckets
        while order:
            index = order[0]
            bucket = buckets.get(index)
            if not bucket:
                heapq.heappop(order)
                if bucket is not None:
                    del buckets[index]
                continue
            entry = bucket[0]
            if until is not None and entry[0] > until:
                return None
            heapq.heappop(bucket)
            handle = entry[2]
            handle.done = True
            if handle.cancelled:
                self._dead -= 1
                continue
            self.live -= 1
            return entry
        return None

    def _calibrate(self) -> None:
        """Pick the bucket width from the staged entries and fold them in."""
        entries = [
            entry for entry in self._staged if not entry[2].cancelled
        ]
        self._staged = None
        if not entries:
            return  # keep the default width; nothing to learn from
        times = [entry[0] for entry in entries]
        span = max(times) - min(times)
        width = span / len(entries) * self.TARGET_PER_BUCKET
        self._width = min(
            self.MAX_BUCKET_SECONDS, max(self.MIN_BUCKET_SECONDS, width)
        )
        buckets = self._buckets
        width = self._width
        for entry in entries:
            index = int(entry[0] // width)
            bucket = buckets.get(index)
            if bucket is None:
                buckets[index] = bucket = []
            bucket.append(entry)
        for bucket in buckets.values():
            heapq.heapify(bucket)
        self._order = sorted(buckets)
        # ``live`` was maintained during staging; cancelled staged entries
        # never entered the buckets, so the dead count stays zero.


#: registered kernels, by config name
_KERNELS: dict[str, type] = {
    HeapKernel.name: HeapKernel,
    CalendarKernel.name: CalendarKernel,
    AutoCalendarKernel.name: AutoCalendarKernel,
}

#: valid values of ``SimulationConfig.kernel``
KERNEL_NAMES: tuple[str, ...] = tuple(sorted(_KERNELS))


def make_kernel(name: str) -> EventKernel:
    """Instantiate a registered kernel by config name."""
    try:
        kernel_class = _KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown event kernel {name!r}; known: {', '.join(KERNEL_NAMES)}"
        ) from None
    return kernel_class()
