"""Composable metric probes and the :class:`MetricsPipeline` behind them.

The monolithic collector used to accumulate *every* series of the paper's
evaluation on every run.  This module breaks it into one probe per paper
artifact, so a study subscribes only to the series it needs and the hot
path skips the untouched accumulators (and, through
:class:`~repro.simulation.samplers.Samplers`, never even schedules the
sampler events of unsubscribed probes — the Figure-7 snapshot walks the
whole supplier population and is the single most expensive observation):

=====================  ==============  ====================================
Paper artifact          Probe name      Output
=====================  ==============  ====================================
Figure 4                ``capacity``    ``capacity_series`` — hourly
                                        ``(hour, sessions)`` plus the
                                        fractional and supplier-count series
Figure 5                ``admission_rate``  ``admission_rate_series[class]``
Figure 6                ``buffering_delay`` ``buffering_delay_series[class]``
                                        and the per-class delay means
Figure 7                ``favored``     ``favored_series[supplier class]``
Figure 9                ``overall_admission`` ``overall_admission_rate_series``
Table 1                 ``table1``      ``mean_rejections_before_admission``
(waiting time)          ``waiting``     ``mean_waiting_seconds[class]``
(lifecycle extension)   ``continuity``  interruption/stall counters,
                                        recovery latency, playback
                                        continuity index
=====================  ==============  ====================================

The cheap cumulative event counters (requests, rejections, admissions,
reminders, supplier churn) stay in the pipeline core: they cost one dict
increment each, nearly every probe derives from them, and the admission
*rate* artifacts need them even when every optional accumulator is off.

All cumulative series sample *state so far*, matching the paper's
"accumulative" plots.  With every probe enabled (the default), the
pipeline is event-for-event identical to the historical monolithic
``MetricsCollector`` — which is now a thin alias over this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.core.model import ClassLadder
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.capacity import CapacityLedger

__all__ = [
    "SeriesPoint",
    "Probe",
    "CapacityProbe",
    "AdmissionRateProbe",
    "BufferingDelayProbe",
    "FavoredClassProbe",
    "OverallAdmissionProbe",
    "Table1Probe",
    "WaitingTimeProbe",
    "ContinuityProbe",
    "MetricsPipeline",
    "PROBE_NAMES",
    "DEFAULT_PROBES",
]

HOUR = 3600.0


@dataclass(frozen=True, slots=True)
class SeriesPoint:
    """One sample of a time series: simulated hour plus a value."""

    hour: float
    value: float


class Probe:
    """One paper artifact's accumulators and samplers.

    Subclasses override only the hooks their artifact needs; the pipeline
    inspects which hooks are overridden and dispatches exclusively to
    those, so an unused hook costs nothing per event.
    """

    #: registry key (also the ``SimulationConfig.probes`` vocabulary)
    name: ClassVar[str] = "abstract"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        """Attach to the pipeline whose counters the probe derives from."""
        self.pipeline = pipeline
        self.ladder = pipeline.ladder

    # ---- optional event hooks (rare events only; hot-path counters
    # ---- live in the pipeline core) ----------------------------------
    def on_admission(
        self,
        peer_class: int,
        rejections_before: int,
        num_suppliers: int,
        buffering_delay_slots: int,
        waiting_seconds: float,
    ) -> None:
        """A peer was admitted."""

    # ---- optional lifecycle hooks (fire only when a lifecycle model
    # ---- interrupts sessions; see repro.simulation.lifecycle) ---------
    def on_interruption(self, peer_class: int) -> None:
        """A class-``peer_class`` requester's session was interrupted."""

    def on_recovery(
        self, peer_class: int, latency_seconds: float, stall_seconds: float
    ) -> None:
        """An interrupted session was re-admitted and resumed."""

    def on_recovery_retry(self, peer_class: int) -> None:
        """A recovery probe failed; the requester backs off and retries."""

    def on_session_lost(self, peer_class: int) -> None:
        """An interrupted session was permanently lost."""

    def on_session_complete(
        self,
        peer_class: int,
        stall_seconds: float,
        interruptions: int,
        continuity: float,
    ) -> None:
        """A (lifecycle-tracked) session delivered its final byte."""

    # ---- optional sampler hooks (drive which clocks get scheduled) ----
    def sample_capacity(self, now_seconds: float, ledger: "CapacityLedger") -> None:
        """Periodic capacity-clock sample."""

    def sample_rates(self, now_seconds: float) -> None:
        """Periodic rate-clock sample."""

    def sample_favored(
        self, now_seconds: float, lowest_favored_by_class: dict[int, list[int]]
    ) -> None:
        """Periodic favored-class snapshot."""

    # ---- export -------------------------------------------------------
    def export(self) -> dict:
        """This probe's contribution to ``MetricsPipeline.to_dict``."""
        return {}


class CapacityProbe(Probe):
    """Figure 4: hourly capacity (sessions), fractional capacity and
    supplier head count."""

    name = "capacity"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        self.capacity_series: list[SeriesPoint] = []
        self.capacity_fractional_series: list[SeriesPoint] = []
        self.supplier_count_series: list[SeriesPoint] = []

    def sample_capacity(self, now_seconds: float, ledger: "CapacityLedger") -> None:
        hour = now_seconds / HOUR
        self.capacity_series.append(SeriesPoint(hour, float(ledger.sessions)))
        self.capacity_fractional_series.append(
            SeriesPoint(hour, ledger.sessions_fractional)
        )
        self.supplier_count_series.append(
            SeriesPoint(hour, float(ledger.num_suppliers))
        )

    def final_capacity(self) -> float:
        """Last Figure-4 sample (sessions)."""
        return self.capacity_series[-1].value if self.capacity_series else 0.0

    def export(self) -> dict:
        def dump(series: list[SeriesPoint]) -> list[tuple[float, float]]:
            return [(point.hour, point.value) for point in series]

        return {
            "capacity_series": dump(self.capacity_series),
            "capacity_fractional_series": dump(self.capacity_fractional_series),
            "supplier_count_series": dump(self.supplier_count_series),
        }


class AdmissionRateProbe(Probe):
    """Figure 5: hourly cumulative per-class admission rate, in percent."""

    name = "admission_rate"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        self.admission_rate_series: dict[int, list[SeriesPoint]] = {
            c: [] for c in self.ladder.classes
        }

    def sample_rates(self, now_seconds: float) -> None:
        hour = now_seconds / HOUR
        first_requests = self.pipeline.first_requests
        admitted = self.pipeline.admitted
        for peer_class, series in self.admission_rate_series.items():
            first = first_requests[peer_class]
            if first > 0:
                rate = 100.0 * admitted[peer_class] / first
                series.append(SeriesPoint(hour, rate))

    def export(self) -> dict:
        return {
            "admission_rate_series": {
                c: [(p.hour, p.value) for p in series]
                for c, series in self.admission_rate_series.items()
            }
        }


class OverallAdmissionProbe(Probe):
    """Figure 9: hourly cumulative admission rate over all classes."""

    name = "overall_admission"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        self.overall_admission_rate_series: list[SeriesPoint] = []

    def sample_rates(self, now_seconds: float) -> None:
        total_first = sum(self.pipeline.first_requests.values())
        if total_first > 0:
            total_admitted = sum(self.pipeline.admitted.values())
            self.overall_admission_rate_series.append(
                SeriesPoint(now_seconds / HOUR, 100.0 * total_admitted / total_first)
            )

    def export(self) -> dict:
        return {
            "overall_admission_rate_series": [
                (p.hour, p.value) for p in self.overall_admission_rate_series
            ]
        }


class BufferingDelayProbe(Probe):
    """Figure 6: hourly cumulative per-class mean buffering delay (× δt)."""

    name = "buffering_delay"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        self.buffering_delay_slots_sum: dict[int, int] = {
            c: 0 for c in self.ladder.classes
        }
        self.buffering_delay_series: dict[int, list[SeriesPoint]] = {
            c: [] for c in self.ladder.classes
        }

    def on_admission(
        self,
        peer_class: int,
        rejections_before: int,
        num_suppliers: int,
        buffering_delay_slots: int,
        waiting_seconds: float,
    ) -> None:
        self.buffering_delay_slots_sum[peer_class] += buffering_delay_slots

    def sample_rates(self, now_seconds: float) -> None:
        hour = now_seconds / HOUR
        admitted = self.pipeline.admitted
        for peer_class, series in self.buffering_delay_series.items():
            count = admitted[peer_class]
            if count > 0:
                mean = self.buffering_delay_slots_sum[peer_class] / count
                series.append(SeriesPoint(hour, mean))

    def mean_buffering_delay_slots(self) -> dict[int, float]:
        """Final per-class mean buffering delay (Figure 6 endpoint)."""
        admitted = self.pipeline.admitted
        return {
            c: (
                self.buffering_delay_slots_sum[c] / admitted[c]
                if admitted[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def export(self) -> dict:
        return {
            "buffering_delay_series": {
                c: [(p.hour, p.value) for p in series]
                for c, series in self.buffering_delay_series.items()
            }
        }


class FavoredClassProbe(Probe):
    """Figure 7: 3-hourly mean lowest favored class, per supplier class.

    The snapshot behind this probe walks the entire supplier population —
    by far the most expensive observation of a run — so subscribing to it
    only when Figure 7 is actually wanted is the single largest saving of
    the probe refactor.
    """

    name = "favored"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        self.favored_series: dict[int, list[SeriesPoint]] = {
            c: [] for c in self.ladder.classes
        }

    def sample_favored(
        self, now_seconds: float, lowest_favored_by_class: dict[int, list[int]]
    ) -> None:
        hour = now_seconds / HOUR
        for peer_class, values in lowest_favored_by_class.items():
            if values:
                self.favored_series[peer_class].append(
                    SeriesPoint(hour, sum(values) / len(values))
                )

    def export(self) -> dict:
        return {
            "favored_series": {
                c: [(p.hour, p.value) for p in series]
                for c, series in self.favored_series.items()
            }
        }


class Table1Probe(Probe):
    """Table 1: mean rejections suffered before admission (and the
    suppliers-per-session mean that shares its accumulator)."""

    name = "table1"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        self.rejections_before_admission_sum: dict[int, int] = {
            c: 0 for c in self.ladder.classes
        }
        self.suppliers_per_session_sum: dict[int, int] = {
            c: 0 for c in self.ladder.classes
        }

    def on_admission(
        self,
        peer_class: int,
        rejections_before: int,
        num_suppliers: int,
        buffering_delay_slots: int,
        waiting_seconds: float,
    ) -> None:
        self.rejections_before_admission_sum[peer_class] += rejections_before
        self.suppliers_per_session_sum[peer_class] += num_suppliers

    def mean_rejections_before_admission(self) -> dict[int, float]:
        """Table 1: per-class mean rejections suffered before admission."""
        admitted = self.pipeline.admitted
        return {
            c: (
                self.rejections_before_admission_sum[c] / admitted[c]
                if admitted[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }


class WaitingTimeProbe(Probe):
    """Waiting time: per-class mean seconds from first request to admission."""

    name = "waiting"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        self.waiting_seconds_sum: dict[int, float] = {
            c: 0.0 for c in self.ladder.classes
        }

    def on_admission(
        self,
        peer_class: int,
        rejections_before: int,
        num_suppliers: int,
        buffering_delay_slots: int,
        waiting_seconds: float,
    ) -> None:
        self.waiting_seconds_sum[peer_class] += waiting_seconds

    def mean_waiting_seconds(self) -> dict[int, float]:
        """Per-class mean waiting time from first request to admission."""
        admitted = self.pipeline.admitted
        return {
            c: (
                self.waiting_seconds_sum[c] / admitted[c]
                if admitted[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }


class ContinuityProbe(Probe):
    """Playback continuity under session-lifecycle dynamics.

    Everything a mid-stream supplier departure costs the requester, per
    requester class:

    * ``interruptions`` — stalls begun (one per mid-stream departure that
      hit one of the requester's suppliers);
    * ``recovered_sessions`` / ``recovery_retries`` / ``sessions_lost`` —
      how the recovery path fared;
    * ``stall_seconds_sum`` — total playback stall time of *recovered*
      stalls (recovery latency plus the re-buffering delay of the resumed
      session); lost sessions count in ``sessions_lost`` instead;
    * ``recovery_latency_sum`` — seconds from interruption to
      re-admission, over recovered stalls;
    * the **playback continuity index** — per completed session,
      ``playback / (playback + stalls)`` where ``playback`` is the show
      length; 1.0 is stall-free, accumulated here as a per-class mean.

    All counters stay zero when no lifecycle model is active (the probe
    is then pure overhead-free bookkeeping), so it is *not* part of
    :data:`DEFAULT_PROBES`; lifecycle-enabled runs subscribe it
    automatically, and any run can opt in via ``probes=``.
    """

    name = "continuity"

    def bind(self, pipeline: "MetricsPipeline") -> None:
        super().bind(pipeline)
        classes = list(self.ladder.classes)
        self.interruptions: dict[int, int] = {c: 0 for c in classes}
        self.recovered_sessions: dict[int, int] = {c: 0 for c in classes}
        self.recovery_retries: dict[int, int] = {c: 0 for c in classes}
        self.sessions_lost: dict[int, int] = {c: 0 for c in classes}
        self.stall_seconds_sum: dict[int, float] = {c: 0.0 for c in classes}
        self.recovery_latency_sum: dict[int, float] = {c: 0.0 for c in classes}
        self.completed_sessions: dict[int, int] = {c: 0 for c in classes}
        self.interrupted_completions: dict[int, int] = {c: 0 for c in classes}
        self.continuity_sum: dict[int, float] = {c: 0.0 for c in classes}
        self.continuity_series: list[SeriesPoint] = []

    # ---- lifecycle hooks ---------------------------------------------
    def on_interruption(self, peer_class: int) -> None:
        self.interruptions[peer_class] += 1

    def on_recovery(
        self, peer_class: int, latency_seconds: float, stall_seconds: float
    ) -> None:
        self.recovered_sessions[peer_class] += 1
        self.recovery_latency_sum[peer_class] += latency_seconds
        self.stall_seconds_sum[peer_class] += stall_seconds

    def on_recovery_retry(self, peer_class: int) -> None:
        self.recovery_retries[peer_class] += 1

    def on_session_lost(self, peer_class: int) -> None:
        self.sessions_lost[peer_class] += 1

    def on_session_complete(
        self,
        peer_class: int,
        stall_seconds: float,
        interruptions: int,
        continuity: float,
    ) -> None:
        self.completed_sessions[peer_class] += 1
        self.continuity_sum[peer_class] += continuity
        if interruptions:
            self.interrupted_completions[peer_class] += 1

    # ---- sampling ----------------------------------------------------
    def sample_rates(self, now_seconds: float) -> None:
        completed = sum(self.completed_sessions.values())
        if completed > 0:
            mean = sum(self.continuity_sum.values()) / completed
            self.continuity_series.append(SeriesPoint(now_seconds / HOUR, mean))

    # ---- derived -----------------------------------------------------
    def mean_recovery_latency_seconds(self) -> dict[int, float]:
        """Per-class mean seconds from interruption to re-admission."""
        return {
            c: (
                self.recovery_latency_sum[c] / self.recovered_sessions[c]
                if self.recovered_sessions[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def playback_continuity_index(self) -> dict[int, float]:
        """Per-class mean continuity index over completed sessions."""
        return {
            c: (
                self.continuity_sum[c] / self.completed_sessions[c]
                if self.completed_sessions[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def export(self) -> dict:
        return {
            "interruptions": dict(self.interruptions),
            "recovered_sessions": dict(self.recovered_sessions),
            "recovery_retries": dict(self.recovery_retries),
            "sessions_lost": dict(self.sessions_lost),
            "interrupted_completions": dict(self.interrupted_completions),
            "stall_seconds_sum": dict(self.stall_seconds_sum),
            "mean_recovery_latency_seconds": self.mean_recovery_latency_seconds(),
            "playback_continuity_index": self.playback_continuity_index(),
            "continuity_series": [
                (p.hour, p.value) for p in self.continuity_series
            ],
        }


#: probe registry, by config name
_PROBES: dict[str, type[Probe]] = {
    probe.name: probe
    for probe in (
        CapacityProbe,
        AdmissionRateProbe,
        BufferingDelayProbe,
        FavoredClassProbe,
        OverallAdmissionProbe,
        Table1Probe,
        WaitingTimeProbe,
        ContinuityProbe,
    )
}

#: valid values inside ``SimulationConfig.probes``
PROBE_NAMES: tuple[str, ...] = tuple(sorted(_PROBES))

#: the full paper evaluation — what ``probes=None`` subscribes.  The
#: lifecycle-extension ``continuity`` probe is deliberately absent: its
#: artifacts exist only under a lifecycle model, and keeping it out keeps
#: default exports schema-identical to the historical collector.  Runs
#: with ``lifecycle != "none"`` and ``probes=None`` subscribe it
#: automatically (see :class:`~repro.simulation.system.StreamingSystem`).
DEFAULT_PROBES: tuple[str, ...] = (
    "capacity",
    "admission_rate",
    "buffering_delay",
    "favored",
    "overall_admission",
    "table1",
    "waiting",
)

#: series keys every export carries (empty when the probe is unsubscribed),
#: so records and downstream schemas stay total over probe subsets
_PLAIN_SERIES_KEYS = (
    "capacity_series",
    "capacity_fractional_series",
    "supplier_count_series",
    "overall_admission_rate_series",
)
_CLASS_SERIES_KEYS = (
    "admission_rate_series",
    "buffering_delay_series",
    "favored_series",
)


def validate_probes(probes: tuple[str, ...]) -> None:
    """Raise :class:`ConfigurationError` for unknown or duplicate names."""
    seen: set[str] = set()
    for name in probes:
        if name not in _PROBES:
            raise ConfigurationError(
                f"unknown metrics probe {name!r}; known: {', '.join(PROBE_NAMES)}"
            )
        if name in seen:
            raise ConfigurationError(f"duplicate metrics probe {name!r}")
        seen.add(name)


class MetricsPipeline:
    """Event counters plus a dispatch table over the subscribed probes.

    ``probes=None`` subscribes the full paper evaluation
    (:data:`DEFAULT_PROBES`); a tuple of names subscribes exactly those.
    The pipeline exposes the same attribute/method surface as the
    historical monolithic collector — series and accumulators of
    unsubscribed probes read as empty (series) or NaN (means).
    """

    def __init__(
        self, ladder: ClassLadder, probes: tuple[str, ...] | None = None
    ) -> None:
        self.ladder = ladder
        classes = list(ladder.classes)

        # ---- event counters (cumulative, always on) --------------------
        self.first_requests = {c: 0 for c in classes}
        self.requests = {c: 0 for c in classes}
        self.rejections = {c: 0 for c in classes}
        self.admitted = {c: 0 for c in classes}
        self.reminders_left = {c: 0 for c in classes}
        self.supplier_departures = {c: 0 for c in classes}
        self.supplier_rejoins = {c: 0 for c in classes}

        # ---- subscribed probes ----------------------------------------
        names = DEFAULT_PROBES if probes is None else tuple(probes)
        validate_probes(names)
        self.probes: dict[str, Probe] = {}
        for name in names:
            probe = _PROBES[name]()
            probe.bind(self)
            self.probes[name] = probe

        # Dispatch only to probes that override a hook, so unsubscribed
        # (or uninterested) probes cost nothing per event/sample.
        def overriding(hook: str) -> list:
            return [
                getattr(probe, hook)
                for probe in self.probes.values()
                if getattr(type(probe), hook) is not getattr(Probe, hook)
            ]

        self._admission_hooks = overriding("on_admission")
        self._interruption_hooks = overriding("on_interruption")
        self._recovery_hooks = overriding("on_recovery")
        self._recovery_retry_hooks = overriding("on_recovery_retry")
        self._session_lost_hooks = overriding("on_session_lost")
        self._session_complete_hooks = overriding("on_session_complete")
        self._capacity_hooks = overriding("sample_capacity")
        self._rate_hooks = overriding("sample_rates")
        self._favored_hooks = overriding("sample_favored")

    # ------------------------------------------------------------------
    # sampler subscriptions (drive which clocks Samplers schedules)
    # ------------------------------------------------------------------
    @property
    def wants_capacity_samples(self) -> bool:
        """Whether any subscribed probe consumes the capacity clock."""
        return bool(self._capacity_hooks)

    @property
    def wants_rate_samples(self) -> bool:
        """Whether any subscribed probe consumes the rate clock."""
        return bool(self._rate_hooks)

    @property
    def wants_favored_samples(self) -> bool:
        """Whether any subscribed probe consumes the favored snapshot."""
        return bool(self._favored_hooks)

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def on_first_request(self, peer_class: int) -> None:
        """A peer made its first streaming request."""
        self.first_requests[peer_class] += 1
        self.requests[peer_class] += 1

    def on_retry(self, peer_class: int) -> None:
        """A previously rejected peer retried."""
        self.requests[peer_class] += 1

    def on_rejection(self, peer_class: int) -> None:
        """A request (first or retry) was rejected."""
        self.rejections[peer_class] += 1

    def on_reminder(self, peer_class: int) -> None:
        """A rejected class-``peer_class`` peer left one reminder."""
        self.reminders_left[peer_class] += 1

    def on_supplier_departure(self, peer_class: int) -> None:
        """A supplier departed the system (supplier-churn extension)."""
        self.supplier_departures[peer_class] += 1

    def on_supplier_rejoin(self, peer_class: int) -> None:
        """A departed supplier rejoined (supplier-churn extension)."""
        self.supplier_rejoins[peer_class] += 1

    def on_admission(
        self,
        peer_class: int,
        rejections_before: int,
        num_suppliers: int,
        buffering_delay_slots: int,
        waiting_seconds: float,
    ) -> None:
        """A peer was admitted; fan out to the subscribed accumulators."""
        self.admitted[peer_class] += 1
        for hook in self._admission_hooks:
            hook(
                peer_class,
                rejections_before,
                num_suppliers,
                buffering_delay_slots,
                waiting_seconds,
            )

    # ------------------------------------------------------------------
    # lifecycle hooks (fire only under a session-lifecycle model)
    # ------------------------------------------------------------------
    def on_interruption(self, peer_class: int) -> None:
        """A requester's session was interrupted by a supplier departure."""
        for hook in self._interruption_hooks:
            hook(peer_class)

    def on_recovery(
        self, peer_class: int, latency_seconds: float, stall_seconds: float
    ) -> None:
        """An interrupted session was re-admitted and resumed."""
        for hook in self._recovery_hooks:
            hook(peer_class, latency_seconds, stall_seconds)

    def on_recovery_retry(self, peer_class: int) -> None:
        """A recovery probe failed; the requester backs off and retries."""
        for hook in self._recovery_retry_hooks:
            hook(peer_class)

    def on_session_lost(self, peer_class: int) -> None:
        """An interrupted session was permanently lost."""
        for hook in self._session_lost_hooks:
            hook(peer_class)

    def on_session_complete(
        self,
        peer_class: int,
        stall_seconds: float,
        interruptions: int,
        continuity: float,
    ) -> None:
        """A lifecycle-tracked session delivered its final byte."""
        for hook in self._session_complete_hooks:
            hook(peer_class, stall_seconds, interruptions, continuity)

    # ------------------------------------------------------------------
    # periodic samplers (driven by the streaming system)
    # ------------------------------------------------------------------
    def sample_capacity(self, now_seconds: float, ledger: "CapacityLedger") -> None:
        """Record the Figure-4 capacity sample at ``now_seconds``."""
        for hook in self._capacity_hooks:
            hook(now_seconds, ledger)

    def sample_rates(self, now_seconds: float) -> None:
        """Record the Figure-5/6/9 cumulative samples at ``now_seconds``."""
        for hook in self._rate_hooks:
            hook(now_seconds)

    def sample_favored(
        self, now_seconds: float, lowest_favored_by_class: dict[int, list[int]]
    ) -> None:
        """Record the Figure-7 snapshot at ``now_seconds``."""
        for hook in self._favored_hooks:
            hook(now_seconds, lowest_favored_by_class)

    # ------------------------------------------------------------------
    # probe state, exposed with the historical collector attribute names
    # ------------------------------------------------------------------
    def _probe_attr(self, name: str, attribute: str, empty):
        probe = self.probes.get(name)
        if probe is None:
            return empty() if callable(empty) else empty
        return getattr(probe, attribute)

    def _empty_class_map(self) -> dict[int, list]:
        return {c: [] for c in self.ladder.classes}

    @property
    def capacity_series(self) -> list[SeriesPoint]:
        """Figure-4 capacity samples."""
        return self._probe_attr("capacity", "capacity_series", list)

    @property
    def capacity_fractional_series(self) -> list[SeriesPoint]:
        """Fractional (bandwidth-unit) capacity samples."""
        return self._probe_attr("capacity", "capacity_fractional_series", list)

    @property
    def supplier_count_series(self) -> list[SeriesPoint]:
        """Supplier head-count samples."""
        return self._probe_attr("capacity", "supplier_count_series", list)

    @property
    def admission_rate_series(self) -> dict[int, list[SeriesPoint]]:
        """Figure-5 per-class cumulative admission rate samples."""
        return self._probe_attr(
            "admission_rate", "admission_rate_series", self._empty_class_map
        )

    @property
    def overall_admission_rate_series(self) -> list[SeriesPoint]:
        """Figure-9 overall cumulative admission rate samples."""
        return self._probe_attr(
            "overall_admission", "overall_admission_rate_series", list
        )

    @property
    def buffering_delay_series(self) -> dict[int, list[SeriesPoint]]:
        """Figure-6 per-class cumulative buffering delay samples."""
        return self._probe_attr(
            "buffering_delay", "buffering_delay_series", self._empty_class_map
        )

    @property
    def favored_series(self) -> dict[int, list[SeriesPoint]]:
        """Figure-7 lowest-favored-class snapshots."""
        return self._probe_attr("favored", "favored_series", self._empty_class_map)

    @property
    def rejections_before_admission_sum(self) -> dict[int, int]:
        """Table-1 accumulator (zeros when the probe is unsubscribed)."""
        return self._probe_attr(
            "table1",
            "rejections_before_admission_sum",
            lambda: {c: 0 for c in self.ladder.classes},
        )

    @property
    def suppliers_per_session_sum(self) -> dict[int, int]:
        """Suppliers-per-session accumulator (shared with Table 1)."""
        return self._probe_attr(
            "table1",
            "suppliers_per_session_sum",
            lambda: {c: 0 for c in self.ladder.classes},
        )

    @property
    def buffering_delay_slots_sum(self) -> dict[int, int]:
        """Figure-6 accumulator (zeros when the probe is unsubscribed)."""
        return self._probe_attr(
            "buffering_delay",
            "buffering_delay_slots_sum",
            lambda: {c: 0 for c in self.ladder.classes},
        )

    @property
    def waiting_seconds_sum(self) -> dict[int, float]:
        """Waiting-time accumulator (zeros when the probe is unsubscribed)."""
        return self._probe_attr(
            "waiting",
            "waiting_seconds_sum",
            lambda: {c: 0.0 for c in self.ladder.classes},
        )

    @property
    def interruptions(self) -> dict[int, int]:
        """Stalls begun by mid-stream departures (continuity probe)."""
        return self._probe_attr(
            "continuity",
            "interruptions",
            lambda: {c: 0 for c in self.ladder.classes},
        )

    @property
    def recovered_sessions(self) -> dict[int, int]:
        """Interrupted sessions re-admitted and resumed (continuity probe)."""
        return self._probe_attr(
            "continuity",
            "recovered_sessions",
            lambda: {c: 0 for c in self.ladder.classes},
        )

    @property
    def sessions_lost(self) -> dict[int, int]:
        """Interrupted sessions lost for good (continuity probe)."""
        return self._probe_attr(
            "continuity",
            "sessions_lost",
            lambda: {c: 0 for c in self.ladder.classes},
        )

    @property
    def stall_seconds_sum(self) -> dict[int, float]:
        """Total stall time of recovered stalls (continuity probe)."""
        return self._probe_attr(
            "continuity",
            "stall_seconds_sum",
            lambda: {c: 0.0 for c in self.ladder.classes},
        )

    @property
    def continuity_series(self) -> list[SeriesPoint]:
        """Hourly mean playback continuity index (continuity probe)."""
        return self._probe_attr("continuity", "continuity_series", list)

    # ------------------------------------------------------------------
    # derived results
    # ------------------------------------------------------------------
    def _nan_map(self) -> dict[int, float]:
        return {c: float("nan") for c in self.ladder.classes}

    def mean_rejections_before_admission(self) -> dict[int, float]:
        """Table 1: per-class mean rejections suffered before admission."""
        probe = self.probes.get("table1")
        return probe.mean_rejections_before_admission() if probe else self._nan_map()

    def mean_buffering_delay_slots(self) -> dict[int, float]:
        """Final per-class mean buffering delay (Figure 6 endpoint)."""
        probe = self.probes.get("buffering_delay")
        return probe.mean_buffering_delay_slots() if probe else self._nan_map()

    def mean_waiting_seconds(self) -> dict[int, float]:
        """Per-class mean waiting time from first request to admission."""
        probe = self.probes.get("waiting")
        return probe.mean_waiting_seconds() if probe else self._nan_map()

    def mean_recovery_latency_seconds(self) -> dict[int, float]:
        """Per-class mean interruption-to-re-admission latency."""
        probe = self.probes.get("continuity")
        return probe.mean_recovery_latency_seconds() if probe else self._nan_map()

    def playback_continuity_index(self) -> dict[int, float]:
        """Per-class mean playback continuity index (1.0 = stall-free)."""
        probe = self.probes.get("continuity")
        return probe.playback_continuity_index() if probe else self._nan_map()

    def admission_rate_percent(self) -> dict[int, float]:
        """Final per-class cumulative admission rate (Figure 5 endpoint).

        Derived from the always-on counters, so it is available under any
        probe subscription.
        """
        return {
            c: (
                100.0 * self.admitted[c] / self.first_requests[c]
                if self.first_requests[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def final_capacity(self) -> float:
        """Last Figure-4 sample (sessions); 0.0 without the capacity probe."""
        probe = self.probes.get("capacity")
        return probe.final_capacity() if probe else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly dump of every counter and series.

        The paper-evaluation key set is identical under every probe
        subscription — records stay schema-total over those artifacts,
        with unsubscribed probes contributing empty series and NaN
        means.  The one exception is the opt-in lifecycle ``continuity``
        probe: its keys (``interruptions``, ``continuity_series``, ...)
        appear only when it is subscribed, so lifecycle-free exports
        remain byte-compatible with the historical collector's.
        """
        payload: dict = {
            "first_requests": dict(self.first_requests),
            "requests": dict(self.requests),
            "rejections": dict(self.rejections),
            "admitted": dict(self.admitted),
            "reminders_left": dict(self.reminders_left),
            "supplier_departures": dict(self.supplier_departures),
            "supplier_rejoins": dict(self.supplier_rejoins),
            "mean_rejections_before_admission": self.mean_rejections_before_admission(),
            "mean_buffering_delay_slots": self.mean_buffering_delay_slots(),
            "mean_waiting_seconds": self.mean_waiting_seconds(),
            "admission_rate_percent": self.admission_rate_percent(),
        }
        for key in _PLAIN_SERIES_KEYS:
            payload[key] = []
        for key in _CLASS_SERIES_KEYS:
            payload[key] = {c: [] for c in self.ladder.classes}
        for probe in self.probes.values():
            payload.update(probe.export())
        return payload
