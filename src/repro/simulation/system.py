"""The simulated peer-to-peer streaming system (Sections 2, 4 and 5).

:class:`StreamingSystem` wires every substrate together and implements the
protocol's *interactions* — the pieces that are neither pure supplier state
(:mod:`repro.core.admission`) nor pure requester math
(:mod:`repro.core.requesting`):

* population construction (seeds + requesters, arrival times per pattern);
* the probe loop a requesting peer runs over its ``M`` candidates, high
  class to low class, with the probabilistic grant test at idle suppliers;
* admission → OTS_p2p session planning → busy marking → session-end events;
* rejection → reminder placement at busy favoring candidates → exponential
  backoff and retry;
* the ``T_out`` idle-elevation timers (generation-tagged so stale timer
  events are dropped in O(1));
* the periodic metric samplers.

The system is deterministic for a fixed config: RNG streams are named and
seeded, candidate ordering is stable, and the event queue breaks ties FIFO.
"""

from __future__ import annotations

from repro.core.capacity import CapacityLedger
from repro.core.model import SupplierOffer
from repro.core.requesting import (
    CandidateReport,
    CandidateStatus,
    backoff_delay,
    choose_reminder_set,
)
from repro.errors import SimulationError
from repro.network.lookup import ChordLookup, DirectoryLookup
from repro.network.transport import Transport
from repro.protocols.base import make_policy
from repro.simulation.arrivals import generate_arrival_times, make_pattern
from repro.simulation.churn import BernoulliChurn, NoChurn
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.entities import SimPeer
from repro.simulation.metrics import MetricsCollector
from repro.simulation.randoms import RandomStreams
from repro.simulation.trace import TraceRecorder
from repro.streaming.session import plan_session

__all__ = ["StreamingSystem"]


class StreamingSystem:
    """One simulated run of the paper's peer-to-peer streaming system."""

    def __init__(
        self, config: SimulationConfig, trace: TraceRecorder | None = None
    ) -> None:
        self.config = config
        self.ladder = config.ladder
        self.media = config.media
        self.policy = make_policy(config.protocol)
        self.sim = Simulator()
        self.streams = RandomStreams(config.master_seed)
        self.metrics = MetricsCollector(self.ladder)
        self.ledger = CapacityLedger(self.ladder)
        self.trace = trace

        self.transport = Transport() if config.track_messages else None
        if config.down_probability > 0.0:
            self.churn = BernoulliChurn(config.down_probability)
        else:
            self.churn = NoChurn()

        self.peers: list[SimPeer] = []
        self.suppliers_by_class: dict[int, list[SimPeer]] = {
            c: [] for c in self.ladder.classes
        }
        self._build_population()
        self._build_lookup()
        for peer in self.peers:
            if peer.is_seed:
                self._register_supplier(peer)
        self._schedule_arrivals()
        self._schedule_samplers()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_population(self) -> None:
        """Create seed suppliers then requesting peers, ids 0..n-1.

        Requester class labels are shuffled so every arrival pattern sees
        the same class mix at every point in time (the paper's populations
        are not class-ordered in time).
        """
        for peer_class in sorted(self.config.seed_suppliers):
            for _ in range(self.config.seed_suppliers[peer_class]):
                self.peers.append(SimPeer(len(self.peers), peer_class, is_seed=True))

        labels: list[int] = []
        for peer_class in sorted(self.config.requesting_peers):
            labels.extend([peer_class] * self.config.requesting_peers[peer_class])
        self.streams.population.shuffle(labels)
        self._requesters = []
        for peer_class in labels:
            peer = SimPeer(len(self.peers), peer_class, is_seed=False)
            self.peers.append(peer)
            self._requesters.append(peer)

    def _build_lookup(self) -> None:
        if self.config.lookup == "chord":
            seed_ids = [peer.peer_id for peer in self.peers if peer.is_seed]
            self.lookup = ChordLookup(seed_ids, transport=self.transport)
        else:
            self.lookup = DirectoryLookup(transport=self.transport)

    def _schedule_arrivals(self) -> None:
        pattern = make_pattern(
            self.config.arrival_pattern, self.config.arrival_window_seconds
        )
        times = generate_arrival_times(
            pattern,
            len(self._requesters),
            deterministic=self.config.deterministic_arrivals,
            rng=self.streams.arrivals,
        )
        for peer, time in zip(self._requesters, times):
            self.sim.schedule_at(time, self._on_request_event, peer)

    def _schedule_samplers(self) -> None:
        self._sample_capacity(None)
        self._sample_rates(None)
        self._sample_favored(None)

    # ------------------------------------------------------------------
    # supplier population management
    # ------------------------------------------------------------------
    def _register_supplier(self, peer: SimPeer) -> None:
        """Peer enters the supplier population (seed init or promotion)."""
        if peer.admission is None:
            peer.admission = self.policy.make_supplier_state(
                peer.peer_class, self.ladder
            )
        self.ledger.add_supplier(peer.peer_class)
        self.suppliers_by_class[peer.peer_class].append(peer)
        self.lookup.register_supplier(
            self.media.media_id, peer.peer_id, peer.peer_class
        )
        self._arm_idle_timer(peer)
        self._schedule_departure(peer)
        if self.trace:
            self.trace.record(
                "supplier_joined",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )

    # ------------------------------------------------------------------
    # supplier churn (extension; off under the paper's configuration)
    # ------------------------------------------------------------------
    def _schedule_departure(self, peer: SimPeer) -> None:
        """Draw the supplier's next departure time, if churn is enabled."""
        mean_online = self.config.supplier_mean_online_seconds
        if mean_online is None:
            return
        delay = self.streams.churn.expovariate(1.0 / mean_online)
        self.sim.schedule_in(delay, self._on_departure, peer)

    #: how long a busy supplier's departure is deferred before re-checking
    DEPARTURE_RETRY_SECONDS = 300.0

    def _on_departure(self, peer: SimPeer) -> None:
        """A supplier departs — gracefully: it first finishes any session."""
        if peer.departed:
            return
        state = peer.admission
        if state is not None and state.busy:
            self.sim.schedule_in(
                self.DEPARTURE_RETRY_SECONDS, self._on_departure, peer
            )
            return
        peer.departed = True
        peer.departures += 1
        peer.bump_idle_generation()  # kill any pending elevation timer
        self.ledger.remove_supplier(peer.peer_class)
        self.lookup.unregister_supplier(self.media.media_id, peer.peer_id)
        self.metrics.on_supplier_departure(peer.peer_class)
        if self.trace:
            self.trace.record(
                "supplier_departed",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )
        if self.config.suppliers_rejoin:
            delay = self.streams.churn.expovariate(
                1.0 / self.config.supplier_mean_offline_seconds
            )
            self.sim.schedule_in(delay, self._on_rejoin, peer)

    def _on_rejoin(self, peer: SimPeer) -> None:
        """A departed supplier comes back online with its old vector."""
        if not peer.departed:
            return
        peer.departed = False
        self.ledger.add_supplier(peer.peer_class)
        self.lookup.register_supplier(
            self.media.media_id, peer.peer_id, peer.peer_class
        )
        self.metrics.on_supplier_rejoin(peer.peer_class)
        self._arm_idle_timer(peer)
        self._schedule_departure(peer)
        if self.trace:
            self.trace.record(
                "supplier_rejoined",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )

    def _arm_idle_timer(self, peer: SimPeer) -> None:
        """Arm the ``T_out`` elevation timer for an idle supplier."""
        if not self.policy.uses_idle_elevation:
            return
        state = peer.admission
        if state is None or state.busy or peer.departed:
            return
        # A supplier already favoring every class has nothing to elevate.
        if state.lowest_favored_class() == self.ladder.num_classes:
            return
        generation = peer.idle_timer_generation
        self.sim.schedule_in(
            self.config.t_out_seconds, self._on_idle_timeout, (peer, generation)
        )

    def _on_idle_timeout(self, payload: tuple[SimPeer, int]) -> None:
        peer, generation = payload
        if generation != peer.idle_timer_generation:
            return  # timer invalidated by a session start since it was armed
        state = peer.admission
        if state is None or state.busy or peer.departed:
            return
        changed = state.on_idle_timeout()
        if self.trace and changed:
            self.trace.record(
                "idle_elevation",
                self.sim.now,
                peer=peer.peer_id,
                lowest_favored=state.lowest_favored_class(),
            )
        if changed:
            self._arm_idle_timer(peer)

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def _on_request_event(self, peer: SimPeer) -> None:
        """A requesting peer makes a (first or retry) streaming request."""
        if peer.first_request_time is None:
            peer.first_request_time = self.sim.now
            self.metrics.on_first_request(peer.peer_class)
        else:
            self.metrics.on_retry(peer.peer_class)

        outcome = self._probe_candidates(peer)
        if outcome is None:
            self._reject(peer, enlisted_units=0, contacted_busy=[])
            return
        enlisted, contacted_busy, deficit = outcome
        if deficit == 0:
            self._admit(peer, enlisted)
        else:
            self._reject(
                peer,
                enlisted_units=self.ladder.full_rate_units - deficit,
                contacted_busy=contacted_busy,
            )

    def _probe_candidates(
        self, peer: SimPeer
    ) -> tuple[list[SimPeer], list[CandidateReport], int] | None:
        """Contact up to ``M`` candidates high-class-first; returns
        ``(enlisted suppliers, busy candidate reports, remaining deficit)``,
        or None when the lookup produced no candidates at all."""
        candidates = self.lookup.candidates(
            self.media.media_id,
            self.config.probe_candidates,
            peer.peer_id,
            self.streams.lookup,
        )
        if not candidates:
            return None
        # Stable sort by class keeps the lookup's random order within a class.
        candidates.sort(key=lambda pair: pair[1])

        admission_rng = self.streams.admission
        churn_rng = self.streams.churn
        deficit = self.ladder.full_rate_units
        enlisted: list[SimPeer] = []
        contacted_busy: list[CandidateReport] = []

        for candidate_id, candidate_class in candidates:
            supplier = self.peers[candidate_id]
            if self.transport is not None:
                self.transport.round_trip("probe", peer.peer_id, candidate_id)
            if self.churn.is_down(candidate_id, self.sim.now, churn_rng):
                continue
            state = supplier.admission
            if state is None:
                raise SimulationError(
                    f"candidate {candidate_id} has no admission state"
                )
            if state.busy:
                state.on_request_while_busy(peer.peer_class)
                contacted_busy.append(
                    CandidateReport(
                        peer_id=candidate_id,
                        peer_class=candidate_class,
                        units=self.ladder.offer_units(candidate_class),
                        status=CandidateStatus.BUSY,
                        favors_requester=state.favors(peer.peer_class),
                    )
                )
                continue
            probability = state.grant_probability(peer.peer_class)
            if probability >= 1.0 or admission_rng.random() < probability:
                # Candidates arrive in descending-offer order, so a granted
                # offer always fits the remaining deficit exactly (the
                # power-of-two ladder; see core.requesting.greedy_fill).
                units = self.ladder.offer_units(candidate_class)
                enlisted.append(supplier)
                deficit -= units
                if deficit == 0:
                    break
        return enlisted, contacted_busy, deficit

    def _admit(self, peer: SimPeer, enlisted: list[SimPeer]) -> None:
        """Start the streaming session for an admitted requesting peer."""
        offers = [
            SupplierOffer(
                peer_id=s.peer_id,
                peer_class=s.peer_class,
                units=self.ladder.offer_units(s.peer_class),
            )
            for s in enlisted
        ]
        session = plan_session(
            requester_id=peer.peer_id,
            requester_class=peer.peer_class,
            offers=offers,
            media=self.media,
            ladder=self.ladder,
        )
        for supplier in enlisted:
            supplier.admission.on_session_start()
            supplier.bump_idle_generation()
            supplier.sessions_served += 1
            if self.transport is not None:
                self.transport.send("session_start", peer.peer_id, supplier.peer_id)

        peer.admitted_time = self.sim.now
        peer.buffering_delay_slots = session.buffering_delay_slots
        peer.num_suppliers_served_by = session.num_suppliers
        self.metrics.on_admission(
            peer.peer_class,
            rejections_before=peer.rejections,
            num_suppliers=session.num_suppliers,
            buffering_delay_slots=session.buffering_delay_slots,
            waiting_seconds=peer.waiting_time or 0.0,
        )
        if self.trace:
            self.trace.record(
                "admission",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                suppliers=[s.peer_id for s in enlisted],
                delay_slots=session.buffering_delay_slots,
            )
        self.sim.schedule_in(
            session.transfer_seconds, self._on_session_end, (peer, enlisted)
        )

    def _reject(
        self,
        peer: SimPeer,
        enlisted_units: int,
        contacted_busy: list[CandidateReport],
    ) -> None:
        """Handle a rejection: reminders, backoff, retry scheduling."""
        peer.rejections += 1
        self.metrics.on_rejection(peer.peer_class)

        if self.policy.uses_reminders and contacted_busy:
            shortfall = self.ladder.full_rate_units - enlisted_units
            for report in choose_reminder_set(contacted_busy, shortfall):
                supplier = self.peers[report.peer_id]
                supplier.admission.on_reminder(peer.peer_class)
                self.metrics.on_reminder(peer.peer_class)
                if self.transport is not None:
                    self.transport.send("reminder", peer.peer_id, report.peer_id)

        delay = backoff_delay(
            peer.rejections, self.config.t_bkf_seconds, self.config.e_bkf
        )
        if self.trace:
            self.trace.record(
                "rejection",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                rejections=peer.rejections,
                backoff_seconds=delay,
            )
        retry_at = self.sim.now + delay
        if retry_at <= self.config.horizon_seconds:
            self.sim.schedule_at(retry_at, self._on_request_event, peer)

    def _on_session_end(self, payload: tuple[SimPeer, list[SimPeer]]) -> None:
        """A streaming session finished: free suppliers, promote requester."""
        peer, enlisted = payload
        for supplier in enlisted:
            supplier.admission.on_session_end()
            supplier.bump_idle_generation()
            self._arm_idle_timer(supplier)
            if self.transport is not None:
                self.transport.send("session_end", peer.peer_id, supplier.peer_id)
        peer.promote(self.policy.make_supplier_state(peer.peer_class, self.ladder))
        self._register_supplier(peer)

    # ------------------------------------------------------------------
    # samplers
    # ------------------------------------------------------------------
    def _sample_capacity(self, _arg: object) -> None:
        self.metrics.sample_capacity(self.sim.now, self.ledger)
        next_time = self.sim.now + self.config.capacity_sample_seconds
        if next_time <= self.config.horizon_seconds:
            self.sim.schedule_at(next_time, self._sample_capacity, None)

    def _sample_rates(self, _arg: object) -> None:
        self.metrics.sample_rates(self.sim.now)
        next_time = self.sim.now + self.config.rate_sample_seconds
        if next_time <= self.config.horizon_seconds:
            self.sim.schedule_at(next_time, self._sample_rates, None)

    def _sample_favored(self, _arg: object) -> None:
        snapshot = {
            peer_class: [
                peer.admission.lowest_favored_class()
                for peer in suppliers
                if peer.admission is not None and not peer.departed
            ]
            for peer_class, suppliers in self.suppliers_by_class.items()
        }
        self.metrics.sample_favored(self.sim.now, snapshot)
        next_time = self.sim.now + self.config.favored_snapshot_seconds
        if next_time <= self.config.horizon_seconds:
            self.sim.schedule_at(next_time, self._sample_favored, None)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> MetricsCollector:
        """Run the simulation to the configured horizon; returns metrics."""
        self.sim.run(until=self.config.horizon_seconds)
        return self.metrics

    # ------------------------------------------------------------------
    # inspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    @property
    def num_suppliers(self) -> int:
        """Current size of the supplier population."""
        return self.ledger.num_suppliers

    def peers_of_class(self, peer_class: int) -> list[SimPeer]:
        """All peers of a given class (any role)."""
        return [peer for peer in self.peers if peer.peer_class == peer_class]
