"""The simulated peer-to-peer streaming system (Sections 2, 4 and 5).

:class:`StreamingSystem` is a thin facade that builds every substrate and
wires the three protocol subsystems together:

* :class:`~repro.simulation.registry.SupplierRegistry` — the supply side:
  supplier registration, graceful churn (depart → rejoin), and the
  ``T_out`` idle-elevation timers;
* :class:`~repro.simulation.requestpath.RequestPath` — the demand side:
  arrival scheduling, the ``M``-candidate probe loop, admission → OTS_p2p
  session planning, rejection → reminders → exponential backoff, and
  post-session promotion;
* :class:`~repro.simulation.samplers.Samplers` — the periodic metric
  samplers behind Figures 4–9.

A fourth, optional subsystem —
:class:`~repro.simulation.lifecycle.LifecycleDynamics` — schedules
mid-stream supplier departures and returns when the configuration selects
a lifecycle model (``config.lifecycle != "none"``); with the default
``none`` model it is never constructed and runs are bit-identical to a
build without it.

The system is deterministic for a fixed config: RNG streams are named and
seeded, candidate ordering is stable, and the event queue breaks ties FIFO.
The wiring order below (population → lookup → seed registration →
arrivals → samplers) is part of that contract — it fixes the sequence
numbers of the initial events.
"""

from __future__ import annotations

from repro.core.capacity import CapacityLedger
from repro.network.lookup import ChordLookup, DirectoryLookup
from repro.network.transport import Transport
from repro.protocols.base import make_policy
from repro.simulation.churn import BernoulliChurn, NoChurn
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.entities import SimPeer, build_population
from repro.simulation.lifecycle import LifecycleDynamics, make_lifecycle
from repro.simulation.metrics import MetricsCollector
from repro.simulation.probes import DEFAULT_PROBES
from repro.simulation.randoms import RandomStreams
from repro.simulation.registry import SupplierRegistry
from repro.simulation.requestpath import RequestPath
from repro.simulation.samplers import Samplers
from repro.simulation.trace import TraceRecorder

__all__ = ["StreamingSystem"]


class StreamingSystem:
    """One simulated run of the paper's peer-to-peer streaming system."""

    def __init__(
        self, config: SimulationConfig, trace: TraceRecorder | None = None
    ) -> None:
        self.config = config
        self.ladder = config.ladder
        self.media = config.media
        self.policy = make_policy(config.protocol)
        self.sim = Simulator(kernel=config.kernel)
        self.streams = RandomStreams(config.master_seed)
        # Lifecycle runs with the default subscription also get the
        # continuity probe — its artifacts are what the extension measures.
        probes = config.probes
        if config.lifecycle != "none" and probes is None:
            probes = DEFAULT_PROBES + ("continuity",)
        self.metrics = MetricsCollector(self.ladder, probes=probes)
        self.ledger = CapacityLedger(self.ladder)
        self.trace = trace

        self.transport = Transport() if config.track_messages else None
        if config.down_probability > 0.0:
            self.churn = BernoulliChurn(config.down_probability)
        else:
            self.churn = NoChurn()

        self.peers, self._requesters = build_population(
            config, self.streams.population
        )
        if config.lookup == "chord":
            seed_ids = [peer.peer_id for peer in self.peers if peer.is_seed]
            self.lookup = ChordLookup(seed_ids, transport=self.transport)
        else:
            self.lookup = DirectoryLookup(transport=self.transport)

        self.registry = SupplierRegistry(
            sim=self.sim,
            config=config,
            policy=self.policy,
            streams=self.streams,
            metrics=self.metrics,
            ledger=self.ledger,
            lookup=self.lookup,
            trace=trace,
        )
        self.request_path = RequestPath(
            sim=self.sim,
            config=config,
            policy=self.policy,
            streams=self.streams,
            metrics=self.metrics,
            peers=self.peers,
            lookup=self.lookup,
            transport=self.transport,
            churn=self.churn,
            registry=self.registry,
            trace=trace,
        )
        self.samplers = Samplers(
            sim=self.sim,
            config=config,
            metrics=self.metrics,
            ledger=self.ledger,
            registry=self.registry,
        )
        # The lifecycle dynamics attach to the registry *before* the seed
        # suppliers register below, so seeds get departure events too.
        self.lifecycle: LifecycleDynamics | None = None
        if config.lifecycle != "none":
            self.lifecycle = LifecycleDynamics(
                sim=self.sim,
                config=config,
                model=make_lifecycle(config),
                metrics=self.metrics,
                ledger=self.ledger,
                lookup=self.lookup,
                registry=self.registry,
                request_path=self.request_path,
                trace=trace,
            )
            self.registry.lifecycle = self.lifecycle

        for peer in self.peers:
            if peer.is_seed:
                self.registry.register(peer)
        self.request_path.schedule_arrivals(self._requesters)
        self.samplers.start()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> MetricsCollector:
        """Run the simulation to the configured horizon; returns metrics."""
        self.sim.run(until=self.config.horizon_seconds)
        return self.metrics

    # ------------------------------------------------------------------
    # inspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    @property
    def suppliers_by_class(self) -> dict[int, list[SimPeer]]:
        """Suppliers grouped by class (owned by the registry)."""
        return self.registry.suppliers_by_class

    @property
    def num_suppliers(self) -> int:
        """Current size of the supplier population."""
        return self.ledger.num_suppliers

    def peers_of_class(self, peer_class: int) -> list[SimPeer]:
        """All peers of a given class (any role)."""
        return [peer for peer in self.peers if peer.peer_class == peer_class]
