"""Structured event traces (optional, for debugging and replay analysis).

A :class:`TraceRecorder` collects protocol-level events — admissions,
rejections, reminders, supplier joins, idle elevations — as plain dicts.
They can be kept in memory (tests assert on them), written to JSON Lines, or
re-loaded for offline analysis.  Tracing is off by default: the hot request
path only pays an ``if self.trace`` check.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceError

__all__ = ["TraceRecorder", "load_trace"]


@dataclass
class TraceRecorder:
    """Collects structured simulation events.

    Parameters
    ----------
    keep_in_memory:
        Retain events in :attr:`events` (default).  Disable for very long
        runs that only stream to disk.
    path:
        If set, events are appended to this JSON-Lines file as they happen.
    """

    keep_in_memory: bool = True
    path: Path | None = None
    events: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._file = None
        if self.path is not None:
            try:
                self._file = open(self.path, "w", encoding="utf-8")
            except OSError as exc:
                raise TraceError(f"cannot open trace file {self.path}: {exc}") from exc

    def record(self, kind: str, time_seconds: float, **fields: object) -> None:
        """Record one event of ``kind`` at simulated ``time_seconds``."""
        event = {"kind": kind, "t": time_seconds, **fields}
        if self.keep_in_memory:
            self.events.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event) + "\n")

    def close(self) -> None:
        """Flush and close the backing file, if any."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[dict]:
        """All in-memory events of one kind, in time order."""
        return [event for event in self.events if event["kind"] == kind]

    def count(self, kind: str) -> int:
        """Number of in-memory events of one kind."""
        return sum(1 for event in self.events if event["kind"] == kind)


def load_trace(path: Path | str) -> Iterator[dict]:
    """Stream events back from a JSON-Lines trace file."""
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(
                        f"{path}:{line_number}: invalid trace line: {exc}"
                    ) from exc
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
