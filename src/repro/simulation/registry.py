"""Supplier-population management (the supply side of the system).

:class:`SupplierRegistry` owns everything that happens to a peer *after* it
becomes a supplying peer: entering the population (seed initialisation or
post-session promotion), the optional graceful churn cycle
(depart → rejoin → depart), and the ``T_out`` idle-elevation timers.

It is one of the three collaborators behind the
:class:`~repro.simulation.system.StreamingSystem` facade (the others being
:class:`~repro.simulation.requestpath.RequestPath` and
:class:`~repro.simulation.samplers.Samplers`).  The registry is the single
writer of the capacity ledger's supplier counts and of the lookup
substrate's registrations, so the supplier population can never drift from
what requesters can discover.
"""

from __future__ import annotations

from repro.core.capacity import CapacityLedger
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.entities import SimPeer
from repro.simulation.metrics import MetricsCollector
from repro.simulation.randoms import RandomStreams
from repro.simulation.trace import TraceRecorder

__all__ = ["SupplierRegistry"]


class SupplierRegistry:
    """Registers suppliers and runs their churn and idle-elevation timers."""

    #: how long a busy supplier's departure is deferred before re-checking
    DEPARTURE_RETRY_SECONDS = 300.0

    def __init__(
        self,
        *,
        sim: Simulator,
        config: SimulationConfig,
        policy,
        streams: RandomStreams,
        metrics: MetricsCollector,
        ledger: CapacityLedger,
        lookup,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.ladder = config.ladder
        self.media = config.media
        self.policy = policy
        self.streams = streams
        self.metrics = metrics
        self.ledger = ledger
        self.lookup = lookup
        self.trace = trace
        self.suppliers_by_class: dict[int, list[SimPeer]] = {
            c: [] for c in self.ladder.classes
        }
        #: session-lifecycle dynamics notified on every population entry;
        #: attached by the system only when a lifecycle model is active
        #: (see :mod:`repro.simulation.lifecycle`)
        self.lifecycle = None
        # arm_idle_timer runs after every session end and every effective
        # elevation — resolve its per-call constants once
        self._uses_idle_elevation = policy.uses_idle_elevation
        self._t_out_seconds = config.t_out_seconds
        self._num_classes = self.ladder.num_classes

    # ------------------------------------------------------------------
    # population entry
    # ------------------------------------------------------------------
    def register(self, peer: SimPeer) -> None:
        """Peer enters the supplier population (seed init or promotion)."""
        if peer.admission is None:
            peer.admission = self.policy.make_supplier_state(
                peer.peer_class, self.ladder
            )
        self.ledger.add_supplier(peer.peer_class)
        self.suppliers_by_class[peer.peer_class].append(peer)
        self.lookup.register_supplier(
            self.media.media_id, peer.peer_id, peer.peer_class
        )
        self.arm_idle_timer(peer)
        self._schedule_departure(peer)
        if self.lifecycle is not None:
            self.lifecycle.on_supplier_active(peer)
        if self.trace:
            self.trace.record(
                "supplier_joined",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )

    # ------------------------------------------------------------------
    # supplier churn (extension; off under the paper's configuration)
    # ------------------------------------------------------------------
    def _schedule_departure(self, peer: SimPeer) -> None:
        """Draw the supplier's next departure time, if churn is enabled."""
        mean_online = self.config.supplier_mean_online_seconds
        if mean_online is None:
            return
        delay = self.streams.churn.expovariate(1.0 / mean_online)
        self.sim.schedule_in(delay, self._on_departure, peer)

    def _on_departure(self, peer: SimPeer) -> None:
        """A supplier departs — gracefully: it first finishes any session."""
        if peer.departed:
            return
        state = peer.admission
        if state is not None and state.busy:
            self.sim.schedule_in(
                self.DEPARTURE_RETRY_SECONDS, self._on_departure, peer
            )
            return
        peer.departed = True
        peer.departures += 1
        peer.bump_idle_generation()  # kill any pending elevation timer
        self.ledger.remove_supplier(peer.peer_class)
        self.lookup.unregister_supplier(self.media.media_id, peer.peer_id)
        self.metrics.on_supplier_departure(peer.peer_class)
        if self.trace:
            self.trace.record(
                "supplier_departed",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )
        if self.config.suppliers_rejoin:
            delay = self.streams.churn.expovariate(
                1.0 / self.config.supplier_mean_offline_seconds
            )
            self.sim.schedule_in(delay, self._on_rejoin, peer)

    def _on_rejoin(self, peer: SimPeer) -> None:
        """A departed supplier comes back online with its old vector."""
        if not peer.departed:
            return
        peer.departed = False
        self.ledger.add_supplier(peer.peer_class)
        self.lookup.register_supplier(
            self.media.media_id, peer.peer_id, peer.peer_class
        )
        self.metrics.on_supplier_rejoin(peer.peer_class)
        self.arm_idle_timer(peer)
        self._schedule_departure(peer)
        if self.trace:
            self.trace.record(
                "supplier_rejoined",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )

    # ------------------------------------------------------------------
    # idle-elevation timers
    # ------------------------------------------------------------------
    def arm_idle_timer(self, peer: SimPeer) -> None:
        """Arm the ``T_out`` elevation timer for an idle supplier."""
        if not self._uses_idle_elevation:
            return
        state = peer.admission
        if state is None or state.busy or peer.departed:
            return
        # A supplier already favoring every class has nothing to elevate.
        if state.lowest_favored_class() == self._num_classes:
            return
        generation = peer.idle_timer_generation
        self.sim.schedule_in(
            self._t_out_seconds, self._on_idle_timeout, (peer, generation)
        )

    def _on_idle_timeout(self, payload: tuple[SimPeer, int]) -> None:
        peer, generation = payload
        if generation != peer.idle_timer_generation:
            return  # timer invalidated by a session start since it was armed
        state = peer.admission
        if state is None or state.busy or peer.departed:
            return
        changed = state.on_idle_timeout()
        if self.trace and changed:
            self.trace.record(
                "idle_elevation",
                self.sim.now,
                peer=peer.peer_id,
                lowest_favored=state.lowest_favored_class(),
            )
        if changed:
            self.arm_idle_timer(peer)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def favored_snapshot(self) -> dict[int, list[int]]:
        """Lowest favored class of every active supplier, by supplier class."""
        return {
            peer_class: [
                peer.admission.lowest_favored_class()
                for peer in suppliers
                if peer.admission is not None and not peer.departed
            ]
            for peer_class, suppliers in self.suppliers_by_class.items()
        }
