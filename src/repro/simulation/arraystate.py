"""Struct-of-arrays state columns for the array execution engine.

The object engine (:mod:`repro.simulation.system`) keeps one
:class:`~repro.simulation.entities.SimPeer` plus one
:class:`~repro.core.admission.SupplierAdmissionState` per peer — at a
million peers that is millions of heap objects and attribute-dict hops on
the hottest path in the repository.  This module holds the same state as
*columns*: one array per field, indexed by peer id, owned by
:class:`~repro.simulation.arrayengine.ArrayEngine`.

Two deliberate layout choices:

* **Hybrid columns.**  Mutable hot fields (admission level, per-session
  flags, counters) are plain Python ``list``/``bytearray`` columns: the
  engine reads and writes them one scalar at a time inside the event
  loop, and CPython list indexing is several times faster than boxing a
  numpy scalar per access.  Write-only measurement fields
  (``admitted_time`` and friends) and the static class column are numpy
  arrays — they are bulk-consumed by analysis, never read in the loop.
* **Integer admission levels.**  Every admission vector reachable under
  the level-representable policies is ``Pa[j] = min(1, 2**(L-j))`` for a
  single integer level ``L`` (see ``LEVEL_POLICIES`` in
  :mod:`repro.simulation.arrayengine`), so the whole
  ``SupplierAdmissionState`` collapses into one signed entry of the
  ``level`` column: ``0`` means "no admission state yet" (plain
  requester), ``+L`` an idle supplier favoring classes ``1..L``, ``-L``
  the same supplier while busy serving a session.

:class:`SessionTable` plays the same trick for the lifecycle extension's
in-flight sessions (:class:`~repro.streaming.session.ActiveSession` in
the object engine): slot-indexed columns with a LIFO free list so
interrupted/completed sessions recycle their slots, and a per-slot
generation counter standing in for event-handle cancellation.

:func:`vectorized_arrival_times` reproduces the deterministic arrival
placement of :mod:`repro.simulation.arrivals` bit-for-bit for the
patterns whose cumulative curves use only operations numpy evaluates
identically to CPython scalars (add/sub/mul/div/min — no ``**``, whose
libm path differs in the last ulp).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "PeerArrays",
    "SessionTable",
    "VECTORIZABLE_PATTERNS",
    "vectorized_arrival_times",
]


class PeerArrays:
    """All per-peer simulation state, one column per field.

    Hot columns (lists/bytearrays, scalar access in the event loop):

    ``peer_class``
        Static class of every peer.
    ``level``
        Signed admission level: 0 = no supplier state, +L idle, -L busy.
    ``favored_while_busy`` / ``reminder_min_class``
        Per-session DAC bookkeeping: whether a favored-class request
        arrived while busy, and the highest (numerically smallest)
        class that left a reminder (0 = none) — together they replace
        ``SupplierAdmissionState``'s flag and reminder list.
    ``idle_generation``
        Idle-timer generation counter; bumping it invalidates any
        pending elevation timeout, mirroring
        ``SimPeer.bump_idle_generation``.
    ``rejections`` / ``sessions_served`` / ``departures`` / ``departed``
        The counters and the churn flag of ``SimPeer``.
    ``first_request_time``
        ``None`` until the peer's first request event fires.

    Cold columns (numpy, write-only in the loop):

    ``class_column``
        Same as ``peer_class``, as an array for bulk analysis.
    ``admitted_time`` / ``buffering_delay_slots`` / ``num_suppliers_served_by``
        Admission measurements (NaN / -1 until admitted).
    """

    __slots__ = (
        "peer_class",
        "level",
        "favored_while_busy",
        "reminder_min_class",
        "idle_generation",
        "rejections",
        "sessions_served",
        "departures",
        "departed",
        "first_request_time",
        "class_column",
        "admitted_time",
        "buffering_delay_slots",
        "num_suppliers_served_by",
    )

    def __init__(self, peer_classes: list[int]) -> None:
        n = len(peer_classes)
        self.peer_class = list(peer_classes)
        self.level = [0] * n
        self.favored_while_busy = bytearray(n)
        self.reminder_min_class = [0] * n
        self.idle_generation = [0] * n
        self.rejections = [0] * n
        self.sessions_served = [0] * n
        self.departures = [0] * n
        self.departed = bytearray(n)
        self.first_request_time: list[float | None] = [None] * n
        self.class_column = np.asarray(peer_classes, dtype=np.int16)
        self.admitted_time = np.full(n, np.nan, dtype=np.float64)
        self.buffering_delay_slots = np.full(n, -1, dtype=np.int32)
        self.num_suppliers_served_by = np.full(n, -1, dtype=np.int32)

    def __len__(self) -> int:
        return len(self.peer_class)


class SessionTable:
    """Slot-recycled columns for lifecycle-tracked in-flight sessions.

    ``alloc`` hands out the most recently freed slot (LIFO, so hot slots
    stay cache-resident) or grows every column by one; ``free`` retires a
    slot and bumps its ``generation`` so any event still carrying the old
    ``(slot, generation)`` pair is recognized as stale.  The engine also
    bumps ``generation`` directly on interruption — the array analogue of
    cancelling the object engine's scheduled end-event handle.
    """

    __slots__ = (
        "requester",
        "suppliers",
        "resumed_at",
        "remaining_seconds",
        "interrupted_at",
        "interruptions",
        "recovery_attempts",
        "stall_seconds",
        "generation",
        "free_slots",
    )

    def __init__(self) -> None:
        self.requester: list[int] = []
        self.suppliers: list[tuple[int, ...]] = []
        self.resumed_at: list[float] = []
        self.remaining_seconds: list[float] = []
        self.interrupted_at: list[float | None] = []
        self.interruptions: list[int] = []
        self.recovery_attempts: list[int] = []
        self.stall_seconds: list[float] = []
        self.generation: list[int] = []
        self.free_slots: list[int] = []

    def alloc(
        self,
        requester: int,
        suppliers: tuple[int, ...],
        resumed_at: float,
        remaining_seconds: float,
    ) -> int:
        """Claim a slot for a freshly admitted (or restarted) session."""
        free = self.free_slots
        if free:
            slot = free.pop()
            self.requester[slot] = requester
            self.suppliers[slot] = suppliers
            self.resumed_at[slot] = resumed_at
            self.remaining_seconds[slot] = remaining_seconds
            self.interrupted_at[slot] = None
            self.interruptions[slot] = 0
            self.recovery_attempts[slot] = 0
            self.stall_seconds[slot] = 0.0
            return slot
        slot = len(self.requester)
        self.requester.append(requester)
        self.suppliers.append(suppliers)
        self.resumed_at.append(resumed_at)
        self.remaining_seconds.append(remaining_seconds)
        self.interrupted_at.append(None)
        self.interruptions.append(0)
        self.recovery_attempts.append(0)
        self.stall_seconds.append(0.0)
        self.generation.append(0)
        return slot

    def release(self, slot: int) -> None:
        """Retire a slot (session complete, lost, or abandoned).

        The generation bump invalidates stale events; dropping the
        supplier tuple releases the only per-slot object reference.
        """
        self.generation[slot] += 1
        self.suppliers[slot] = ()
        self.free_slots.append(slot)

    def __len__(self) -> int:
        """Number of allocated slots (live + free) — the table's high-water mark."""
        return len(self.requester)


#: deterministic arrival patterns whose quantile bisection vectorizes
#: bit-identically (their cumulative curves avoid ``**``)
VECTORIZABLE_PATTERNS: tuple[int, ...] = (1, 3, 4)


def _cumulative_uniform(t: np.ndarray, window: float) -> np.ndarray:
    # pattern 1: UniformArrivals.cumulative_fraction
    return np.minimum(np.maximum(t / window, 0.0), 1.0)


def _cumulative_front_loaded(t: np.ndarray, window: float) -> np.ndarray:
    # pattern 3: FrontLoadedArrivals.cumulative_fraction
    burst_fraction = 0.40
    burst_share = 1.0 / 12.0
    burst_end = window * burst_share
    burst_rate = burst_fraction / burst_end
    tail_rate = (1.0 - burst_fraction) / (window - burst_end)
    inside = np.where(
        t < burst_end,
        burst_rate * t,
        burst_fraction + tail_rate * (t - burst_end),
    )
    return np.where(t <= 0.0, 0.0, np.where(t >= window, 1.0, inside))


def _cumulative_bursty(t: np.ndarray, window: float) -> np.ndarray:
    # pattern 4: BurstyArrivals.cumulative_fraction — same op order as the
    # scalar code so every intermediate rounds identically
    num_bursts = 6
    burst_duration_fraction = 1.0 / 36.0
    burst_total_fraction = 0.60
    burst_len = window * burst_duration_fraction
    spacing = window / num_bursts
    floor_rate = (1.0 - burst_total_fraction) / window
    burst_rate = burst_total_fraction / (num_bursts * burst_len)
    burst_mass_per = burst_total_fraction / num_bursts
    full, offset = np.divmod(t, spacing)
    mass = full * burst_mass_per + floor_rate * (full * spacing)
    mass = mass + floor_rate * offset
    mass = mass + burst_rate * np.minimum(offset, burst_len)
    return np.where(t <= 0.0, 0.0, np.where(t >= window, 1.0, mass))


_CUMULATIVES = {
    1: _cumulative_uniform,
    3: _cumulative_front_loaded,
    4: _cumulative_bursty,
}


def vectorized_arrival_times(
    pattern_id: int, window_seconds: float, total_arrivals: int
) -> list[float]:
    """Deterministic arrival times, bit-identical to the scalar path.

    Mirrors ``generate_arrival_times(pattern, n, deterministic=True)``:
    the ``i``-th arrival lands at the quantile of ``(i + 0.5) / n``, found
    by 60 bisection steps over ``[0, window]``.  All ``n`` bisections run
    in lockstep as numpy vectors; because each step is a compare plus a
    midpoint (and the cumulative curves above use only float ops numpy
    and CPython round identically), every returned time equals the scalar
    engine's to the last bit.
    """
    if pattern_id not in _CUMULATIVES:
        raise ConfigurationError(
            f"arrival pattern {pattern_id} has no vectorized quantile; "
            f"vectorizable patterns: {VECTORIZABLE_PATTERNS}"
        )
    if total_arrivals <= 0:
        return []
    cumulative = _CUMULATIVES[pattern_id]
    n = total_arrivals
    fractions = (np.arange(n, dtype=np.float64) + 0.5) / n
    lo = np.zeros(n, dtype=np.float64)
    hi = np.full(n, window_seconds, dtype=np.float64)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        below = cumulative(mid, window_seconds) < fractions
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    return ((lo + hi) / 2.0).tolist()
