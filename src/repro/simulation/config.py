"""Simulation configuration with the paper's Section 5.1 defaults.

One frozen dataclass holds every knob of the evaluation; the defaults are
exactly the paper's setup:

* 50,100 peers — 100 class-1 "seed" suppliers and 50,000 requesting peers
  distributed 10 / 10 / 40 / 40 % over classes 1–4;
* a 60-minute video;
* ``M = 8`` probed candidates, ``T_out = 20 min`` idle elevation period,
  ``T_bkf = 10 min`` base backoff, ``E_bkf = 2`` backoff exponent;
* a 144-hour horizon with all first requests arriving in the first 72 hours.

:meth:`SimulationConfig.scaled` shrinks the population (keeping the class
mix and the seed:requester ratio) so benchmarks can run the whole harness at
1/10 scale by default — every reported curve keeps its shape because the
dynamics depend on supply/demand *ratios*, not absolute counts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.model import ClassLadder
from repro.errors import ConfigurationError
from repro.simulation.kernel import KERNEL_NAMES
from repro.simulation.lifecycle import LIFECYCLE_NAMES, RECOVERY_MODES
from repro.simulation.probes import validate_probes
from repro.streaming.media import MediaFile

__all__ = ["SimulationConfig", "PAPER_CLASS_SHARES", "ENGINE_NAMES"]

MINUTE = 60.0
HOUR = 3600.0

#: Execution engines.  "object" is the reference per-peer object walk;
#: "array" is the struct-of-arrays engine (repro.simulation.arrayengine),
#: metric-identical by contract but restricted to level-representable
#: admission policies.  Defined here (not in the engine module) so the
#: config layer never imports numpy.
ENGINE_NAMES: tuple[str, ...] = ("array", "object")

#: Paper: requesting peers are 10% class 1, 10% class 2, 40% class 3, 40% class 4.
PAPER_CLASS_SHARES: dict[int, float] = {1: 0.10, 2: 0.10, 3: 0.40, 4: 0.40}


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one simulation run (paper defaults)."""

    # ----- population -------------------------------------------------
    #: per-class counts of seed supplying peers (paper: 100 class-1 seeds)
    seed_suppliers: dict[int, int] = field(default_factory=lambda: {1: 100})
    #: per-class counts of requesting peers (paper: 5000/5000/20000/20000)
    requesting_peers: dict[int, int] = field(
        default_factory=lambda: {1: 5000, 2: 5000, 3: 20000, 4: 20000}
    )
    num_classes: int = 4

    # ----- media -------------------------------------------------------
    show_seconds: float = 60 * MINUTE
    segment_seconds: float = 5.0

    # ----- protocol parameters (paper Section 5.1) ----------------------
    #: name of the admission policy ("dac", "ndac", or a variant)
    protocol: str = "dac"
    #: number of candidate suppliers probed per request (M)
    probe_candidates: int = 8
    #: idle elevation period T_out
    t_out_seconds: float = 20 * MINUTE
    #: base backoff T_bkf
    t_bkf_seconds: float = 10 * MINUTE
    #: backoff exponential factor E_bkf
    e_bkf: float = 2.0

    # ----- workload ------------------------------------------------------
    #: arrival pattern id, 1..4 (paper Section 5.1)
    arrival_pattern: int = 2
    #: window during which all first requests arrive (paper: 72 h)
    arrival_window_seconds: float = 72 * HOUR
    #: total simulated horizon (paper: 144 h)
    horizon_seconds: float = 144 * HOUR
    #: place first-request times deterministically (inverse CDF) or Poisson
    deterministic_arrivals: bool = True

    # ----- substrates ----------------------------------------------------
    #: "directory" (Napster-style) or "chord"
    lookup: str = "directory"
    #: probability that a probed candidate is down (0 = paper behaviour)
    down_probability: float = 0.0
    #: record control-message statistics
    track_messages: bool = True
    #: mean online time of a supplier before it departs (None = never, the
    #: paper's model); departures are graceful — a busy supplier finishes
    #: its current session first
    supplier_mean_online_seconds: float | None = None
    #: mean offline time before a departed supplier rejoins
    supplier_mean_offline_seconds: float = 4 * HOUR
    #: whether departed suppliers ever rejoin
    suppliers_rejoin: bool = True

    # ----- session lifecycle (extension; "none" = the paper's model) ------
    #: lifecycle model scheduling mid-stream supplier departures as kernel
    #: events ("none", "onoff", "sessions", "diurnal", "flash"); see
    #: :mod:`repro.simulation.lifecycle`
    lifecycle: str = "none"
    #: mean (onoff/diurnal) or median (sessions) online period
    lifecycle_mean_up_seconds: float = 8 * HOUR
    #: mean downtime before a departed supplier returns
    lifecycle_mean_down_seconds: float = 30 * MINUTE
    #: log-normal shape of the "sessions" model's online periods
    lifecycle_sigma: float = 1.0
    #: night-time shrink factor of the "diurnal" model's mean online period
    lifecycle_night_factor: float = 0.25
    #: when the "flash" model's mass departure strikes
    lifecycle_flash_at_seconds: float = 36 * HOUR
    #: fraction of suppliers the "flash" model takes down
    lifecycle_flash_fraction: float = 0.3
    #: whether departed suppliers ever return
    lifecycle_rejoin: bool = True
    #: what an interrupted requester does ("resume", "restart", "abandon")
    lifecycle_recovery: str = "resume"

    # ----- measurement ----------------------------------------------------
    capacity_sample_seconds: float = 1 * HOUR
    rate_sample_seconds: float = 1 * HOUR
    favored_snapshot_seconds: float = 3 * HOUR
    #: metric probes to subscribe (None = the full paper evaluation); a
    #: tuple of names from :data:`repro.simulation.probes.PROBE_NAMES`
    #: records only those artifacts and skips the others' accumulators
    #: and sampler events entirely
    probes: tuple[str, ...] | None = None

    # ----- execution -------------------------------------------------------
    #: event-queue kernel ("heap", "calendar" or "calendar-auto");
    #: never changes results — kernels are dispatch-order-identical
    #: (see repro.simulation.kernel) — so it is excluded from
    #: result-cache hashes
    kernel: str = "heap"
    #: execution engine ("object" or "array"); never changes results —
    #: the array engine is parity-pinned against the object engine (see
    #: repro.simulation.arrayengine) — so it is excluded from
    #: result-cache hashes like ``kernel``.  The array engine dispatches
    #: through its own lane-based event core and ignores ``kernel``.
    engine: str = "object"

    # ----- reproducibility -------------------------------------------------
    master_seed: int = 20020701  # ICDCS 2002 was held in July

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        ladder = ClassLadder(self.num_classes)
        for peer_class in list(self.seed_suppliers) + list(self.requesting_peers):
            ladder.validate_class(peer_class)
        if min(self.seed_suppliers.values(), default=0) < 0:
            raise ConfigurationError("seed supplier counts must be >= 0")
        if min(self.requesting_peers.values(), default=0) < 0:
            raise ConfigurationError("requesting peer counts must be >= 0")
        if sum(self.seed_suppliers.values()) < 1:
            raise ConfigurationError("the system needs at least one seed supplier")
        if self.probe_candidates < 1:
            raise ConfigurationError(f"M must be >= 1, got {self.probe_candidates}")
        if self.arrival_pattern not in (1, 2, 3, 4):
            raise ConfigurationError(
                f"arrival pattern must be 1..4, got {self.arrival_pattern}"
            )
        if self.arrival_window_seconds > self.horizon_seconds:
            raise ConfigurationError("arrival window cannot exceed the horizon")
        if not 0.0 <= self.down_probability < 1.0:
            raise ConfigurationError(
                f"down_probability must be in [0, 1), got {self.down_probability}"
            )
        if self.t_out_seconds <= 0 or self.t_bkf_seconds <= 0 or self.e_bkf < 1:
            raise ConfigurationError("timer parameters must be positive (E_bkf >= 1)")
        if self.lookup not in ("directory", "chord"):
            raise ConfigurationError(f"unknown lookup substrate {self.lookup!r}")
        if (
            self.supplier_mean_online_seconds is not None
            and self.supplier_mean_online_seconds <= 0
        ):
            raise ConfigurationError("supplier mean online time must be > 0")
        if self.supplier_mean_offline_seconds <= 0:
            raise ConfigurationError("supplier mean offline time must be > 0")
        if self.lifecycle not in LIFECYCLE_NAMES:
            raise ConfigurationError(
                f"unknown lifecycle model {self.lifecycle!r}; "
                f"known: {', '.join(LIFECYCLE_NAMES)}"
            )
        if self.lifecycle_recovery not in RECOVERY_MODES:
            raise ConfigurationError(
                f"unknown lifecycle recovery mode {self.lifecycle_recovery!r}; "
                f"known: {', '.join(RECOVERY_MODES)}"
            )
        if self.lifecycle != "none":
            if self.supplier_mean_online_seconds is not None:
                raise ConfigurationError(
                    "lifecycle models and graceful supplier churn "
                    "(supplier_mean_online_seconds) are mutually exclusive; "
                    "pick one departure mechanism"
                )
            if (
                self.lifecycle_mean_up_seconds <= 0
                or self.lifecycle_mean_down_seconds <= 0
            ):
                raise ConfigurationError(
                    "lifecycle mean up/down durations must be > 0"
                )
            if self.lifecycle_sigma < 0:
                raise ConfigurationError(
                    f"lifecycle_sigma must be >= 0, got {self.lifecycle_sigma}"
                )
            if not 0.0 < self.lifecycle_night_factor <= 1.0:
                raise ConfigurationError(
                    "lifecycle_night_factor must be in (0, 1], got "
                    f"{self.lifecycle_night_factor}"
                )
            if self.lifecycle_flash_at_seconds < 0:
                raise ConfigurationError(
                    "lifecycle_flash_at_seconds must be >= 0, got "
                    f"{self.lifecycle_flash_at_seconds}"
                )
            if not 0.0 <= self.lifecycle_flash_fraction <= 1.0:
                raise ConfigurationError(
                    "lifecycle_flash_fraction must be in [0, 1], got "
                    f"{self.lifecycle_flash_fraction}"
                )
        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown event kernel {self.kernel!r}; "
                f"known: {', '.join(KERNEL_NAMES)}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                f"known: {', '.join(ENGINE_NAMES)}"
            )
        if self.probes is not None:
            # normalize (JSON round-trips hand us lists) then validate
            object.__setattr__(self, "probes", tuple(self.probes))
            validate_probes(self.probes)

    # ------------------------------------------------------------------
    @property
    def ladder(self) -> ClassLadder:
        """The bandwidth-class ladder in force."""
        return ClassLadder(self.num_classes)

    @property
    def media(self) -> MediaFile:
        """The (single) media file all peers stream."""
        return MediaFile(
            show_seconds=self.show_seconds, segment_seconds=self.segment_seconds
        )

    @property
    def total_requesting(self) -> int:
        """Total number of requesting peers."""
        return sum(self.requesting_peers.values())

    @property
    def total_peers(self) -> int:
        """Seeds plus requesting peers."""
        return self.total_requesting + sum(self.seed_suppliers.values())

    def replace(self, **changes: object) -> "SimulationConfig":
        """Frozen-dataclass ``replace`` with validation re-run."""
        return dataclasses.replace(self, **changes)

    def scaled(self, scale: float) -> "SimulationConfig":
        """Shrink (or grow) the population by ``scale``, keeping ratios.

        Counts are rounded to the nearest integer with a floor of 1 for any
        class that was nonzero, so tiny scales still exercise every class.
        """
        if scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")

        def scale_counts(counts: dict[int, int]) -> dict[int, int]:
            return {
                peer_class: max(1, round(count * scale)) if count else 0
                for peer_class, count in counts.items()
            }

        return self.replace(
            seed_suppliers=scale_counts(self.seed_suppliers),
            requesting_peers=scale_counts(self.requesting_peers),
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary of the run."""
        lifecycle = (
            f"lifecycle={self.lifecycle}/{self.lifecycle_recovery}, "
            if self.lifecycle != "none"
            else ""
        )
        return (
            f"{self.protocol} | {self.total_peers} peers "
            f"({sum(self.seed_suppliers.values())} seeds + {self.total_requesting} requesters), "
            f"pattern {self.arrival_pattern}, M={self.probe_candidates}, "
            f"T_out={self.t_out_seconds / MINUTE:.0f}min, "
            f"T_bkf={self.t_bkf_seconds / MINUTE:.0f}min, E_bkf={self.e_bkf:g}, "
            f"horizon {self.horizon_seconds / HOUR:.0f}h, lookup={self.lookup}, "
            f"{lifecycle}seed={self.master_seed}"
        )
