"""Event-kind names shared by the streaming system and trace consumers.

The trace is a stream of flat dicts; these constants are the vocabulary of
their ``kind`` field, kept in one module so analysis code and tests never
drift from the producer.
"""

from __future__ import annotations

__all__ = [
    "SUPPLIER_JOINED",
    "IDLE_ELEVATION",
    "ADMISSION",
    "REJECTION",
    "ALL_KINDS",
]

#: a peer entered the supplier population (seed init or promotion)
SUPPLIER_JOINED = "supplier_joined"
#: an idle supplier elevated its probability vector after T_out
IDLE_ELEVATION = "idle_elevation"
#: a requesting peer was admitted and its session started
ADMISSION = "admission"
#: a requesting peer was rejected and scheduled a backoff retry
REJECTION = "rejection"

ALL_KINDS = (SUPPLIER_JOINED, IDLE_ELEVATION, ADMISSION, REJECTION)
