"""Named, independently-seeded RNG streams.

Every source of randomness in a run gets its *own* ``random.Random``
instance, derived deterministically from the master seed and a stream name.
This is the standard trick for variance-controlled simulation studies: the
admission coin flips of a DAC run and an NDAC run with the same master seed
consume identical candidate-sampling streams, so protocol comparisons are
paired rather than confounded by RNG drift.

``random.Random`` accepts a string seed and hashes it with its own stable
algorithm (not Python's per-process ``hash``), so streams are reproducible
across interpreter sessions without touching ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random

__all__ = ["RandomStreams"]

#: Streams the streaming system uses.  Kept in one place so a config or test
#: can enumerate them.
STREAM_NAMES = ("arrivals", "lookup", "admission", "churn", "population")


class RandomStreams:
    """Factory of deterministic, named child RNGs under one master seed."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The RNG for ``name`` (created on first use, cached after)."""
        if name not in self._streams:
            self._streams[name] = random.Random(f"repro:{self.master_seed}:{name}")
        return self._streams[name]

    @property
    def arrivals(self) -> random.Random:
        """Poisson arrival sampling (unused in deterministic-arrivals mode)."""
        return self.stream("arrivals")

    @property
    def lookup(self) -> random.Random:
        """Candidate sampling in the lookup substrate."""
        return self.stream("lookup")

    @property
    def admission(self) -> random.Random:
        """The probabilistic admission coin flips of DAC_p2p."""
        return self.stream("admission")

    @property
    def churn(self) -> random.Random:
        """Peer up/down availability draws."""
        return self.stream("churn")

    @property
    def population(self) -> random.Random:
        """Shuffling class labels over the requesting-peer population."""
        return self.stream("population")
