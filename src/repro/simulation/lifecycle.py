"""Session-lifecycle dynamics: event-driven peer departures and returns.

The paper treats peer unavailability as an *admission-time* condition — a
probed candidate may be "down" (:mod:`repro.simulation.churn`) — and its
supplier-churn extension is *graceful*: a busy supplier defers departure
until its session ends.  This module promotes churn to first-class
scheduled events on the :class:`~repro.simulation.kernel.EventKernel`: a
supplier can die **mid-stream**, its active sessions are interrupted, and
the requesting peers must recover (re-probe, re-admit, resume from their
buffer position) while the continuity probes charge every stall against
playback quality.

Two layers live here:

* **Lifecycle models** (:class:`LifecycleModel`) — deterministic per-peer
  timing generators answering "when does this supplier next depart?" and
  "when does it come back?".  Every model derives its draws from private,
  per-peer RNGs seeded by ``(master seed, peer id)``, so event timings are
  reproducible and independent of dispatch interleaving — the same
  contract that makes event kernels interchangeable.
* **:class:`LifecycleDynamics`** — the subsystem that turns a model's
  answers into kernel-scheduled departure/return events and drives the
  supply-side bookkeeping (capacity ledger, lookup registration, idle
  timers) plus the session interruptions handled by
  :class:`~repro.simulation.requestpath.RequestPath`.

With the default :class:`NoLifecycle` model the subsystem schedules
nothing, draws nothing, and runs are bit-identical to a build without it
(pinned by ``tests/simulation/test_lifecycle.py``).

Models
------
``none``
    No lifecycle events — the paper's world.
``onoff``
    :class:`~repro.simulation.churn.OnOffChurn`-style alternating
    exponential up/down periods, turned from probe-time sampling into
    scheduled departure/return events on the peer's private timeline.
``sessions``
    A session-duration (trace-like) model: heavy-tailed log-normal online
    periods — the shape measured in real P2P session traces — with
    exponential downtimes.
``diurnal``
    Exponential online periods whose mean shrinks at night
    (``lifecycle_night_factor``), clustering departures into the quiet
    hours of a 24 h cycle.
``flash``
    A correlated mass departure: a fixed fraction of the supplier
    population (selected per-peer, deterministically) leaves
    simultaneously at ``lifecycle_flash_at_seconds`` and trickles back
    after exponential downtimes.

Recovery modes (``lifecycle_recovery``)
---------------------------------------
``resume``
    The requester re-probes ``M`` candidates and, once re-admitted,
    resumes from its buffer position — only the *remaining* transfer is
    redone.  Failed recovery probes honor the paper's exponential
    backoff (``T_bkf``/``E_bkf``).
``restart``
    Like ``resume``, but the buffer position is lost: the full transfer
    restarts from the beginning.
``abandon``
    Interrupted sessions fail permanently; the requester never becomes a
    supplier.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, ClassVar, Protocol

from repro.errors import ConfigurationError
from repro.simulation.churn import OnOffChurn

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.simulation.config import SimulationConfig
    from repro.simulation.engine import Simulator
    from repro.simulation.entities import SimPeer
    from repro.simulation.metrics import MetricsCollector
    from repro.simulation.registry import SupplierRegistry
    from repro.simulation.requestpath import RequestPath
    from repro.simulation.trace import TraceRecorder

__all__ = [
    "LifecycleModel",
    "NoLifecycle",
    "OnOffLifecycle",
    "SessionDurationLifecycle",
    "DiurnalLifecycle",
    "FlashLifecycle",
    "LifecycleDynamics",
    "LIFECYCLE_NAMES",
    "RECOVERY_MODES",
    "make_lifecycle",
]

HOUR = 3600.0

#: valid values of ``SimulationConfig.lifecycle``
LIFECYCLE_NAMES: tuple[str, ...] = ("none", "onoff", "sessions", "diurnal", "flash")

#: valid values of ``SimulationConfig.lifecycle_recovery``
RECOVERY_MODES: tuple[str, ...] = ("resume", "restart", "abandon")


class LifecycleModel(Protocol):
    """Per-peer departure/return timing generator.

    Implementations must be deterministic per ``(seed, peer_id)`` and must
    not share RNG state across peers, so that scheduled timings do not
    depend on the order peers are activated in — the property that keeps
    lifecycle runs bit-identical across event kernels.
    """

    #: registry key (also the ``SimulationConfig.lifecycle`` vocabulary)
    name: ClassVar[str]

    def next_departure(self, peer_id: int, now: float) -> float | None:
        """When the peer (a supplier active at ``now``) next departs.

        ``None`` means "never" — the peer stays for the rest of the run.
        A returned time is always ``>= now``.
        """
        ...

    def next_return(self, peer_id: int, now: float) -> float | None:
        """When the peer (departed at ``now``) comes back online.

        ``None`` means the peer never returns.  A returned time is always
        ``>= now``.
        """
        ...


class NoLifecycle:
    """No lifecycle events — every supplier stays up forever (the paper)."""

    name = "none"

    def next_departure(self, peer_id: int, now: float) -> float | None:
        """Never departs."""
        return None

    def next_return(self, peer_id: int, now: float) -> float | None:
        """Never departed, so never returns."""
        return None


class OnOffLifecycle:
    """Scheduled departures on an :class:`OnOffChurn`-style timeline.

    Each peer alternates exponential up/down periods on a private,
    deterministic, lazily extended timeline (exactly the churn model's
    construction).  Where :class:`~repro.simulation.churn.OnOffChurn`
    *samples* that timeline at probe time, this model reads off the next
    transition so it can be scheduled as a kernel event: a supplier active
    at ``now`` departs at the end of the up interval containing ``now``
    (immediately, if its timeline has it down already — the "down at
    activation" edge), and returns at the end of the down interval.
    """

    name = "onoff"

    def __init__(
        self, mean_up_seconds: float, mean_down_seconds: float, seed: int = 0
    ) -> None:
        self._timeline = OnOffChurn(mean_up_seconds, mean_down_seconds, seed=seed)

    def next_departure(self, peer_id: int, now: float) -> float | None:
        down, boundary = self._timeline.next_transition(peer_id, now)
        return now if down else boundary

    def next_return(self, peer_id: int, now: float) -> float | None:
        down, boundary = self._timeline.next_transition(peer_id, now)
        return boundary if down else now


class SessionDurationLifecycle:
    """Trace-shaped session durations: log-normal up, exponential down.

    Measured P2P session lengths are heavy-tailed — most suppliers stay
    minutes-to-hours, a few stay days.  Online periods are log-normal with
    median ``median_up_seconds`` and shape ``sigma`` (``sigma=0`` collapses
    to fixed-length sessions); downtimes are exponential.  Each peer owns a
    private sequential RNG, so its durations depend only on its own
    activation history.
    """

    name = "sessions"

    def __init__(
        self,
        median_up_seconds: float,
        mean_down_seconds: float,
        sigma: float = 1.0,
        seed: int = 0,
    ) -> None:
        self._mu = math.log(median_up_seconds)
        self._sigma = sigma
        self._mean_down = mean_down_seconds
        self._seed = seed
        self._rngs: dict[int, random.Random] = {}

    def _rng(self, peer_id: int) -> random.Random:
        rng = self._rngs.get(peer_id)
        if rng is None:
            rng = random.Random(f"lifecycle:sessions:{self._seed}:{peer_id}")
            self._rngs[peer_id] = rng
        return rng

    def next_departure(self, peer_id: int, now: float) -> float | None:
        return now + self._rng(peer_id).lognormvariate(self._mu, self._sigma)

    def next_return(self, peer_id: int, now: float) -> float | None:
        return now + self._rng(peer_id).expovariate(1.0 / self._mean_down)


class DiurnalLifecycle:
    """Departures that cluster at night on a 24-hour cycle.

    Online periods are exponential with a time-of-day-dependent mean:
    during the night window (simulated hours 0–8 of each day) the mean
    shrinks by ``night_factor``, so suppliers drawn at night leave much
    sooner.  Downtimes are exponential with a fixed mean.
    """

    name = "diurnal"

    #: length of one simulated day
    DAY_SECONDS = 24 * HOUR
    #: the night window is the first this-many seconds of each day
    NIGHT_END_SECONDS = 8 * HOUR

    def __init__(
        self,
        mean_up_seconds: float,
        mean_down_seconds: float,
        night_factor: float = 0.25,
        seed: int = 0,
    ) -> None:
        self._mean_up = mean_up_seconds
        self._mean_down = mean_down_seconds
        self._night_factor = night_factor
        self._seed = seed
        self._rngs: dict[int, random.Random] = {}

    def _rng(self, peer_id: int) -> random.Random:
        rng = self._rngs.get(peer_id)
        if rng is None:
            rng = random.Random(f"lifecycle:diurnal:{self._seed}:{peer_id}")
            self._rngs[peer_id] = rng
        return rng

    def next_departure(self, peer_id: int, now: float) -> float | None:
        time_of_day = now % self.DAY_SECONDS
        factor = self._night_factor if time_of_day < self.NIGHT_END_SECONDS else 1.0
        return now + self._rng(peer_id).expovariate(1.0 / (self._mean_up * factor))

    def next_return(self, peer_id: int, now: float) -> float | None:
        return now + self._rng(peer_id).expovariate(1.0 / self._mean_down)


class FlashLifecycle:
    """A correlated mass departure at a fixed instant.

    Every peer flips a private, deterministic coin (probability
    ``fraction``); the selected ones depart simultaneously at
    ``at_seconds`` — the worst case for mid-stream recovery, since the
    surviving suppliers absorb every interrupted session at once — and
    return after private exponential downtimes.  Peers that become
    suppliers only after the flash never depart.
    """

    name = "flash"

    def __init__(
        self,
        at_seconds: float,
        fraction: float,
        mean_down_seconds: float,
        seed: int = 0,
    ) -> None:
        self._at = at_seconds
        self._fraction = fraction
        self._mean_down = mean_down_seconds
        self._seed = seed

    def _selected(self, peer_id: int) -> bool:
        if self._fraction <= 0.0:
            return False
        rng = random.Random(f"lifecycle:flash:{self._seed}:{peer_id}")
        return rng.random() < self._fraction

    def next_departure(self, peer_id: int, now: float) -> float | None:
        if now < self._at and self._selected(peer_id):
            return self._at
        return None

    def next_return(self, peer_id: int, now: float) -> float | None:
        rng = random.Random(f"lifecycle:flash:return:{self._seed}:{peer_id}")
        return now + rng.expovariate(1.0 / self._mean_down)


def make_lifecycle(config: "SimulationConfig") -> LifecycleModel:
    """Instantiate the lifecycle model a configuration selects.

    Model parameters come from the ``lifecycle_*`` config fields; per-peer
    RNGs are seeded from the run's master seed, so lifecycle timings are
    part of the run's reproducible randomness.
    """
    name = config.lifecycle
    seed = config.master_seed
    if name == "none":
        return NoLifecycle()
    if name == "onoff":
        return OnOffLifecycle(
            config.lifecycle_mean_up_seconds,
            config.lifecycle_mean_down_seconds,
            seed=seed,
        )
    if name == "sessions":
        return SessionDurationLifecycle(
            config.lifecycle_mean_up_seconds,
            config.lifecycle_mean_down_seconds,
            sigma=config.lifecycle_sigma,
            seed=seed,
        )
    if name == "diurnal":
        return DiurnalLifecycle(
            config.lifecycle_mean_up_seconds,
            config.lifecycle_mean_down_seconds,
            night_factor=config.lifecycle_night_factor,
            seed=seed,
        )
    if name == "flash":
        return FlashLifecycle(
            config.lifecycle_flash_at_seconds,
            config.lifecycle_flash_fraction,
            config.lifecycle_mean_down_seconds,
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown lifecycle model {name!r}; known: {', '.join(LIFECYCLE_NAMES)}"
    )


class LifecycleDynamics:
    """Kernel-scheduled supplier departures and returns.

    The registry calls :meth:`on_supplier_active` whenever a peer enters
    (or re-enters) the supplier population; the dynamics then schedule the
    peer's next departure per the model.  A departure removes the supplier
    from the capacity ledger and the lookup substrate, interrupts every
    session it is serving (delegated to
    :meth:`RequestPath.on_supplier_departed`), and — unless the model says
    otherwise — schedules the peer's return, which re-registers it and
    arms its idle-elevation timer again.

    Unlike the registry's *graceful* supplier churn
    (``supplier_mean_online_seconds``), lifecycle departures are abrupt:
    being busy does not defer them.  The two mechanisms are mutually
    exclusive (enforced at config validation).
    """

    def __init__(
        self,
        *,
        sim: "Simulator",
        config: "SimulationConfig",
        model: LifecycleModel,
        metrics: "MetricsCollector",
        ledger,
        lookup,
        registry: "SupplierRegistry",
        request_path: "RequestPath",
        trace: "TraceRecorder | None" = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.model = model
        self.metrics = metrics
        self.ledger = ledger
        self.lookup = lookup
        self.registry = registry
        self.request_path = request_path
        self.trace = trace
        self._media_id = config.media.media_id
        self._horizon = config.horizon_seconds
        self._rejoin = config.lifecycle_rejoin

    @property
    def enabled(self) -> bool:
        """Whether the configured model can ever schedule an event."""
        return not isinstance(self.model, NoLifecycle)

    # ------------------------------------------------------------------
    # activation (registry hook)
    # ------------------------------------------------------------------
    def on_supplier_active(self, peer: "SimPeer") -> None:
        """A peer entered the supplier population; schedule its departure."""
        at = self.model.next_departure(peer.peer_id, self.sim.now)
        if at is None or at > self._horizon:
            return
        self.sim.schedule_at(max(at, self.sim.now), self._on_departure, peer)

    # ------------------------------------------------------------------
    # departure / return events
    # ------------------------------------------------------------------
    def _on_departure(self, peer: "SimPeer") -> None:
        """The peer leaves abruptly, mid-stream if it is serving."""
        if peer.departed:
            return
        peer.departed = True
        peer.departures += 1
        peer.bump_idle_generation()  # kill any pending elevation timer
        self.ledger.remove_supplier(peer.peer_class)
        self.lookup.unregister_supplier(self._media_id, peer.peer_id)
        self.metrics.on_supplier_departure(peer.peer_class)
        if self.trace:
            self.trace.record(
                "supplier_departed",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )
        # Interrupting sessions runs *after* the departure bookkeeping so
        # recovery probes can no longer discover the departed supplier.
        self.request_path.on_supplier_departed(peer)
        if not self._rejoin:
            return
        at = self.model.next_return(peer.peer_id, self.sim.now)
        if at is None or at > self._horizon:
            return
        self.sim.schedule_at(max(at, self.sim.now), self._on_return, peer)

    def _on_return(self, peer: "SimPeer") -> None:
        """A departed peer comes back online with its old vector."""
        if not peer.departed:
            return
        peer.departed = False
        self.ledger.add_supplier(peer.peer_class)
        self.lookup.register_supplier(self._media_id, peer.peer_id, peer.peer_class)
        self.metrics.on_supplier_rejoin(peer.peer_class)
        self.registry.arm_idle_timer(peer)
        if self.trace:
            self.trace.record(
                "supplier_rejoined",
                self.sim.now,
                peer=peer.peer_id,
                peer_class=peer.peer_class,
                capacity=self.ledger.sessions,
            )
        self.on_supplier_active(peer)
