"""Metrics collection behind every figure and table of the paper.

The accumulators themselves live in :mod:`repro.simulation.probes` as one
composable probe per paper artifact, dispatched by a
:class:`~repro.simulation.probes.MetricsPipeline`; studies subscribe only
to the probes they need (``SimulationConfig.probes``).  This module keeps
the historical names — :class:`MetricsCollector` is the pipeline with
every probe subscribed (the full paper evaluation), and
:class:`SeriesPoint` is re-exported — so existing imports, reports and
serialized records keep working unchanged.

=====================  ======================================================
Paper artifact          Collector output
=====================  ======================================================
Figure 4                ``capacity_series`` — hourly ``(hour, sessions)``
Figure 5                ``admission_rate_series[class]`` — hourly cumulative
                        admitted / first-requested, in percent
Figure 6                ``buffering_delay_series[class]`` — hourly cumulative
                        mean buffering delay in slots (× δt)
Table 1                 ``mean_rejections_before_admission[class]``
Figure 7                ``favored_series[supplier class]`` — 3-hourly mean of
                        the lowest favored requesting class
Figure 9                ``overall_admission_rate_series``
(waiting time)          ``mean_waiting_seconds[class]``
=====================  ======================================================

All cumulative series sample *state so far*, matching the paper's
"accumulative" plots.
"""

from __future__ import annotations

from repro.core.model import ClassLadder
from repro.simulation.probes import MetricsPipeline, SeriesPoint

__all__ = ["MetricsCollector", "MetricsPipeline", "SeriesPoint"]

HOUR = 3600.0


class MetricsCollector(MetricsPipeline):
    """The full metrics pipeline — every paper-artifact probe subscribed.

    Kept as the historical name for the monolithic collector; accepts the
    same optional ``probes`` subscription as the pipeline.
    """

    def __init__(
        self, ladder: ClassLadder, probes: tuple[str, ...] | None = None
    ) -> None:
        super().__init__(ladder, probes=probes)
