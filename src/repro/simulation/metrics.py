"""Metrics collectors behind every figure and table of the paper.

One :class:`MetricsCollector` instance accompanies a simulation run and is
fed by the streaming system at protocol events and periodic samplers:

=====================  ======================================================
Paper artifact          Collector output
=====================  ======================================================
Figure 4                ``capacity_series`` — hourly ``(hour, sessions)``
Figure 5                ``admission_rate_series[class]`` — hourly cumulative
                        admitted / first-requested, in percent
Figure 6                ``buffering_delay_series[class]`` — hourly cumulative
                        mean buffering delay in slots (× δt)
Table 1                 ``mean_rejections_before_admission[class]``
Figure 7                ``favored_series[supplier class]`` — 3-hourly mean of
                        the lowest favored requesting class
Figure 9                ``overall_admission_rate_series``
(waiting time)          ``mean_waiting_seconds[class]``
=====================  ======================================================

All cumulative series sample *state so far*, matching the paper's
"accumulative" plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.capacity import CapacityLedger
from repro.core.model import ClassLadder

__all__ = ["MetricsCollector", "SeriesPoint"]

HOUR = 3600.0


@dataclass(frozen=True)
class SeriesPoint:
    """One sample of a time series: simulated hour plus a value."""

    hour: float
    value: float


class MetricsCollector:
    """Accumulates counters and periodic samples during a run."""

    def __init__(self, ladder: ClassLadder) -> None:
        self.ladder = ladder
        classes = list(ladder.classes)

        # ---- event counters (cumulative) ------------------------------
        self.first_requests = {c: 0 for c in classes}
        self.requests = {c: 0 for c in classes}
        self.rejections = {c: 0 for c in classes}
        self.admitted = {c: 0 for c in classes}
        self.reminders_left = {c: 0 for c in classes}
        self.supplier_departures = {c: 0 for c in classes}
        self.supplier_rejoins = {c: 0 for c in classes}

        # ---- accumulators over admitted peers --------------------------
        self.rejections_before_admission_sum = {c: 0 for c in classes}
        self.buffering_delay_slots_sum = {c: 0 for c in classes}
        self.waiting_seconds_sum = {c: 0.0 for c in classes}
        self.suppliers_per_session_sum = {c: 0 for c in classes}

        # ---- periodic series -------------------------------------------
        self.capacity_series: list[SeriesPoint] = []
        self.capacity_fractional_series: list[SeriesPoint] = []
        self.supplier_count_series: list[SeriesPoint] = []
        self.admission_rate_series: dict[int, list[SeriesPoint]] = {
            c: [] for c in classes
        }
        self.overall_admission_rate_series: list[SeriesPoint] = []
        self.buffering_delay_series: dict[int, list[SeriesPoint]] = {
            c: [] for c in classes
        }
        self.favored_series: dict[int, list[SeriesPoint]] = {c: [] for c in classes}

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def on_first_request(self, peer_class: int) -> None:
        """A peer made its first streaming request."""
        self.first_requests[peer_class] += 1
        self.requests[peer_class] += 1

    def on_retry(self, peer_class: int) -> None:
        """A previously rejected peer retried."""
        self.requests[peer_class] += 1

    def on_rejection(self, peer_class: int) -> None:
        """A request (first or retry) was rejected."""
        self.rejections[peer_class] += 1

    def on_reminder(self, peer_class: int) -> None:
        """A rejected class-``peer_class`` peer left one reminder."""
        self.reminders_left[peer_class] += 1

    def on_supplier_departure(self, peer_class: int) -> None:
        """A supplier departed the system (supplier-churn extension)."""
        self.supplier_departures[peer_class] += 1

    def on_supplier_rejoin(self, peer_class: int) -> None:
        """A departed supplier rejoined (supplier-churn extension)."""
        self.supplier_rejoins[peer_class] += 1

    def on_admission(
        self,
        peer_class: int,
        rejections_before: int,
        num_suppliers: int,
        buffering_delay_slots: int,
        waiting_seconds: float,
    ) -> None:
        """A peer was admitted; record everything Table 1/Figs 5-6 need."""
        self.admitted[peer_class] += 1
        self.rejections_before_admission_sum[peer_class] += rejections_before
        self.buffering_delay_slots_sum[peer_class] += buffering_delay_slots
        self.suppliers_per_session_sum[peer_class] += num_suppliers
        self.waiting_seconds_sum[peer_class] += waiting_seconds

    # ------------------------------------------------------------------
    # periodic samplers (driven by the streaming system)
    # ------------------------------------------------------------------
    def sample_capacity(self, now_seconds: float, ledger: CapacityLedger) -> None:
        """Record the Figure-4 capacity sample at ``now_seconds``."""
        hour = now_seconds / HOUR
        self.capacity_series.append(SeriesPoint(hour, float(ledger.sessions)))
        self.capacity_fractional_series.append(
            SeriesPoint(hour, ledger.sessions_fractional)
        )
        self.supplier_count_series.append(SeriesPoint(hour, float(ledger.num_suppliers)))

    def sample_rates(self, now_seconds: float) -> None:
        """Record the Figure-5/6/9 cumulative samples at ``now_seconds``."""
        hour = now_seconds / HOUR
        total_first = sum(self.first_requests.values())
        total_admitted = sum(self.admitted.values())
        for peer_class in self.ladder.classes:
            first = self.first_requests[peer_class]
            admitted = self.admitted[peer_class]
            if first > 0:
                rate = 100.0 * admitted / first
                self.admission_rate_series[peer_class].append(SeriesPoint(hour, rate))
            if admitted > 0:
                mean_delay = (
                    self.buffering_delay_slots_sum[peer_class] / admitted
                )
                self.buffering_delay_series[peer_class].append(
                    SeriesPoint(hour, mean_delay)
                )
        if total_first > 0:
            self.overall_admission_rate_series.append(
                SeriesPoint(hour, 100.0 * total_admitted / total_first)
            )

    def sample_favored(
        self, now_seconds: float, lowest_favored_by_class: dict[int, list[int]]
    ) -> None:
        """Record the Figure-7 snapshot: per supplier class, the mean lowest
        favored requesting class at ``now_seconds``."""
        hour = now_seconds / HOUR
        for peer_class, values in lowest_favored_by_class.items():
            if values:
                mean = sum(values) / len(values)
                self.favored_series[peer_class].append(SeriesPoint(hour, mean))

    # ------------------------------------------------------------------
    # derived results
    # ------------------------------------------------------------------
    def mean_rejections_before_admission(self) -> dict[int, float]:
        """Table 1: per-class mean rejections suffered before admission."""
        return {
            c: (
                self.rejections_before_admission_sum[c] / self.admitted[c]
                if self.admitted[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def mean_buffering_delay_slots(self) -> dict[int, float]:
        """Final per-class mean buffering delay (Figure 6 endpoint)."""
        return {
            c: (
                self.buffering_delay_slots_sum[c] / self.admitted[c]
                if self.admitted[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def mean_waiting_seconds(self) -> dict[int, float]:
        """Per-class mean waiting time from first request to admission."""
        return {
            c: (
                self.waiting_seconds_sum[c] / self.admitted[c]
                if self.admitted[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def admission_rate_percent(self) -> dict[int, float]:
        """Final per-class cumulative admission rate (Figure 5 endpoint)."""
        return {
            c: (
                100.0 * self.admitted[c] / self.first_requests[c]
                if self.first_requests[c]
                else float("nan")
            )
            for c in self.ladder.classes
        }

    def final_capacity(self) -> float:
        """Last Figure-4 sample (sessions)."""
        return self.capacity_series[-1].value if self.capacity_series else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly dump of every counter and series."""

        def dump_series(series: list[SeriesPoint]) -> list[tuple[float, float]]:
            return [(point.hour, point.value) for point in series]

        return {
            "first_requests": dict(self.first_requests),
            "requests": dict(self.requests),
            "rejections": dict(self.rejections),
            "admitted": dict(self.admitted),
            "reminders_left": dict(self.reminders_left),
            "supplier_departures": dict(self.supplier_departures),
            "supplier_rejoins": dict(self.supplier_rejoins),
            "mean_rejections_before_admission": self.mean_rejections_before_admission(),
            "mean_buffering_delay_slots": self.mean_buffering_delay_slots(),
            "mean_waiting_seconds": self.mean_waiting_seconds(),
            "admission_rate_percent": self.admission_rate_percent(),
            "capacity_series": dump_series(self.capacity_series),
            "capacity_fractional_series": dump_series(self.capacity_fractional_series),
            "supplier_count_series": dump_series(self.supplier_count_series),
            "admission_rate_series": {
                c: dump_series(s) for c, s in self.admission_rate_series.items()
            },
            "overall_admission_rate_series": dump_series(
                self.overall_admission_rate_series
            ),
            "buffering_delay_series": {
                c: dump_series(s) for c, s in self.buffering_delay_series.items()
            },
            "favored_series": {
                c: dump_series(s) for c, s in self.favored_series.items()
            },
        }
