"""First-request arrival patterns (paper Section 5.1).

The paper drives its evaluation with four arrival patterns of first-time
streaming requests, all contained in the first 72 hours of the run:

* **Pattern 1** — constant arrivals;
* **Pattern 2** — gradually increasing, then gradually decreasing arrivals
  (a symmetric triangle peaking mid-window);
* **Pattern 3** — a burst followed by lower, constant arrivals;
* **Pattern 4** — periodic bursts with a low constant floor between them.

The exact constants lived in the authors' technical report [13], which is
not available; the densities below are this reproduction's reconstruction
(shape and relative magnitudes from the paper's prose and figures).
Each pattern is expressed as a *normalized rate density* over the arrival
window (integrating to 1), from which we generate the ``n`` arrival times
either

* **deterministically** — arrival ``i`` at the ``(i + 0.5)/n`` quantile of
  the cumulative density (smooth, exactly reproducible), or
* **stochastically** — an inhomogeneous Poisson process via thinning with a
  seeded RNG.

Both modes produce exactly ``n`` arrivals inside the window.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalPattern",
    "make_pattern",
    "generate_arrival_times",
    "PATTERN_DESCRIPTIONS",
]

PATTERN_DESCRIPTIONS = {
    1: "constant arrivals",
    2: "gradually increasing then decreasing (triangle)",
    3: "initial burst then lower constant arrivals",
    4: "periodic bursts over a low constant floor",
}


@dataclass(frozen=True)
class ArrivalPattern:
    """A normalized arrival-rate shape over ``[0, window_seconds)``.

    ``density(t)`` integrates to 1 over the window; ``cumulative(t)`` is its
    integral (0 at the window start, 1 at its end).  Both are piecewise
    closed forms per pattern.
    """

    pattern_id: int
    window_seconds: float
    density: Callable[[float], float]
    cumulative: Callable[[float], float]
    peak_density: float
    #: optional fast path for deterministic generation: the factory inlines
    #: its cumulative form into the bisection loop (same arithmetic, same
    #: op order — bit-identical to ``quantile``, minus 60 closure calls per
    #: arrival).  ``generate_arrival_times`` uses it when present.
    deterministic_times: Callable[[int], list[float]] | None = None

    def rate_per_second(self, t: float, total_arrivals: int) -> float:
        """Instantaneous arrival rate at ``t`` for ``total_arrivals`` peers."""
        return total_arrivals * self.density(t)

    def quantile(self, fraction: float) -> float:
        """Inverse of :meth:`cumulative` by bisection (densities are >= 0).

        Deterministic arrival generation evaluates this once per peer —
        100k times for the population-scale scenarios — so the cumulative
        callable is bound locally for the 60-iteration loop.  The
        arithmetic is unchanged: results stay bit-identical.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0,1], got {fraction}")
        cumulative = self.cumulative
        lo, hi = 0.0, self.window_seconds
        for _ in range(60):  # ~1e-18 relative precision; plenty for seconds
            mid = (lo + hi) / 2.0
            if cumulative(mid) < fraction:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0


def _constant_pattern(window: float) -> ArrivalPattern:
    """Pattern 1: uniform density ``1/W``."""
    rate = 1.0 / window

    def deterministic_times(n: int) -> list[float]:
        # quantile() with cumulative() inlined; identical arithmetic
        times = [0.0] * n
        for i in range(n):
            fraction = (i + 0.5) / n
            lo, hi = 0.0, window
            for _ in range(60):
                mid = (lo + hi) / 2.0
                if min(max(mid / window, 0.0), 1.0) < fraction:
                    lo = mid
                else:
                    hi = mid
            times[i] = (lo + hi) / 2.0
        return times

    return ArrivalPattern(
        pattern_id=1,
        window_seconds=window,
        density=lambda t: rate if 0 <= t < window else 0.0,
        cumulative=lambda t: min(max(t / window, 0.0), 1.0),
        peak_density=rate,
        deterministic_times=deterministic_times,
    )


def _triangle_pattern(window: float) -> ArrivalPattern:
    """Pattern 2: symmetric triangle peaking at ``W/2`` with height ``2/W``."""
    half = window / 2.0
    peak = 2.0 / window

    def density(t: float) -> float:
        if t < 0 or t >= window:
            return 0.0
        if t <= half:
            return peak * t / half
        return peak * (window - t) / half

    def cumulative(t: float) -> float:
        if t <= 0:
            return 0.0
        if t >= window:
            return 1.0
        if t <= half:
            return 0.5 * (t / half) ** 2
        remaining = (window - t) / half
        return 1.0 - 0.5 * remaining**2

    def deterministic_times(n: int) -> list[float]:
        # quantile() with cumulative() inlined; identical arithmetic
        times = [0.0] * n
        for i in range(n):
            fraction = (i + 0.5) / n
            lo, hi = 0.0, window
            for _ in range(60):
                mid = (lo + hi) / 2.0
                if mid <= 0:
                    c = 0.0
                elif mid >= window:
                    c = 1.0
                elif mid <= half:
                    c = 0.5 * (mid / half) ** 2
                else:
                    remaining = (window - mid) / half
                    c = 1.0 - 0.5 * remaining**2
                if c < fraction:
                    lo = mid
                else:
                    hi = mid
            times[i] = (lo + hi) / 2.0
        return times

    return ArrivalPattern(2, window, density, cumulative, peak, deterministic_times)


def _burst_then_constant_pattern(
    window: float, burst_fraction: float = 0.40, burst_share: float = 1.0 / 12.0
) -> ArrivalPattern:
    """Pattern 3: ``burst_fraction`` of arrivals inside the first
    ``burst_share`` of the window, the rest constant after it."""
    burst_end = window * burst_share
    burst_rate = burst_fraction / burst_end
    tail_rate = (1.0 - burst_fraction) / (window - burst_end)

    def density(t: float) -> float:
        if t < 0 or t >= window:
            return 0.0
        return burst_rate if t < burst_end else tail_rate

    def cumulative(t: float) -> float:
        if t <= 0:
            return 0.0
        if t >= window:
            return 1.0
        if t < burst_end:
            return burst_rate * t
        return burst_fraction + tail_rate * (t - burst_end)

    def deterministic_times(n: int) -> list[float]:
        # quantile() with cumulative() inlined; identical arithmetic
        times = [0.0] * n
        for i in range(n):
            fraction = (i + 0.5) / n
            lo, hi = 0.0, window
            for _ in range(60):
                mid = (lo + hi) / 2.0
                if mid <= 0:
                    c = 0.0
                elif mid >= window:
                    c = 1.0
                elif mid < burst_end:
                    c = burst_rate * mid
                else:
                    c = burst_fraction + tail_rate * (mid - burst_end)
                if c < fraction:
                    lo = mid
                else:
                    hi = mid
            times[i] = (lo + hi) / 2.0
        return times

    return ArrivalPattern(3, window, density, cumulative, burst_rate, deterministic_times)


def _periodic_bursts_pattern(
    window: float,
    num_bursts: int = 6,
    burst_duration_fraction: float = 1.0 / 36.0,
    burst_total_fraction: float = 0.60,
) -> ArrivalPattern:
    """Pattern 4: ``num_bursts`` evenly spaced bursts over a constant floor.

    With the 72-hour paper window the defaults give 2-hour bursts starting
    every 12 hours (t = 0, 12, …, 60 h) carrying 60 % of all arrivals, and a
    constant floor carrying the remaining 40 %.
    """
    burst_len = window * burst_duration_fraction
    spacing = window / num_bursts
    if burst_len >= spacing:
        raise ConfigurationError("bursts overlap; reduce duration or count")
    floor_rate = (1.0 - burst_total_fraction) / window
    burst_rate = burst_total_fraction / (num_bursts * burst_len)
    burst_starts = [k * spacing for k in range(num_bursts)]

    def density(t: float) -> float:
        if t < 0 or t >= window:
            return 0.0
        offset = t % spacing
        return floor_rate + (burst_rate if offset < burst_len else 0.0)

    def cumulative(t: float) -> float:
        if t <= 0:
            return 0.0
        if t >= window:
            return 1.0
        full, offset = divmod(t, spacing)
        burst_mass_per = burst_total_fraction / num_bursts
        mass = full * burst_mass_per + floor_rate * (full * spacing)
        mass += floor_rate * offset
        mass += burst_rate * min(offset, burst_len)
        return mass

    def deterministic_times(n: int) -> list[float]:
        # quantile() with cumulative() inlined; identical arithmetic
        # (burst_mass_per is a hoisted constant subexpression)
        burst_mass_per = burst_total_fraction / num_bursts
        times = [0.0] * n
        for i in range(n):
            fraction = (i + 0.5) / n
            lo, hi = 0.0, window
            for _ in range(60):
                mid = (lo + hi) / 2.0
                if mid <= 0:
                    c = 0.0
                elif mid >= window:
                    c = 1.0
                else:
                    full, offset = divmod(mid, spacing)
                    c = full * burst_mass_per + floor_rate * (full * spacing)
                    c += floor_rate * offset
                    c += burst_rate * min(offset, burst_len)
                if c < fraction:
                    lo = mid
                else:
                    hi = mid
            times[i] = (lo + hi) / 2.0
        return times

    return ArrivalPattern(
        4, window, density, cumulative, floor_rate + burst_rate, deterministic_times
    )


_FACTORIES: dict[int, Callable[[float], ArrivalPattern]] = {
    1: _constant_pattern,
    2: _triangle_pattern,
    3: _burst_then_constant_pattern,
    4: _periodic_bursts_pattern,
}


def make_pattern(pattern_id: int, window_seconds: float) -> ArrivalPattern:
    """Build arrival pattern ``pattern_id`` (1–4) over ``window_seconds``."""
    if pattern_id not in _FACTORIES:
        raise ConfigurationError(f"unknown arrival pattern {pattern_id}")
    if window_seconds <= 0:
        raise ConfigurationError(f"window must be > 0, got {window_seconds}")
    return _FACTORIES[pattern_id](window_seconds)


def generate_arrival_times(
    pattern: ArrivalPattern,
    total_arrivals: int,
    deterministic: bool = True,
    rng: random.Random | None = None,
) -> list[float]:
    """Arrival times of ``total_arrivals`` first requests under ``pattern``.

    Deterministic mode places arrival ``i`` at the ``(i + 0.5)/n`` quantile
    of the cumulative density.  Stochastic mode runs an inhomogeneous
    Poisson thinning sweep and then resamples to exactly ``n`` points (the
    paper fixes the *number* of peers, not the rate).
    """
    if total_arrivals < 0:
        raise ConfigurationError(f"total_arrivals must be >= 0, got {total_arrivals}")
    if total_arrivals == 0:
        return []
    if deterministic:
        if pattern.deterministic_times is not None:
            return pattern.deterministic_times(total_arrivals)
        return [
            pattern.quantile((i + 0.5) / total_arrivals) for i in range(total_arrivals)
        ]

    if rng is None:
        raise ConfigurationError("stochastic arrival generation needs an RNG")
    # Thinning against the peak density, oversampling then trimming/padding
    # to exactly ``total_arrivals`` draws.
    times: list[float] = []
    max_rate = pattern.peak_density * total_arrivals
    t = 0.0
    while t < pattern.window_seconds:
        t += rng.expovariate(max_rate)
        if t >= pattern.window_seconds:
            break
        if rng.random() * max_rate <= pattern.rate_per_second(t, total_arrivals):
            times.append(t)
    while len(times) < total_arrivals:  # pad by inverse-CDF draws
        times.append(pattern.quantile(rng.random()))
    times.sort()
    if len(times) > total_arrivals:  # trim uniformly, preserving the shape
        step = len(times) / total_arrivals
        times = [times[int(i * step)] for i in range(total_arrivals)]
    return times


def arrivals_per_bin(
    times: list[float], bin_seconds: float, horizon_seconds: float
) -> list[int]:
    """Histogram of arrival times — used by tests and ASCII plots."""
    if bin_seconds <= 0:
        raise ConfigurationError(f"bin width must be > 0, got {bin_seconds}")
    num_bins = math.ceil(horizon_seconds / bin_seconds)
    counts = [0] * num_bins
    for t in times:
        index = min(int(t / bin_seconds), num_bins - 1)
        counts[index] += 1
    return counts
