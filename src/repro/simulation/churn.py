"""Peer availability (churn) models.

The paper's admission procedure skips candidates that are "down", but its
evaluation does not describe peers leaving — so the default model is
:class:`NoChurn`.  Two richer models support the robustness experiments in
the benchmark suite:

* :class:`BernoulliChurn` — each probe independently finds the candidate
  down with probability ``p``; memoryless and cheap, good for sensitivity
  sweeps.
* :class:`OnOffChurn` — each peer alternates exponentially-distributed up
  and down periods on a private, deterministic timeline (lazily extended),
  which gives *time-correlated* unavailability: a peer that was down a
  second ago is probably still down.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = ["AvailabilityModel", "NoChurn", "BernoulliChurn", "OnOffChurn"]


class AvailabilityModel(Protocol):
    """Answers: is this peer reachable right now?"""

    def is_down(self, peer_id: int, now: float, rng: random.Random) -> bool:
        """True when a probe of ``peer_id`` at time ``now`` finds it down."""
        ...


@dataclass(frozen=True)
class NoChurn:
    """Every peer is always up — the paper's implicit model."""

    def is_down(self, peer_id: int, now: float, rng: random.Random) -> bool:
        """Never down."""
        return False


@dataclass(frozen=True)
class BernoulliChurn:
    """Independent per-probe unavailability with probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p < 1.0:
            raise ConfigurationError(f"down probability must be in [0,1), got {self.p}")

    def is_down(self, peer_id: int, now: float, rng: random.Random) -> bool:
        """Down with probability ``p``, independently per probe."""
        return self.p > 0.0 and rng.random() < self.p


class OnOffChurn:
    """Alternating exponential up/down periods, deterministic per peer.

    Each peer's timeline is generated from a private RNG seeded by
    ``(seed, peer_id)``; timelines extend lazily as queries move forward in
    time, so memory stays proportional to the number of peers ever probed.
    Peers start up with probability ``mean_up / (mean_up + mean_down)`` (the
    stationary distribution).
    """

    def __init__(self, mean_up_seconds: float, mean_down_seconds: float, seed: int = 0):
        if mean_up_seconds <= 0 or mean_down_seconds <= 0:
            raise ConfigurationError("mean up/down durations must be > 0")
        self.mean_up = mean_up_seconds
        self.mean_down = mean_down_seconds
        self.seed = seed
        # peer_id -> (rng, boundary times list, state of first interval)
        self._timelines: dict[int, tuple[random.Random, list[float], bool]] = {}

    def _timeline(self, peer_id: int) -> tuple[random.Random, list[float], bool]:
        if peer_id not in self._timelines:
            rng = random.Random(f"churn:{self.seed}:{peer_id}")
            availability = self.mean_up / (self.mean_up + self.mean_down)
            starts_up = rng.random() < availability
            self._timelines[peer_id] = (rng, [0.0], starts_up)
        return self._timelines[peer_id]

    def is_down(self, peer_id: int, now: float, rng: random.Random) -> bool:
        """Whether ``peer_id``'s on/off timeline has it down at ``now``."""
        down, _boundary = self.next_transition(peer_id, now)
        return down

    def next_transition(self, peer_id: int, now: float) -> tuple[bool, float]:
        """State at ``now`` plus the time of the next up/down flip.

        Returns ``(is_down_now, boundary)`` where ``boundary > now`` is
        the end of the interval containing ``now``.  This is what lets
        :class:`~repro.simulation.lifecycle.OnOffLifecycle` turn the same
        timeline that :meth:`is_down` samples at probe time into
        kernel-scheduled departure/return events.  Extending the timeline
        consumes exactly the draws :meth:`is_down` would, so mixing the
        two access patterns never perturbs a peer's timeline.
        """
        peer_rng, boundaries, starts_up = self._timeline(peer_id)
        while boundaries[-1] <= now:
            intervals_so_far = len(boundaries) - 1
            currently_up = starts_up if intervals_so_far % 2 == 0 else not starts_up
            mean = self.mean_up if currently_up else self.mean_down
            boundaries.append(boundaries[-1] + peer_rng.expovariate(1.0 / mean))
        # index of the interval containing ``now`` (its boundary is next)
        index = bisect.bisect_right(boundaries, now) - 1
        up_now = starts_up if index % 2 == 0 else not starts_up
        return not up_now, boundaries[index + 1]
