"""Discrete-event simulation substrate reproducing the paper's evaluation.

The paper's Section 5 evaluates DAC_p2p against NDAC_p2p on a 50,100-peer
simulated system over 144 hours.  This package is that simulator:

* :mod:`repro.simulation.engine` — the event queue and clock;
* :mod:`repro.simulation.randoms` — named, independently-seeded RNG streams;
* :mod:`repro.simulation.config` — :class:`SimulationConfig` with the
  paper's defaults;
* :mod:`repro.simulation.arrivals` — the four first-request arrival patterns;
* :mod:`repro.simulation.churn` — optional peer up/down availability;
* :mod:`repro.simulation.entities` — per-peer simulation state;
* :mod:`repro.simulation.registry` — the supplier population (joins,
  churn, idle-elevation timers);
* :mod:`repro.simulation.requestpath` — the requesting peer's protocol
  path (probing, admission, sessions, reminders, backoff);
* :mod:`repro.simulation.samplers` — the periodic metric samplers;
* :mod:`repro.simulation.system` — the facade wiring the three
  subsystems over the shared substrates;
* :mod:`repro.simulation.metrics` — every collector behind Figures 4–9 and
  Table 1;
* :mod:`repro.simulation.runner` — one-call experiment execution;
* :mod:`repro.simulation.trace` — optional structured event traces.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.registry import SupplierRegistry
from repro.simulation.requestpath import RequestPath
from repro.simulation.runner import (
    SimulationResult,
    compare_protocols,
    run_simulation,
    sweep_parameter,
)
from repro.simulation.samplers import Samplers
from repro.simulation.system import StreamingSystem

__all__ = [
    "SimulationConfig",
    "Simulator",
    "StreamingSystem",
    "SupplierRegistry",
    "RequestPath",
    "Samplers",
    "SimulationResult",
    "run_simulation",
    "compare_protocols",
    "sweep_parameter",
]
