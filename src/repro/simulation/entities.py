"""Per-peer simulation state.

A :class:`SimPeer` is the mutable simulation record of one peer: identity
and class (immutable), its current role, its admission-control state once it
becomes a supplier, and the request/rejection bookkeeping that the metrics
layer turns into Table 1 and Figures 5–6.

``__slots__`` keeps the 50,100-peer population compact and attribute access
fast — the request-handling path touches these objects millions of times in
a full-scale run.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.core.model import PeerRole
from repro.errors import SimulationError
from repro.protocols.base import SupplierStateLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.config import SimulationConfig

__all__ = ["SimPeer", "build_population"]


class SimPeer:
    """Simulation state of one peer."""

    __slots__ = (
        "peer_id",
        "peer_class",
        "is_seed",
        "role",
        "admission",
        "rejections",
        "first_request_time",
        "admitted_time",
        "buffering_delay_slots",
        "num_suppliers_served_by",
        "idle_timer_generation",
        "sessions_served",
        "departed",
        "departures",
    )

    def __init__(self, peer_id: int, peer_class: int, is_seed: bool = False) -> None:
        self.peer_id = peer_id
        self.peer_class = peer_class
        self.is_seed = is_seed
        self.role = PeerRole.SUPPLYING if is_seed else PeerRole.REQUESTING
        #: admission-control state; None until the peer becomes a supplier
        self.admission: SupplierStateLike | None = None
        #: rejections suffered so far (drives backoff and Table 1)
        self.rejections = 0
        #: when the peer made its *first* streaming request
        self.first_request_time: float | None = None
        #: when the peer was admitted (None until then)
        self.admitted_time: float | None = None
        #: buffering delay of its (single) session, in slots
        self.buffering_delay_slots: int | None = None
        #: how many suppliers served its session
        self.num_suppliers_served_by: int | None = None
        #: generation counter invalidating stale idle-timeout events
        self.idle_timer_generation = 0
        #: number of sessions this peer has served as a supplier
        self.sessions_served = 0
        #: whether the (supplier) peer is currently departed from the system
        self.departed = False
        #: how many times this supplier has departed (churn experiments)
        self.departures = 0

    # ------------------------------------------------------------------
    @property
    def is_supplier(self) -> bool:
        """Whether the peer has ever become a supplying peer."""
        return self.role is PeerRole.SUPPLYING

    @property
    def is_active_supplier(self) -> bool:
        """Whether the peer is in the supplier population *right now*."""
        return self.role is PeerRole.SUPPLYING and not self.departed

    @property
    def waiting_time(self) -> float | None:
        """Time from first request to admission (None while waiting)."""
        if self.admitted_time is None or self.first_request_time is None:
            return None
        return self.admitted_time - self.first_request_time

    def promote(self, admission_state: SupplierStateLike) -> None:
        """Turn the peer into a supplying peer with the given state."""
        if self.is_supplier:
            raise SimulationError(f"peer {self.peer_id} is already a supplier")
        self.role = PeerRole.SUPPLYING
        self.admission = admission_state

    def bump_idle_generation(self) -> int:
        """Invalidate outstanding idle timers; returns the new generation."""
        self.idle_timer_generation += 1
        return self.idle_timer_generation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimPeer(id={self.peer_id}, class={self.peer_class}, "
            f"role={self.role.value}, rejections={self.rejections})"
        )


def build_population(
    config: "SimulationConfig", population_rng: random.Random
) -> tuple[list[SimPeer], list[SimPeer]]:
    """Create seed suppliers then requesting peers, ids 0..n-1.

    Requester class labels are shuffled so every arrival pattern sees the
    same class mix at every point in time (the paper's populations are not
    class-ordered in time).  Returns ``(all peers, requesting peers)``.
    """
    peers: list[SimPeer] = []
    for peer_class in sorted(config.seed_suppliers):
        for _ in range(config.seed_suppliers[peer_class]):
            peers.append(SimPeer(len(peers), peer_class, is_seed=True))

    labels: list[int] = []
    for peer_class in sorted(config.requesting_peers):
        labels.extend([peer_class] * config.requesting_peers[peer_class])
    population_rng.shuffle(labels)
    requesters: list[SimPeer] = []
    for peer_class in labels:
        peer = SimPeer(len(peers), peer_class, is_seed=False)
        peers.append(peer)
        requesters.append(peer)
    return peers, requesters
