"""Array-backed execution engine (``SimulationConfig(engine="array")``).

A drop-in replacement for the object engine
(:class:`~repro.simulation.system.StreamingSystem`) that runs the same
simulation over the struct-of-arrays columns of
:mod:`repro.simulation.arraystate` instead of per-peer Python objects.
It exists for one reason: population scale.  The object engine's hot loop
is dominated by attribute-dict hops (peer → admission state → vector →
probability list) and per-event closure scheduling; at 100k+ peers that
caps throughput far below what the paper's million-user experiments need.
The array engine keeps *peer state* as flat columns, *admission vectors*
as single signed integers, and *events* as ``(time, seq, kind, payload)``
tuples on one C-backed heap — no handles, no closures, no per-peer
objects.

Parity contract
---------------
The array engine is **metric-identical** to the object engine for every
configuration it accepts: same metrics payload, same event count, same
message statistics, same trace records.  This is achieved by mirroring,
not approximating:

* every RNG draw happens on the same named stream in the same order
  (candidate sampling even calls the *same* ``random.sample`` /
  ``random.shuffle`` the directory would, on the directory's own live
  entry list);
* every ``schedule_at`` call site is mirrored by a sequence-number
  allocation, so simultaneous events keep the object engine's exact FIFO
  order;
* requester arrivals — the single biggest event block — never touch the
  heap at all: they are a pre-sorted lane merged into dispatch by
  ``(time, seq)``, and for the deterministic patterns with vectorizable
  quantiles the times themselves are computed by
  :func:`~repro.simulation.arraystate.vectorized_arrival_times` in one
  numpy sweep.

The parity pins live in ``tests/simulation/test_arrayengine.py`` and run
in CI next to the kernel-parity step; because results are identical by
contract, ``engine`` is excluded from spec hashes (see
:func:`~repro.orchestration.runspec.config_hash`) and the ``kernel``
field is ignored — the engine has its own dispatch core.

Representable policies
----------------------
Collapsing an admission vector to one integer level ``L``
(``Pa[j] = min(1, 2**(L-j))``) is exact for the policies whose reachable
vectors all have that shape — initialization (all-ones through a class),
relax (doubling ⇒ ``L+1``) and tighten (re-init at the reminder class)
preserve it.  ``dac-linear-elevation`` adds ``0.125`` per elevation step,
leaving the power-of-two lattice, so this engine refuses it
(:class:`~repro.errors.ConfigurationError`); use the object engine there.

Everything that is *not* per-peer or per-event hot state is reused from
the object engine unchanged: :class:`MetricsCollector`,
:class:`CapacityLedger`, :class:`Transport`, the lookup substrates, the
lifecycle models, ``plan_session`` and the backoff/reminder math.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from math import ceil, log

from repro.core.capacity import CapacityLedger
from repro.core.model import SupplierOffer
from repro.core.requesting import backoff_delay
from repro.errors import ConfigurationError, SimulationError
from repro.network.lookup import ChordLookup, DirectoryLookup
from repro.network.transport import Transport
from repro.protocols.base import make_policy
from repro.simulation.arrivals import generate_arrival_times, make_pattern
from repro.simulation.arraystate import (
    VECTORIZABLE_PATTERNS,
    PeerArrays,
    SessionTable,
    vectorized_arrival_times,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.lifecycle import make_lifecycle
from repro.simulation.metrics import MetricsCollector
from repro.simulation.probes import DEFAULT_PROBES
from repro.simulation.randoms import RandomStreams
from repro.simulation.trace import TraceRecorder
from repro.streaming.session import plan_session

__all__ = ["ArrayEngine", "LEVEL_POLICIES"]

#: Admission policies whose vectors the integer ``level`` column represents
#: exactly, mapped to their initial level: the supplier's ``"own"`` class
#: (paper rule (a)) or ``"all"`` classes favored from the start.
LEVEL_POLICIES: dict[str, str] = {
    "dac": "own",
    "dac-no-reminder": "own",
    "dac-no-elevation": "own",
    "dac-generous-init": "all",
    "ndac": "all",
}

# Event kinds, ordered roughly by dispatch frequency.  Payloads are plain
# ints or small tuples — never objects with identity the loop relies on.
_REQUEST = 0          # retry request; payload: peer id
_SESSION_END = 1      # untracked session end; payload: (requester, [suppliers])
_IDLE_TIMEOUT = 2     # T_out elevation; payload: (peer id, idle generation)
_TRACKED_END = 3      # lifecycle session end; payload: (slot, slot generation)
_RECOVERY = 4         # recovery probe; payload: slot
_LC_DEPARTURE = 5     # lifecycle (abrupt) departure; payload: peer id
_LC_RETURN = 6        # lifecycle return; payload: peer id
_DEPARTURE = 7        # graceful churn departure; payload: peer id
_REJOIN = 8           # graceful churn rejoin; payload: peer id
_SAMPLE_CAPACITY = 9
_SAMPLE_RATES = 10
_SAMPLE_FAVORED = 11


class ArrayEngine:
    """One simulation run over struct-of-arrays state.

    Construction mirrors ``StreamingSystem.__init__`` step for step —
    the wiring order fixes RNG draws and initial sequence numbers, and is
    therefore part of the parity contract.  :meth:`run` executes the
    event loop and returns the shared :class:`MetricsCollector`.

    ``__slots__`` because every event handler reads several engine
    attributes: slot access skips the instance-dict probe, which is
    measurable over millions of events.
    """

    __slots__ = (
        "config",
        "trace",
        "ladder",
        "media",
        "policy",
        "now",
        "events_processed",
        "streams",
        "metrics",
        "ledger",
        "transport",
        "lookup",
        "peers",
        "sessions",
        "_seq",
        "_heap",
        "_horizon",
        "_num_classes",
        "_full_rate_units",
        "_offer_units",
        "_init_level",
        "_media_id",
        "_show_seconds",
        "_probe_count",
        "_uses_reminders",
        "_uses_idle_elevation",
        "_t_out",
        "_t_bkf",
        "_e_bkf",
        "_churn_active",
        "_p_down",
        "_mean_online",
        "_mean_offline",
        "_suppliers_rejoin",
        "_admission_random",
        "_churn_rng",
        "_lookup_rng",
        "_lookup_getrandbits",
        "_sample_setsize",
        "_sample_selected",
        "_pow_half",
        "_delay_slots_by_classes",
        "_backoff_by_rejections",
        "_num_seeds",
        "_suppliers_by_class",
        "_dir_entries",
        "_lifecycle_enabled",
        "_lifecycle_model",
        "_lifecycle_rejoin",
        "_recovery",
        "_sessions_by_supplier",
        "_arrival_times",
        "_arrival_base_seq",
        "_arrival_index",
        "_capacity_period",
        "_rate_period",
        "_favored_period",
        "_handlers",
    )

    def __init__(
        self, config: SimulationConfig, trace: TraceRecorder | None = None
    ) -> None:
        init_mode = LEVEL_POLICIES.get(config.protocol)
        if init_mode is None:
            raise ConfigurationError(
                f"policy {config.protocol!r} is not representable by the "
                f"array engine's integer admission levels; use "
                f'engine="object" (level-representable policies: '
                f"{', '.join(sorted(LEVEL_POLICIES))})"
            )
        self.config = config
        self.trace = trace
        ladder = config.ladder
        media = config.media
        self.ladder = ladder
        self.media = media
        policy = make_policy(config.protocol)
        self.policy = policy

        # --- clock, sequence numbers, event heap -----------------------
        self.now = 0.0
        self.events_processed = 0
        self._seq = 0
        self._heap: list[tuple[float, int, int, object]] = []
        self._horizon = config.horizon_seconds

        # --- shared measurement/substrate objects (identical to the
        # object engine's) ----------------------------------------------
        self.streams = RandomStreams(config.master_seed)
        probes = config.probes
        if config.lifecycle != "none" and probes is None:
            probes = DEFAULT_PROBES + ("continuity",)
        self.metrics = MetricsCollector(ladder, probes=probes)
        self.ledger = CapacityLedger(ladder)
        self.transport = Transport() if config.track_messages else None

        # --- resolved per-event constants ------------------------------
        self._num_classes = ladder.num_classes
        self._full_rate_units = ladder.full_rate_units
        # offer units by class, index = class id (index 0 unused)
        self._offer_units = [0] * (self._num_classes + 1)
        for c in ladder.classes:
            self._offer_units[c] = ladder.offer_units(c)
        self._init_level = [0] * (self._num_classes + 1)
        for c in ladder.classes:
            self._init_level[c] = self._num_classes if init_mode == "all" else c
        self._media_id = media.media_id
        self._show_seconds = media.show_seconds
        self._probe_count = config.probe_candidates
        self._uses_reminders = policy.uses_reminders
        self._uses_idle_elevation = policy.uses_idle_elevation
        self._t_out = config.t_out_seconds
        self._t_bkf = config.t_bkf_seconds
        self._e_bkf = config.e_bkf
        self._churn_active = config.down_probability > 0.0
        self._p_down = config.down_probability
        self._mean_online = config.supplier_mean_online_seconds
        self._mean_offline = config.supplier_mean_offline_seconds
        self._suppliers_rejoin = config.suppliers_rejoin
        self._admission_random = self.streams.admission.random
        self._churn_rng = self.streams.churn
        self._lookup_rng = self.streams.lookup
        # inline clone of random.sample's draw loop (same algorithm, same
        # getrandbits draws, minus the stdlib's per-call validation and
        # function dispatch): the set-vs-pool threshold depends only on k,
        # so hoist it here
        self._lookup_getrandbits = self._lookup_rng.getrandbits
        k = self._probe_count
        self._sample_setsize = 21 + (4 ** ceil(log(k * 3, 4)) if k > 5 else 0)
        self._sample_selected: set[int] = set()
        # 0.5 ** d by class distance d — the exact floats the object
        # engine's admission vectors store
        self._pow_half = [0.5**d for d in range(self._num_classes + 1)]
        self._delay_slots_by_classes: dict[tuple[int, ...], int] = {}
        self._backoff_by_rejections: dict[int, float] = {}

        # --- population columns (mirrors entities.build_population) ----
        classes: list[int] = []
        for peer_class in sorted(config.seed_suppliers):
            classes.extend([peer_class] * config.seed_suppliers[peer_class])
        num_seeds = len(classes)
        labels: list[int] = []
        for peer_class in sorted(config.requesting_peers):
            labels.extend([peer_class] * config.requesting_peers[peer_class])
        self.streams.population.shuffle(labels)
        classes.extend(labels)
        self._num_seeds = num_seeds
        self.peers = PeerArrays(classes)
        self._suppliers_by_class: dict[int, list[int]] = {
            c: [] for c in ladder.classes
        }

        # --- lookup substrate ------------------------------------------
        if config.lookup == "chord":
            self.lookup = ChordLookup(
                list(range(num_seeds)), transport=self.transport
            )
            self._dir_entries: list[int] | None = None
        else:
            self.lookup = DirectoryLookup(transport=self.transport)
            # the directory's own live id array: sampling from it with the
            # lookup stream reproduces sample_candidates draw for draw
            self._dir_entries = self.lookup.directory.live_entries(
                self._media_id
            )

        # --- lifecycle dynamics (attached before seed registration) ----
        self._lifecycle_enabled = config.lifecycle != "none"
        if self._lifecycle_enabled:
            self._lifecycle_model = make_lifecycle(config)
            self._lifecycle_rejoin = config.lifecycle_rejoin
            self._recovery = config.lifecycle_recovery
        self.sessions = SessionTable()
        self._sessions_by_supplier: dict[int, list[int]] = {}

        # --- seed suppliers, arrivals, samplers (this order fixes the
        # initial sequence numbers — same as StreamingSystem) ------------
        level = self.peers.level
        init_level = self._init_level
        for pid in range(num_seeds):
            level[pid] = init_level[classes[pid]]
            self._register(pid)

        requesters = len(classes) - num_seeds
        if config.deterministic_arrivals and (
            config.arrival_pattern in VECTORIZABLE_PATTERNS
        ):
            make_pattern(  # keep the object path's validation errors
                config.arrival_pattern, config.arrival_window_seconds
            )
            times = vectorized_arrival_times(
                config.arrival_pattern,
                config.arrival_window_seconds,
                requesters,
            )
        else:
            pattern = make_pattern(
                config.arrival_pattern, config.arrival_window_seconds
            )
            times = generate_arrival_times(
                pattern,
                requesters,
                deterministic=config.deterministic_arrivals,
                rng=self.streams.arrivals,
            )
        # arrival i (peer num_seeds + i) carries sequence base + i; the
        # run loop merges this lane against the heap by (time, seq)
        self._arrival_times = times
        self._arrival_base_seq = self._seq + 1
        self._seq += requesters
        self._arrival_index = 0

        self._capacity_period = config.capacity_sample_seconds
        self._rate_period = config.rate_sample_seconds
        self._favored_period = config.favored_snapshot_seconds
        if self.metrics.wants_capacity_samples:
            self._sample_capacity(None)
        if self.metrics.wants_rate_samples:
            self._sample_rates(None)
        if self.metrics.wants_favored_samples:
            self._sample_favored(None)

        self._handlers = [
            self._on_request,
            self._on_session_end,
            self._on_idle_timeout,
            self._on_tracked_session_end,
            self._attempt_recovery,
            self._on_lifecycle_departure,
            self._on_lifecycle_return,
            self._on_departure,
            self._on_rejoin,
            self._sample_capacity,
            self._sample_rates,
            self._sample_favored,
        ]

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: int, payload: object) -> None:
        """Allocate the next sequence number; enqueue if within horizon.

        Events past the horizon would never be dispatched (the object
        engine leaves them pending forever), so they are not stored — but
        their sequence number is still consumed, keeping all later
        allocations aligned with the object engine's.
        """
        self._seq += 1
        if time <= self._horizon:
            heappush(self._heap, (time, self._seq, kind, payload))

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self) -> MetricsCollector:
        """Dispatch every event through the horizon; returns the metrics."""
        heap = self._heap
        times = self._arrival_times
        total_arrivals = len(times)
        base_seq = self._arrival_base_seq
        num_seeds = self._num_seeds
        horizon = self._horizon

        # the loop allocates only small tuples that die young or park on
        # the heap; cycle collection can only stall it, so pause the
        # collector for the duration (restored even on handler errors)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            self._dispatch_all(
                heap, times, total_arrivals, base_seq, num_seeds, horizon
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        if self.now < horizon:
            self.now = horizon
        return self.metrics

    def _dispatch_all(
        self,
        heap: list[tuple[float, int, int, object]],
        times: list[float],
        total_arrivals: int,
        base_seq: int,
        num_seeds: int,
        horizon: float,
    ) -> None:
        """The dispatch loop proper (split out so ``run`` can gate gc)."""
        handlers = self._handlers
        on_request = self._on_request
        generations = self.sessions.generation
        events = self.events_processed
        i = self._arrival_index

        while True:
            if i < total_arrivals:
                arrival_at = times[i]
                if arrival_at > horizon:
                    i = total_arrivals  # sorted: no later arrival fires either
                    continue
                if heap:
                    head = heap[0]
                    if head[0] < arrival_at or (
                        head[0] == arrival_at and head[1] < base_seq + i
                    ):
                        time, _seq, kind, payload = heappop(heap)
                        if kind == _TRACKED_END and (
                            payload[1] != generations[payload[0]]
                        ):
                            continue  # cancelled by interruption
                        self.now = time
                        events += 1
                        handlers[kind](payload)
                        continue
                self.now = arrival_at
                i += 1
                events += 1
                on_request(num_seeds + i - 1)
                continue
            if not heap:
                break
            time, _seq, kind, payload = heappop(heap)
            if kind == _TRACKED_END and payload[1] != generations[payload[0]]:
                continue
            self.now = time
            events += 1
            handlers[kind](payload)

        self._arrival_index = i
        self.events_processed = events

    # ------------------------------------------------------------------
    # the request path (mirrors RequestPath)
    # ------------------------------------------------------------------
    def _on_request(self, pid: int) -> None:
        peers = self.peers
        peer_class = peers.peer_class[pid]
        if peers.first_request_time[pid] is None:
            peers.first_request_time[pid] = self.now
            self.metrics.on_first_request(peer_class)
        else:
            self.metrics.on_retry(peer_class)
        outcome = self._probe_candidates(pid)
        if outcome is None:
            self._reject(pid, 0, None)
            return
        enlisted, contacted_busy, deficit = outcome
        if deficit == 0:
            self._admit(pid, enlisted)
        else:
            self._reject(
                pid, self._full_rate_units - deficit, contacted_busy
            )

    def _probe_candidates(
        self, pid: int
    ) -> tuple[list[int], list[tuple[int, int]] | None, int] | None:
        """The M-candidate probe loop over columns.

        Returns ``(enlisted ids, favoring busy (-units, id) pairs, deficit)``
        or ``None`` when the lookup yields no candidates.  Only *favoring*
        busy contacts are recorded — non-favoring ones can never enter the
        reminder set (``choose_reminder_set`` skips them), so dropping
        them on the floor is observationally identical.  Units are stored
        negated so the reject path's ``choose_reminder_set`` ordering
        (descending units, ascending id) is a plain tuple sort.
        """
        classes = self.peers.peer_class
        entries = self._dir_entries
        transport = self.transport
        if entries is not None:
            # central directory fast path: identical stdlib sampling calls
            # on the directory's own array (DirectoryLookup.candidates →
            # CentralDirectory.sample_candidates), minus the tuple-building
            if transport is not None:
                transport.round_trip(
                    "lookup", pid, DirectoryLookup.DIRECTORY_PEER_ID
                )
            population = len(entries)
            if not population:
                return None
            count = self._probe_count
            if count >= population:
                chosen = list(entries)
                self._lookup_rng.shuffle(chosen)
            elif population <= self._sample_setsize:
                # random.sample's pool path, inlined — with _randbelow's
                # getrandbits rejection loop inlined too (draw-for-draw
                # equal: same bit_length, same rejection rule)
                getrandbits = self._lookup_getrandbits
                pool = list(entries)
                chosen = [0] * count
                for idx in range(count):
                    n = population - idx
                    k = n.bit_length()
                    j = getrandbits(k)
                    while j >= n:
                        j = getrandbits(k)
                    chosen[idx] = pool[j]
                    pool[j] = pool[n - 1]
            else:
                # random.sample's selection-set path, inlined likewise
                # (the scratch set is reused across calls)
                getrandbits = self._lookup_getrandbits
                k = population.bit_length()
                selected = self._sample_selected
                selected.clear()
                selected_add = selected.add
                chosen = [0] * count
                for idx in range(count):
                    j = getrandbits(k)
                    while j >= population or j in selected:
                        j = getrandbits(k)
                    selected_add(j)
                    chosen[idx] = entries[j]
        else:
            candidates = self.lookup.candidates(
                self._media_id, self._probe_count, pid, self._lookup_rng
            )
            if not candidates:
                return None
            chosen = [candidate_id for candidate_id, _ in candidates]
        # stable sort by class keeps the random order within a class
        chosen.sort(key=classes.__getitem__)

        level = self.peers.level
        favored_flag = self.peers.favored_while_busy
        offer_units = self._offer_units
        admission_random = self._admission_random
        pow_half = self._pow_half
        collect_busy = self._uses_reminders
        requester_class = classes[pid]
        deficit = self._full_rate_units
        enlisted: list[int] = []
        contacted_busy: list[tuple[int, int]] | None = (
            [] if collect_busy else None
        )

        if transport is None and not self._churn_active:
            # specialized copy of the probe loop below: the population-scale
            # scenarios disable message tracking and graceful churn, and two
            # per-candidate None-checks are measurable at 100k+ peers
            for candidate in chosen:
                candidate_level = level[candidate]
                if candidate_level < 0:
                    if requester_class <= -candidate_level:
                        favored_flag[candidate] = 1
                        if collect_busy:
                            contacted_busy.append(
                                (-offer_units[classes[candidate]], candidate)
                            )
                    continue
                if candidate_level == 0:
                    raise SimulationError(
                        f"candidate {candidate} has no admission state"
                    )
                if requester_class <= candidate_level or (
                    admission_random()
                    < pow_half[requester_class - candidate_level]
                ):
                    enlisted.append(candidate)
                    deficit -= offer_units[classes[candidate]]
                    if deficit == 0:
                        break
            return enlisted, contacted_busy, deficit

        churn_random = self._churn_rng.random if self._churn_active else None
        p_down = self._p_down
        for candidate in chosen:
            if transport is not None:
                transport.round_trip("probe", pid, candidate)
            if churn_random is not None and churn_random() < p_down:
                continue
            candidate_level = level[candidate]
            if candidate_level < 0:
                # busy: record a favored-class contact (and, for reminder
                # policies, the report the reject path may remind)
                if requester_class <= -candidate_level:
                    favored_flag[candidate] = 1
                    if collect_busy:
                        contacted_busy.append(
                            (-offer_units[classes[candidate]], candidate)
                        )
                continue
            if candidate_level == 0:
                raise SimulationError(
                    f"candidate {candidate} has no admission state"
                )
            # grant test: Pa[rc] = min(1, 2**(level - rc)); the power of
            # two equals the object engine's stored float exactly
            if requester_class <= candidate_level or (
                admission_random() < pow_half[requester_class - candidate_level]
            ):
                enlisted.append(candidate)
                deficit -= offer_units[classes[candidate]]
                if deficit == 0:
                    break
        return enlisted, contacted_busy, deficit

    def _admit(self, pid: int, enlisted: list[int]) -> None:
        peers = self.peers
        delay_slots = self._buffering_delay_slots(enlisted)
        num_suppliers = len(enlisted)
        level = peers.level
        favored_flag = peers.favored_while_busy
        reminder_min = peers.reminder_min_class
        idle_generation = peers.idle_generation
        sessions_served = peers.sessions_served
        transport = self.transport
        now = self.now
        for sid in enlisted:
            # on_session_start: flip idle +L to busy -L, clear bookkeeping
            level[sid] = -level[sid]
            favored_flag[sid] = 0
            reminder_min[sid] = 0
            idle_generation[sid] += 1
            sessions_served[sid] += 1
            if transport is not None:
                transport.send("session_start", pid, sid)

        peers.admitted_time[pid] = now
        peers.buffering_delay_slots[pid] = delay_slots
        peers.num_suppliers_served_by[pid] = num_suppliers
        peer_class = peers.peer_class[pid]
        self.metrics.on_admission(
            peer_class,
            rejections_before=peers.rejections[pid],
            num_suppliers=num_suppliers,
            buffering_delay_slots=delay_slots,
            waiting_seconds=(now - peers.first_request_time[pid]) or 0.0,
        )
        if self.trace:
            self.trace.record(
                "admission",
                now,
                peer=pid,
                peer_class=peer_class,
                suppliers=list(enlisted),
                delay_slots=delay_slots,
            )
        if self._lifecycle_enabled:
            slot = self.sessions.alloc(
                pid, tuple(enlisted), now, self._show_seconds
            )
            self._push(
                now + self._show_seconds,
                _TRACKED_END,
                (slot, self.sessions.generation[slot]),
            )
            self._track(slot)
        else:
            self._push(
                now + self._show_seconds, _SESSION_END, (pid, enlisted)
            )

    def _buffering_delay_slots(self, enlisted: list[int]) -> int:
        """OTS_p2p buffering delay, memoized by supplier-class multiset."""
        classes = self.peers.peer_class
        key = tuple(sorted(classes[sid] for sid in enlisted))
        delay = self._delay_slots_by_classes.get(key)
        if delay is None:
            offers = [
                SupplierOffer(
                    peer_id=index,
                    peer_class=peer_class,
                    units=self._offer_units[peer_class],
                )
                for index, peer_class in enumerate(key)
            ]
            session = plan_session(
                requester_id=-1,
                requester_class=1,
                offers=offers,
                media=self.media,
                ladder=self.ladder,
            )
            delay = session.buffering_delay_slots
            self._delay_slots_by_classes[key] = delay
        return delay

    def _reject(
        self,
        pid: int,
        enlisted_units: int,
        contacted_busy: list[tuple[int, int]] | None,
    ) -> None:
        peers = self.peers
        peer_class = peers.peer_class[pid]
        rejections = peers.rejections[pid] + 1
        peers.rejections[pid] = rejections
        self.metrics.on_rejection(peer_class)

        if contacted_busy:
            # choose_reminder_set over the favoring busy contacts: greedy
            # descending-units, ascending-id fill against the shortfall
            # (units are stored negated, so the plain sort gives that order)
            shortfall = self._full_rate_units - enlisted_units
            if shortfall > 0:
                contacted_busy.sort()
                reminder_min = peers.reminder_min_class
                transport = self.transport
                for neg_units, sid in contacted_busy:
                    units = -neg_units
                    if units <= shortfall:
                        current = reminder_min[sid]
                        if current == 0 or peer_class < current:
                            reminder_min[sid] = peer_class
                        self.metrics.on_reminder(peer_class)
                        if transport is not None:
                            transport.send("reminder", pid, sid)
                        shortfall -= units
                    if shortfall == 0:
                        break

        delay = self._backoff_by_rejections.get(rejections)
        if delay is None:
            delay = backoff_delay(rejections, self._t_bkf, self._e_bkf)
            self._backoff_by_rejections[rejections] = delay
        if self.trace:
            self.trace.record(
                "rejection",
                self.now,
                peer=pid,
                peer_class=peer_class,
                rejections=rejections,
                backoff_seconds=delay,
            )
        retry_at = self.now + delay
        if retry_at <= self._horizon:
            # _push inlined: one retry per rejection adds up at 100k peers
            self._seq = seq = self._seq + 1
            heappush(self._heap, (retry_at, seq, _REQUEST, pid))

    def _release_supplier(self, sid: int) -> None:
        """``on_session_end`` + ``bump_idle_generation`` on columns.

        Paper rule (c): tighten to the highest reminder class if any
        reminders arrived, elevate one level if no favored-class request
        did, otherwise keep the vector.
        """
        peers = self.peers
        level = -peers.level[sid]  # busy -L → magnitude L
        reminded = peers.reminder_min_class[sid]
        if reminded:
            level = reminded
        elif not peers.favored_while_busy[sid]:
            if level < self._num_classes:
                level += 1
        peers.level[sid] = level
        peers.favored_while_busy[sid] = 0
        peers.reminder_min_class[sid] = 0
        peers.idle_generation[sid] += 1

    def _on_session_end(self, payload: tuple[int, list[int]]) -> None:
        pid, enlisted = payload
        transport = self.transport
        for sid in enlisted:
            self._release_supplier(sid)
            self._arm_idle_timer(sid)
            if transport is not None:
                transport.send("session_end", pid, sid)
        self._promote(pid)

    def _promote(self, pid: int) -> None:
        """The served requester becomes a supplier (fresh initial vector)."""
        peers = self.peers
        peers.level[pid] = self._init_level[peers.peer_class[pid]]
        self._register(pid)

    # ------------------------------------------------------------------
    # the supplier registry (mirrors SupplierRegistry)
    # ------------------------------------------------------------------
    def _register(self, pid: int) -> None:
        peer_class = self.peers.peer_class[pid]
        self.ledger.add_supplier(peer_class)
        self._suppliers_by_class[peer_class].append(pid)
        self.lookup.register_supplier(self._media_id, pid, peer_class)
        self._arm_idle_timer(pid)
        self._schedule_departure(pid)
        if self._lifecycle_enabled:
            self._lifecycle_activate(pid)
        if self.trace:
            self.trace.record(
                "supplier_joined",
                self.now,
                peer=pid,
                peer_class=peer_class,
                capacity=self.ledger.sessions,
            )

    def _schedule_departure(self, pid: int) -> None:
        if self._mean_online is None:
            return
        delay = self._churn_rng.expovariate(1.0 / self._mean_online)
        self._push(self.now + delay, _DEPARTURE, pid)

    def _on_departure(self, pid: int) -> None:
        peers = self.peers
        if peers.departed[pid]:
            return
        if peers.level[pid] < 0:  # busy: graceful churn defers
            self._push(self.now + 300.0, _DEPARTURE, pid)
            return
        peer_class = peers.peer_class[pid]
        peers.departed[pid] = 1
        peers.departures[pid] += 1
        peers.idle_generation[pid] += 1
        self.ledger.remove_supplier(peer_class)
        self.lookup.unregister_supplier(self._media_id, pid)
        self.metrics.on_supplier_departure(peer_class)
        if self.trace:
            self.trace.record(
                "supplier_departed",
                self.now,
                peer=pid,
                peer_class=peer_class,
                capacity=self.ledger.sessions,
            )
        if self._suppliers_rejoin:
            delay = self._churn_rng.expovariate(1.0 / self._mean_offline)
            self._push(self.now + delay, _REJOIN, pid)

    def _on_rejoin(self, pid: int) -> None:
        peers = self.peers
        if not peers.departed[pid]:
            return
        peer_class = peers.peer_class[pid]
        peers.departed[pid] = 0
        self.ledger.add_supplier(peer_class)
        self.lookup.register_supplier(self._media_id, pid, peer_class)
        self.metrics.on_supplier_rejoin(peer_class)
        self._arm_idle_timer(pid)
        self._schedule_departure(pid)
        if self.trace:
            self.trace.record(
                "supplier_rejoined",
                self.now,
                peer=pid,
                peer_class=peer_class,
                capacity=self.ledger.sessions,
            )

    def _arm_idle_timer(self, pid: int) -> None:
        if not self._uses_idle_elevation:
            return
        peers = self.peers
        level = peers.level[pid]
        if level <= 0 or peers.departed[pid]:
            return
        if level == self._num_classes:  # saturated: nothing to elevate
            return
        # _push inlined: this is the most frequent scheduling site
        self._seq = seq = self._seq + 1
        at = self.now + self._t_out
        if at <= self._horizon:
            heappush(
                self._heap,
                (at, seq, _IDLE_TIMEOUT, (pid, peers.idle_generation[pid])),
            )

    def _on_idle_timeout(self, payload: tuple[int, int]) -> None:
        pid, generation = payload
        peers = self.peers
        if generation != peers.idle_generation[pid]:
            return  # invalidated by a session start since it was armed
        level = peers.level[pid]
        if level <= 0 or peers.departed[pid]:
            return
        changed = level < self._num_classes
        if changed:
            peers.level[pid] = level + 1
            if self.trace:
                self.trace.record(
                    "idle_elevation",
                    self.now,
                    peer=pid,
                    lowest_favored=level + 1,
                )
            self._arm_idle_timer(pid)

    def _favored_snapshot(self) -> dict[int, list[int]]:
        level = self.peers.level
        departed = self.peers.departed
        return {
            peer_class: [
                abs(level[pid]) for pid in pids if not departed[pid]
            ]
            for peer_class, pids in self._suppliers_by_class.items()
        }

    # ------------------------------------------------------------------
    # lifecycle dynamics (mirrors LifecycleDynamics)
    # ------------------------------------------------------------------
    def _lifecycle_activate(self, pid: int) -> None:
        at = self._lifecycle_model.next_departure(pid, self.now)
        if at is None or at > self._horizon:
            return
        self._push(max(at, self.now), _LC_DEPARTURE, pid)

    def _on_lifecycle_departure(self, pid: int) -> None:
        peers = self.peers
        if peers.departed[pid]:
            return
        peer_class = peers.peer_class[pid]
        peers.departed[pid] = 1
        peers.departures[pid] += 1
        peers.idle_generation[pid] += 1
        self.ledger.remove_supplier(peer_class)
        self.lookup.unregister_supplier(self._media_id, pid)
        self.metrics.on_supplier_departure(peer_class)
        if self.trace:
            self.trace.record(
                "supplier_departed",
                self.now,
                peer=pid,
                peer_class=peer_class,
                capacity=self.ledger.sessions,
            )
        # interrupt after the bookkeeping, so recovery probes can no
        # longer discover the departed supplier
        slots = self._sessions_by_supplier.pop(pid, None)
        if slots:
            for slot in list(slots):
                self._interrupt(slot, pid)
        if not self._lifecycle_rejoin:
            return
        at = self._lifecycle_model.next_return(pid, self.now)
        if at is None or at > self._horizon:
            return
        self._push(max(at, self.now), _LC_RETURN, pid)

    def _on_lifecycle_return(self, pid: int) -> None:
        peers = self.peers
        if not peers.departed[pid]:
            return
        peer_class = peers.peer_class[pid]
        peers.departed[pid] = 0
        self.ledger.add_supplier(peer_class)
        self.lookup.register_supplier(self._media_id, pid, peer_class)
        self.metrics.on_supplier_rejoin(peer_class)
        self._arm_idle_timer(pid)
        if self.trace:
            self.trace.record(
                "supplier_rejoined",
                self.now,
                peer=pid,
                peer_class=peer_class,
                capacity=self.ledger.sessions,
            )
        self._lifecycle_activate(pid)

    # ------------------------------------------------------------------
    # tracked sessions: interruption and recovery
    # ------------------------------------------------------------------
    def _track(self, slot: int) -> None:
        by_supplier = self._sessions_by_supplier
        for sid in self.sessions.suppliers[slot]:
            by_supplier.setdefault(sid, []).append(slot)

    def _untrack(self, slot: int) -> None:
        by_supplier = self._sessions_by_supplier
        for sid in self.sessions.suppliers[slot]:
            slots = by_supplier.get(sid)
            if slots is not None:
                try:
                    slots.remove(slot)
                except ValueError:
                    pass  # the departing supplier's entry was popped whole
                if not slots:
                    del by_supplier[sid]

    def _on_tracked_session_end(self, payload: tuple[int, int]) -> None:
        slot = payload[0]
        sessions = self.sessions
        self._untrack(slot)
        pid = sessions.requester[slot]
        transport = self.transport
        for sid in sessions.suppliers[slot]:
            self._release_supplier(sid)
            self._arm_idle_timer(sid)
            if transport is not None:
                transport.send("session_end", pid, sid)
        show = self._show_seconds
        stall = sessions.stall_seconds[slot]
        self.metrics.on_session_complete(
            self.peers.peer_class[pid],
            stall,
            sessions.interruptions[slot],
            show / (show + stall),
        )
        sessions.release(slot)
        self._promote(pid)

    def _interrupt(self, slot: int, departed_pid: int) -> None:
        now = self.now
        sessions = self.sessions
        sessions.generation[slot] += 1  # cancels the scheduled end event
        self._untrack(slot)
        elapsed = now - sessions.resumed_at[slot]
        sessions.remaining_seconds[slot] = max(
            0.0, sessions.remaining_seconds[slot] - elapsed
        )
        pid = sessions.requester[slot]
        transport = self.transport
        for sid in sessions.suppliers[slot]:
            # free every enlisted supplier — including the departed one,
            # whose busy level must not survive into its next online period
            self._release_supplier(sid)
            if sid != departed_pid:
                self._arm_idle_timer(sid)
                if transport is not None:
                    transport.send("session_interrupt", pid, sid)
        sessions.interruptions[slot] += 1
        sessions.interrupted_at[slot] = now
        sessions.recovery_attempts[slot] = 0
        peer_class = self.peers.peer_class[pid]
        self.metrics.on_interruption(peer_class)
        if self.trace:
            self.trace.record(
                "session_interrupted",
                now,
                peer=pid,
                peer_class=peer_class,
                departed=departed_pid,
                remaining_seconds=sessions.remaining_seconds[slot],
            )
        if self._recovery == "abandon":
            self.metrics.on_session_lost(peer_class)
            sessions.release(slot)
            return
        if self._recovery == "restart":
            sessions.remaining_seconds[slot] = self._show_seconds
        self._push(now, _RECOVERY, slot)

    def _attempt_recovery(self, slot: int) -> None:
        sessions = self.sessions
        pid = sessions.requester[slot]
        outcome = self._probe_candidates(pid)
        enlisted: list[int] = []
        deficit = self._full_rate_units
        if outcome is not None:
            enlisted, _contacted_busy, deficit = outcome
        if deficit == 0:
            self._resume(slot, enlisted)
            return
        attempts = sessions.recovery_attempts[slot] + 1
        sessions.recovery_attempts[slot] = attempts
        peer_class = self.peers.peer_class[pid]
        self.metrics.on_recovery_retry(peer_class)
        delay = self._backoff_by_rejections.get(attempts)
        if delay is None:
            delay = backoff_delay(attempts, self._t_bkf, self._e_bkf)
            self._backoff_by_rejections[attempts] = delay
        retry_at = self.now + delay
        if retry_at <= self._horizon:
            self._push(retry_at, _RECOVERY, slot)
        else:
            self.metrics.on_session_lost(peer_class)
            if self.trace:
                self.trace.record(
                    "session_lost",
                    self.now,
                    peer=pid,
                    peer_class=peer_class,
                    recovery_attempts=attempts,
                )
            sessions.release(slot)

    def _resume(self, slot: int, enlisted: list[int]) -> None:
        now = self.now
        sessions = self.sessions
        peers = self.peers
        pid = sessions.requester[slot]
        delay_slots = self._buffering_delay_slots(enlisted)
        level = peers.level
        favored_flag = peers.favored_while_busy
        reminder_min = peers.reminder_min_class
        transport = self.transport
        for sid in enlisted:
            level[sid] = -level[sid]
            favored_flag[sid] = 0
            reminder_min[sid] = 0
            peers.idle_generation[sid] += 1
            peers.sessions_served[sid] += 1
            if transport is not None:
                transport.send("session_resume", pid, sid)
        latency = now - sessions.interrupted_at[slot]
        stall = latency + self.media.slots_to_seconds(delay_slots)
        sessions.stall_seconds[slot] += stall
        sessions.interrupted_at[slot] = None
        sessions.suppliers[slot] = tuple(enlisted)
        sessions.resumed_at[slot] = now
        self._push(
            now + sessions.remaining_seconds[slot],
            _TRACKED_END,
            (slot, sessions.generation[slot]),
        )
        self._track(slot)
        peer_class = peers.peer_class[pid]
        self.metrics.on_recovery(peer_class, latency, stall)
        if self.trace:
            self.trace.record(
                "session_resumed",
                now,
                peer=pid,
                peer_class=peer_class,
                suppliers=list(enlisted),
                recovery_latency_seconds=latency,
                remaining_seconds=sessions.remaining_seconds[slot],
            )

    # ------------------------------------------------------------------
    # samplers (mirrors Samplers; t=0 samples run inline at construction)
    # ------------------------------------------------------------------
    def _sample_capacity(self, _payload: object = None) -> None:
        self.metrics.sample_capacity(self.now, self.ledger)
        next_time = self.now + self._capacity_period
        if next_time <= self._horizon:
            self._push(next_time, _SAMPLE_CAPACITY, None)

    def _sample_rates(self, _payload: object = None) -> None:
        self.metrics.sample_rates(self.now)
        next_time = self.now + self._rate_period
        if next_time <= self._horizon:
            self._push(next_time, _SAMPLE_RATES, None)

    def _sample_favored(self, _payload: object = None) -> None:
        self.metrics.sample_favored(self.now, self._favored_snapshot())
        next_time = self.now + self._favored_period
        if next_time <= self._horizon:
            self._push(next_time, _SAMPLE_FAVORED, None)
