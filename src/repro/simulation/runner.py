"""One-call experiment execution: single runs, protocol comparisons, sweeps.

These helpers are the entry points used by the benchmarks, examples and the
CLI.  A :class:`SimulationResult` packages the run's configuration, metrics
and bookkeeping; comparisons and sweeps return ordered dictionaries keyed
the way the paper labels its curves.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.capacity import max_capacity_sessions
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import MetricsCollector
from repro.simulation.system import StreamingSystem
from repro.simulation.trace import TraceRecorder

__all__ = [
    "SimulationResult",
    "run_simulation",
    "compare_protocols",
    "sweep_parameter",
]


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    config: SimulationConfig
    metrics: MetricsCollector
    events_processed: int
    wall_seconds: float
    message_stats: dict[str, float] | None

    @property
    def max_capacity(self) -> int:
        """Capacity ceiling if every peer became a supplier (Figure 4)."""
        class_counts = {c: 0 for c in self.config.ladder.classes}
        for peer_class, count in self.config.seed_suppliers.items():
            class_counts[peer_class] += count
        for peer_class, count in self.config.requesting_peers.items():
            class_counts[peer_class] += count
        return max_capacity_sessions(class_counts, self.config.ladder)

    @property
    def capacity_fraction_of_max(self) -> float:
        """Final capacity as a fraction of the ceiling (paper: >= 0.95)."""
        maximum = self.max_capacity
        return self.metrics.final_capacity() / maximum if maximum else 0.0

    def summary(self) -> str:
        """Compact run summary for logs and reports."""
        admitted = sum(self.metrics.admitted.values())
        first = sum(self.metrics.first_requests.values())
        return (
            f"{self.config.protocol} pattern {self.config.arrival_pattern}: "
            f"capacity {self.metrics.final_capacity():.0f}/{self.max_capacity} "
            f"({100 * self.capacity_fraction_of_max:.1f}% of max), "
            f"admitted {admitted}/{first}, "
            f"{self.events_processed} events in {self.wall_seconds:.2f}s"
        )


def run_simulation(
    config: SimulationConfig, trace: TraceRecorder | None = None
) -> SimulationResult:
    """Build and run one streaming system; returns its results.

    ``config.engine`` selects the execution engine: the per-peer object
    walk of :class:`~repro.simulation.system.StreamingSystem` or the
    struct-of-arrays :class:`~repro.simulation.arrayengine.ArrayEngine`.
    Both produce identical results by contract (the array engine is
    parity-pinned against the object engine), so everything downstream
    of this call is engine-agnostic.  The import is deferred so runs on
    the default engine never pay for numpy.
    """
    # wall time is measured for reporting (events/sec) only; it never
    # steers the simulation, so the wall-clock ban does not apply here
    start = time.perf_counter()  # detlint: ignore[no-wallclock]
    if config.engine == "array":
        from repro.simulation.arrayengine import ArrayEngine

        system = ArrayEngine(config, trace=trace)
        metrics = system.run()
        events_processed = system.events_processed
    else:
        system = StreamingSystem(config, trace=trace)
        metrics = system.run()
        events_processed = system.sim.events_processed
    wall = time.perf_counter() - start  # detlint: ignore[no-wallclock]
    message_stats = (
        system.transport.stats.snapshot() if system.transport is not None else None
    )
    return SimulationResult(
        config=config,
        metrics=metrics,
        events_processed=events_processed,
        wall_seconds=wall,
        message_stats=message_stats,
    )


def compare_protocols(
    config: SimulationConfig,
    protocols: Sequence[str] = ("dac", "ndac"),
    jobs: int = 1,
) -> dict[str, SimulationResult]:
    """Run the same configuration under several admission protocols.

    All runs share the master seed, so RNG streams are paired and observed
    differences are attributable to the protocols.  ``jobs>1`` fans the
    runs out over worker processes (results are identical, just faster).
    Duplicate protocol names raise
    :class:`~repro.errors.ConfigurationError` instead of silently
    collapsing to one entry.

    .. deprecated:: 1.1
       Thin shim over :class:`~repro.orchestration.study.Study`; new code
       should use ``Study.from_config(config).protocols(*protocols)``,
       which adds seed axes, export and disk caching.
    """
    from repro.orchestration.study import Study

    result_set = Study.from_config(config).protocols(*protocols).run(jobs=jobs)
    return {record.protocol: record.result for record in result_set}


def sweep_parameter(
    config: SimulationConfig,
    parameter: str,
    values: Iterable[object],
    jobs: int = 1,
) -> dict[object, SimulationResult]:
    """Run the config once per value of ``parameter`` (Figures 8 and 9).

    ``jobs>1`` runs the sweep points on worker processes; the result dict
    keeps the order of ``values`` either way.  An unknown ``parameter``
    raises :class:`~repro.errors.ConfigurationError` naming the valid
    config fields; duplicate values raise instead of silently collapsing.

    .. deprecated:: 1.1
       Thin shim over :class:`~repro.orchestration.study.Study`; new code
       should use ``Study.from_config(config).sweep(parameter, values)``.
    """
    from repro.orchestration.study import Study

    value_list = list(values)
    result_set = Study.from_config(config).sweep(parameter, value_list).run(jobs=jobs)
    return {
        value: record.result for value, record in zip(value_list, result_set)
    }
