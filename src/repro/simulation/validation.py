"""Post-run invariant auditing.

A simulation can silently drift from the paper's model (a supplier serving
two sessions, a session using more than ``R0``, a peer admitted without
ever requesting).  :func:`audit_system` sweeps a finished
:class:`~repro.simulation.system.StreamingSystem` and its optional trace
and returns a structured report of every violated invariant — the
integration suite asserts the report is empty, and long experiment
campaigns can audit cheaply instead of re-deriving everything from traces.

Invariants checked
------------------
**State invariants** (from the final system state)

* S1  every non-seed peer that was admitted is now a supplier;
* S2  every supplier has admission state and a class on the ladder;
* S3  the capacity ledger equals a recount over the supplier population;
* S4  per-peer bookkeeping is consistent (admitted ⇒ first request;
      waiting time non-negative; buffering delay equals supplier count);
* S5  admitted peers' buffering delays respect Theorem-1 bounds
      (``2 <= n <= M``) on the paper's ladder;
* S6  metrics counters are self-consistent (admissions ≤ first requests,
      requests = first requests + retries ≥ rejections).

**Trace invariants** (when a trace was recorded)

* T1  no supplier is enlisted into two overlapping sessions;
* T2  every admission's suppliers aggregate to exactly ``R0``;
* T3  backoffs follow ``T_bkf · E_bkf**(i-1)``;
* T4  event times are within the horizon and non-decreasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import PeerRole
from repro.simulation.system import StreamingSystem
from repro.simulation.trace import TraceRecorder

__all__ = ["Violation", "AuditReport", "audit_system"]


@dataclass(frozen=True)
class Violation:
    """One violated invariant."""

    invariant: str
    message: str


@dataclass
class AuditReport:
    """Outcome of a system audit."""

    violations: list[Violation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def add(self, invariant: str, message: str) -> None:
        """Record one violation."""
        self.violations.append(Violation(invariant, message))

    def summary(self) -> str:
        """One line per violation, or an all-clear."""
        if self.ok:
            return f"audit ok ({self.checks_run} checks)"
        lines = [f"audit FAILED: {len(self.violations)} violation(s)"]
        lines += [f"  [{v.invariant}] {v.message}" for v in self.violations]
        return "\n".join(lines)


def _audit_state(system: StreamingSystem, report: AuditReport) -> None:
    ladder = system.ladder
    metrics = system.metrics

    recount_units = 0
    recount_suppliers = 0
    for peer in system.peers:
        report.checks_run += 1
        if peer.admitted_time is not None and peer.role is not PeerRole.SUPPLYING:
            report.add("S1", f"peer {peer.peer_id} admitted but not a supplier")
        if peer.is_active_supplier:
            recount_suppliers += 1
            recount_units += ladder.offer_units(peer.peer_class)
        if peer.is_supplier and peer.admission is None:
            report.add("S2", f"supplier {peer.peer_id} has no admission state")
        if peer.admitted_time is not None:
            if peer.first_request_time is None:
                report.add(
                    "S4", f"peer {peer.peer_id} admitted without a first request"
                )
            elif peer.admitted_time < peer.first_request_time:
                report.add("S4", f"peer {peer.peer_id} admitted before requesting")
            if peer.buffering_delay_slots != peer.num_suppliers_served_by:
                report.add(
                    "S4",
                    f"peer {peer.peer_id}: delay {peer.buffering_delay_slots} != "
                    f"supplier count {peer.num_suppliers_served_by} (Theorem 1)",
                )
            if peer.num_suppliers_served_by is not None and not (
                2 <= peer.num_suppliers_served_by <= system.config.probe_candidates
            ):
                report.add(
                    "S5",
                    f"peer {peer.peer_id} served by "
                    f"{peer.num_suppliers_served_by} suppliers, outside "
                    f"[2, M={system.config.probe_candidates}]",
                )

    report.checks_run += 1
    if recount_units != system.ledger.total_units:
        report.add(
            "S3",
            f"ledger says {system.ledger.total_units} units, recount says "
            f"{recount_units}",
        )
    if recount_suppliers != system.ledger.num_suppliers:
        report.add(
            "S3",
            f"ledger says {system.ledger.num_suppliers} suppliers, recount "
            f"says {recount_suppliers}",
        )

    report.checks_run += 1
    for peer_class in ladder.classes:
        if metrics.admitted[peer_class] > metrics.first_requests[peer_class]:
            report.add(
                "S6",
                f"class {peer_class}: admitted {metrics.admitted[peer_class]} > "
                f"first requests {metrics.first_requests[peer_class]}",
            )
        if metrics.requests[peer_class] < metrics.first_requests[peer_class]:
            report.add("S6", f"class {peer_class}: requests < first requests")


def _audit_trace(
    system: StreamingSystem, trace: TraceRecorder, report: AuditReport
) -> None:
    ladder = system.ladder
    config = system.config
    show_seconds = system.media.show_seconds

    busy_until: dict[int, float] = {}
    previous_time = 0.0
    for event in trace.events:
        report.checks_run += 1
        time = event["t"]
        if time < previous_time:
            report.add("T4", f"event at {time} after event at {previous_time}")
        previous_time = max(previous_time, time)
        if time > config.horizon_seconds + 1e-9:
            report.add("T4", f"event at {time} beyond horizon")

        if event["kind"] == "admission":
            units = 0
            for supplier_id in event["suppliers"]:
                if busy_until.get(supplier_id, -1.0) > time + 1e-9:
                    report.add(
                        "T1",
                        f"supplier {supplier_id} enlisted at {time} while busy "
                        f"until {busy_until[supplier_id]}",
                    )
                busy_until[supplier_id] = time + show_seconds
                units += ladder.offer_units(system.peers[supplier_id].peer_class)
            if units != ladder.full_rate_units:
                report.add(
                    "T2",
                    f"admission of peer {event['peer']} at {time} aggregates "
                    f"{units} units, needs {ladder.full_rate_units}",
                )
        elif event["kind"] == "rejection":
            expected = config.t_bkf_seconds * config.e_bkf ** (
                event["rejections"] - 1
            )
            if abs(event["backoff_seconds"] - expected) > 1e-6:
                report.add(
                    "T3",
                    f"peer {event['peer']} backoff {event['backoff_seconds']} "
                    f"!= expected {expected}",
                )


def audit_system(
    system: StreamingSystem, trace: TraceRecorder | None = None
) -> AuditReport:
    """Audit a finished run against the paper's model invariants."""
    report = AuditReport()
    _audit_state(system, report)
    if trace is not None:
        _audit_trace(system, trace, report)
    return report
