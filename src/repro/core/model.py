"""Peer and bandwidth-class model of the paper (Section 2).

The paper stratifies peers into ``N`` classes by the out-bound bandwidth they
offer: a *class-i* peer offers ``R0 / 2**i`` where ``R0`` is the media
playback rate and ``1 <= i <= N``.  Lower class index means a *higher* class
(larger offer).  The power-of-two ladder is deliberate — it keeps the media
data assignment problem tractable (paper footnote 2) and it lets this
implementation do **exact integer arithmetic**: we express every bandwidth in
units of ``R0 / 2**N``, so

* the full playback rate ``R0`` is ``2**N`` units, and
* a class-``i`` peer offers ``2**(N - i)`` units.

All core algorithms work in these units; conversion to fractions of ``R0``
only happens at reporting boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ClassLadderError, ConfigurationError

__all__ = ["ClassLadder", "PeerRole", "Peer", "SupplierOffer"]

#: Number of peer classes used throughout the paper's evaluation.
DEFAULT_NUM_CLASSES = 4


class PeerRole(enum.Enum):
    """Role a peer currently plays in the streaming system.

    The paper's model is strict about roles: a peer starts as a *requesting*
    peer, and once its streaming session completes it becomes (and remains) a
    *supplying* peer.  "Seed" peers are supplying peers from the start.
    """

    REQUESTING = "requesting"
    SUPPLYING = "supplying"


@dataclass(frozen=True)
class ClassLadder:
    """The bandwidth-class ladder of the paper's model.

    Parameters
    ----------
    num_classes:
        ``N``, the number of classes.  The paper's evaluation uses 4.

    Examples
    --------
    >>> ladder = ClassLadder(4)
    >>> ladder.offer_fraction(1)   # class-1 offers R0/2
    0.5
    >>> ladder.offer_units(4)      # class-4 offers 1 unit of R0/16
    1
    >>> ladder.full_rate_units     # R0 expressed in units
    16
    """

    num_classes: int = DEFAULT_NUM_CLASSES

    def __post_init__(self) -> None:
        if self.num_classes < 1:
            raise ConfigurationError(
                f"ClassLadder needs at least one class, got {self.num_classes}"
            )

    @property
    def full_rate_units(self) -> int:
        """``R0`` expressed in integer bandwidth units (``2**N``)."""
        return 1 << self.num_classes

    @property
    def classes(self) -> range:
        """Iterable of valid class indices, highest class first (1..N)."""
        return range(1, self.num_classes + 1)

    def validate_class(self, peer_class: int) -> int:
        """Return ``peer_class`` if valid, else raise :class:`ClassLadderError`."""
        if not isinstance(peer_class, int) or isinstance(peer_class, bool):
            raise ClassLadderError(f"peer class must be an int, got {peer_class!r}")
        if not 1 <= peer_class <= self.num_classes:
            raise ClassLadderError(
                f"peer class {peer_class} outside ladder 1..{self.num_classes}"
            )
        return peer_class

    def offer_units(self, peer_class: int) -> int:
        """Out-bound offer of a class-``i`` peer in integer units (``2**(N-i)``)."""
        self.validate_class(peer_class)
        return 1 << (self.num_classes - peer_class)

    def offer_fraction(self, peer_class: int) -> float:
        """Out-bound offer of a class-``i`` peer as a fraction of ``R0`` (``2**-i``)."""
        self.validate_class(peer_class)
        return self.offer_units(peer_class) / self.full_rate_units

    def class_for_units(self, units: int) -> int:
        """Inverse of :meth:`offer_units`; raises if ``units`` is not on the ladder."""
        for peer_class in self.classes:
            if self.offer_units(peer_class) == units:
                return peer_class
        raise ClassLadderError(f"{units} units is not a class offer on this ladder")

    def segment_slots(self, peer_class: int) -> int:
        """Time (in playback slots ``δt``) a class-``i`` peer needs per segment.

        A segment holds ``R0 * δt`` bits; at rate ``R0 / 2**i`` its
        transmission takes ``2**i * δt``, i.e. ``2**i`` slots.
        """
        self.validate_class(peer_class)
        return 1 << peer_class

    def is_lower_class(self, a: int, b: int) -> bool:
        """True when class ``a`` is *lower* (smaller offer) than class ``b``."""
        self.validate_class(a)
        self.validate_class(b)
        return a > b


@dataclass(frozen=True)
class Peer:
    """A peer identity: stable id plus its bandwidth class.

    The class is the bandwidth the peer *pledges*; the paper assumes an
    enforcement mechanism makes the pledge binding once the peer becomes a
    supplier (footnote 3), and so do we.
    """

    peer_id: int
    peer_class: int

    def offer_units(self, ladder: ClassLadder) -> int:
        """This peer's out-bound offer in integer units under ``ladder``."""
        return ladder.offer_units(self.peer_class)


@dataclass(frozen=True, slots=True)
class SupplierOffer:
    """A supplying peer's offer as seen by a requesting peer.

    This is the unit the assignment and admission algorithms consume: who the
    supplier is, what class it belongs to, and its offer in integer units.
    ``sort_key`` orders offers from the highest class (largest offer)
    downwards, breaking ties by peer id for determinism.
    """

    peer_id: int
    peer_class: int
    units: int

    @classmethod
    def for_peer(cls, peer: Peer, ladder: ClassLadder) -> "SupplierOffer":
        """Build the offer record for ``peer`` under ``ladder``."""
        return cls(
            peer_id=peer.peer_id,
            peer_class=peer.peer_class,
            units=ladder.offer_units(peer.peer_class),
        )

    @property
    def sort_key(self) -> tuple[int, int]:
        """Sort key: descending bandwidth first, then ascending peer id."""
        return (-self.units, self.peer_id)


def sort_offers_descending(offers: list[SupplierOffer]) -> list[SupplierOffer]:
    """Return ``offers`` sorted by descending bandwidth (paper's precondition).

    OTS_p2p requires its supplier list sorted by descending out-bound offer;
    ties are broken by peer id so that the assignment is deterministic.
    """
    return sorted(offers, key=lambda offer: offer.sort_key)
