"""Theorem 1 of the paper, plus a brute-force oracle used to test it.

Theorem 1 states: given ``n`` supplying peers whose offers sum to ``R0``,
Algorithm OTS_p2p computes an assignment achieving the minimum buffering
delay, and that minimum equals ``n · δt``.

:func:`theorem1_min_delay_slots` is the closed form.  The brute-force oracle
:func:`brute_force_min_delay_slots` enumerates *every* quota-respecting
assignment of one period and minimizes the buffering delay directly; the
test suite (including hypothesis property tests) checks

``ots delay == theorem1 == brute force``

on randomly drawn supplier sets, which is the strongest executable statement
of the theorem this reproduction can make.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core import segments as seg
from repro.core.assignment import Assignment
from repro.core.model import ClassLadder, SupplierOffer, sort_offers_descending
from repro.core.schedule import min_start_delay_slots
from repro.errors import AssignmentError

__all__ = [
    "theorem1_min_delay_slots",
    "brute_force_min_delay_slots",
    "assignment_is_optimal",
]


def theorem1_min_delay_slots(num_suppliers: int) -> int:
    """Closed-form minimum buffering delay: ``n`` slots for ``n`` suppliers."""
    if num_suppliers < 1:
        raise AssignmentError(
            f"a session needs at least one supplier, got {num_suppliers}"
        )
    return num_suppliers


def brute_force_min_delay_slots(
    offers: Sequence[SupplierOffer],
    ladder: ClassLadder | None = None,
    max_period: int = 64,
) -> int:
    """Minimum buffering delay over *all* quota-respecting assignments.

    Enumerates every way of giving each supplier its quota of period
    segments (a multiset permutation of supplier labels over the period) and
    returns the smallest ``min_start_delay_slots``.  Exponential — guarded by
    ``max_period`` — and intended only for tests on small supplier sets.
    """
    ladder = ladder or ClassLadder()
    seg.check_feasible(offers, ladder)
    ordered = sort_offers_descending(list(offers))
    lowest = seg.lowest_class(ordered)
    period_len = seg.period_segments(lowest)
    if period_len > max_period:
        raise AssignmentError(
            f"brute force refuses period of {period_len} segments "
            f"(limit {max_period}); use the closed form instead"
        )
    quotas = [seg.quota(offer.peer_class, lowest) for offer in ordered]

    best = None
    buckets: list[list[int]] = [[] for _ in ordered]

    def place(segment: int, remaining: list[int]) -> None:
        nonlocal best
        if segment == period_len:
            assignment = Assignment(
                suppliers=tuple(ordered),
                period_len=period_len,
                segment_lists=tuple(tuple(b) for b in buckets),
                algorithm="brute",
            )
            delay = min_start_delay_slots(assignment)
            if best is None or delay < best:
                best = delay
            return
        # Prune: an assignment can never beat the theorem's bound, so stop
        # exploring once the bound has been met.
        if best == len(ordered):
            return
        for j in range(len(ordered)):
            if remaining[j] > 0:
                remaining[j] -= 1
                buckets[j].append(segment)
                place(segment + 1, remaining)
                buckets[j].pop()
                remaining[j] += 1

    place(0, quotas)
    if best is None:
        raise AssignmentError("no feasible assignment found by brute force")
    return best


def assignment_is_optimal(assignment: Assignment) -> bool:
    """True when ``assignment`` achieves the Theorem-1 minimum delay."""
    return min_start_delay_slots(assignment) == theorem1_min_delay_slots(
        assignment.num_suppliers
    )
