"""System-capacity accounting (Section 2, definition 4, and Figure 3).

The paper defines the capacity of the peer-to-peer streaming system at time
``t`` as the number of streaming sessions the supply side can sustain
simultaneously: the sum of all supplying peers' out-bound offers divided by
the playback rate ``R0``.  Figure 3's worked example takes the floor of that
sum, and so do we (a half-session cannot serve anyone); the exact fractional
value is kept alongside for plots and tests.

:class:`CapacityLedger` maintains the sum incrementally in exact integer
units as peers join the supplier population, which is how the simulator
produces the Figure 4 capacity-amplification curves without rescanning all
peers at every sample.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.model import ClassLadder
from repro.errors import CapacityError

__all__ = ["CapacityLedger", "max_capacity_sessions", "capacity_of_classes"]


@dataclass
class CapacityLedger:
    """Incremental capacity bookkeeping over the supplier population.

    Only *membership* in the supplier population matters — the paper's
    definition counts busy suppliers too (being busy is what "providing a
    session" means).  The ledger also tracks the per-class population, which
    the metrics layer uses for Figure 7.
    """

    ladder: ClassLadder
    total_units: int = field(default=0, init=False)
    per_class_count: dict[int, int] = field(init=False)

    def __post_init__(self) -> None:
        self.per_class_count = {j: 0 for j in self.ladder.classes}

    def add_supplier(self, peer_class: int) -> None:
        """A peer of ``peer_class`` joined the supplier population."""
        self.ladder.validate_class(peer_class)
        self.total_units += self.ladder.offer_units(peer_class)
        self.per_class_count[peer_class] += 1

    def remove_supplier(self, peer_class: int) -> None:
        """A supplier left (used by churn experiments; the paper has none)."""
        self.ladder.validate_class(peer_class)
        if self.per_class_count[peer_class] == 0:
            raise CapacityError(
                f"no class-{peer_class} supplier to remove from the ledger"
            )
        self.total_units -= self.ladder.offer_units(peer_class)
        self.per_class_count[peer_class] -= 1

    @property
    def sessions(self) -> int:
        """Capacity in whole sessions: ``⌊Σ offers / R0⌋`` (Figure 3's form)."""
        return self.total_units // self.ladder.full_rate_units

    @property
    def sessions_fractional(self) -> float:
        """Capacity as the exact fraction ``Σ offers / R0``."""
        return self.total_units / self.ladder.full_rate_units

    @property
    def num_suppliers(self) -> int:
        """Total number of peers currently in the supplier population."""
        return sum(self.per_class_count.values())

    def snapshot(self) -> dict[str, float]:
        """Plain-dict snapshot for metrics collectors."""
        return {
            "total_units": self.total_units,
            "sessions": self.sessions,
            "sessions_fractional": self.sessions_fractional,
            "num_suppliers": self.num_suppliers,
        }


def capacity_of_classes(
    class_counts: Mapping[int, int], ladder: ClassLadder
) -> float:
    """Fractional capacity of a population given per-class counts."""
    total = 0
    for peer_class, count in class_counts.items():
        ladder.validate_class(peer_class)
        if count < 0:
            raise CapacityError(f"negative count for class {peer_class}")
        total += count * ladder.offer_units(peer_class)
    return total / ladder.full_rate_units


def max_capacity_sessions(
    class_counts: Mapping[int, int], ladder: ClassLadder
) -> int:
    """Ultimate capacity if *every* peer became a supplier (Figure 4's ceiling).

    The paper reports DAC_p2p reaching "at least 95% of the maximum capacity
    if all 50,100 peers become supplying peers"; this computes that maximum.
    """
    total = 0
    for peer_class, count in class_counts.items():
        ladder.validate_class(peer_class)
        if count < 0:
            raise CapacityError(f"negative count for class {peer_class}")
        total += count * ladder.offer_units(peer_class)
    return total // ladder.full_rate_units
