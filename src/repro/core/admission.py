"""Supplier-side DAC_p2p mechanics (Section 4.1 of the paper).

Every supplying peer runs a small state machine around an *admission
probability vector* ``Pa[1..N]``:

* ``Pa[j]`` is the probability with which the supplier grants a streaming
  request from a class-``j`` requesting peer (applied only when the supplier
  is up and idle);
* class ``j`` is *favored* when ``Pa[j] == 1.0``;
* the vector starts biased toward the supplier's own class and above
  (all-ones there, halving per class below);
* it **relaxes** (doubles the sub-1 entries) after every ``T_out`` of
  idleness, and after a served session during which no favored-class request
  arrived;
* it **tightens** (re-initializes as if the supplier belonged to class
  ``k̂``) when requesting peers of favored classes left *reminders* during
  the session, ``k̂`` being the highest such class.

The timing of updates (idle timers, session boundaries) is owned by the
simulation layer; this module is pure state + transitions so it can be unit-
and property-tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import ClassLadder
from repro.errors import ConfigurationError

__all__ = ["AdmissionVector", "SupplierAdmissionState"]


@dataclass(slots=True)
class AdmissionVector:
    """The admission probability vector ``Pa[1..N]`` of one supplying peer.

    Probabilities are kept as exact floats on the ladder
    ``1, 1/2, 1/4, ...`` — every operation (init, halve-per-class, double)
    stays on powers of two, so float equality against ``1.0`` is exact and
    the paper's "favored class" predicate is well defined.

    Examples
    --------
    The paper's worked example — a class-2 supplier with ``N = 4``:

    >>> vec = AdmissionVector.initial(own_class=2, ladder=ClassLadder(4))
    >>> vec.probabilities
    [1.0, 1.0, 0.5, 0.25]
    >>> vec.favored_classes()
    [1, 2]
    >>> vec.lowest_favored_class()
    2
    """

    ladder: ClassLadder
    #: ``probabilities[j-1]`` is ``Pa[j]``.
    probabilities: list[float]

    @classmethod
    def initial(cls, own_class: int, ladder: ClassLadder) -> "AdmissionVector":
        """Paper rule (a): all-ones through ``own_class``, halving below it."""
        ladder.validate_class(own_class)
        probabilities = [
            1.0 if j <= own_class else 0.5 ** (j - own_class) for j in ladder.classes
        ]
        return cls(ladder=ladder, probabilities=probabilities)

    @classmethod
    def all_ones(cls, ladder: ClassLadder) -> "AdmissionVector":
        """The NDAC_p2p vector: every class is always favored."""
        return cls(ladder=ladder, probabilities=[1.0] * ladder.num_classes)

    def probability_for(self, requester_class: int) -> float:
        """``Pa[requester_class]``.

        Millions of calls per run (every probe's grant test, every
        favored-class query), so the valid-class fast path indexes the
        vector directly; invalid classes fall through to the ladder's
        validation for its precise error.  ``__class__ is int`` excludes
        ``bool`` exactly as ``validate_class`` does.
        """
        if requester_class.__class__ is int and 1 <= requester_class <= len(
            self.probabilities
        ):
            return self.probabilities[requester_class - 1]
        self.ladder.validate_class(requester_class)
        return self.probabilities[requester_class - 1]  # pragma: no cover

    def is_favored(self, requester_class: int) -> bool:
        """Paper definition: class ``j`` is favored iff ``Pa[j] == 1.0``."""
        return self.probability_for(requester_class) == 1.0

    def favored_classes(self) -> list[int]:
        """All favored class indices, highest class first."""
        return [
            j + 1 for j, value in enumerate(self.probabilities) if value == 1.0
        ]

    def lowest_favored_class(self) -> int:
        """The numerically largest favored class (Figure 7's y-axis).

        The initial vector always favors the supplier's own class, and
        relax/tighten preserve "``Pa[1..k]`` all-ones for some ``k >= 1``",
        so at least class 1 is favored at all times.  This is the
        Figure-7 snapshot's inner loop (every supplier, every 3 simulated
        hours) and the idle-timer saturation guard, hence the bare
        backwards scan instead of ``max(self.favored_classes())``.
        """
        probabilities = self.probabilities
        for index in range(len(probabilities) - 1, -1, -1):
            if probabilities[index] == 1.0:
                return index + 1
        raise ConfigurationError(
            "admission vector favors no class at all; the paper's invariant "
            "guarantees Pa[1] == 1.0 at all times"
        )

    def elevate(self) -> bool:
        """Paper rules (b)/(c-relax): double every sub-one probability.

        Returns ``True`` if any entry changed (i.e. the vector was not yet
        all-ones), which lets callers stop re-arming idle timers once the
        vector saturates.
        """
        changed = False
        for index, value in enumerate(self.probabilities):
            if value < 1.0:
                self.probabilities[index] = min(1.0, value * 2.0)
                changed = True
        return changed

    def tighten(self, reminder_class: int) -> None:
        """Paper rule (c-tighten): re-initialize around class ``k̂``.

        ``reminder_class`` is the highest (numerically smallest) class among
        the requesting peers that left reminders during the just-finished
        session.
        """
        self.ladder.validate_class(reminder_class)
        self.probabilities = [
            1.0 if j <= reminder_class else 0.5 ** (j - reminder_class)
            for j in self.ladder.classes
        ]

    def is_saturated(self) -> bool:
        """True when every class is favored (no further elevation possible)."""
        return all(value == 1.0 for value in self.probabilities)

    def copy(self) -> "AdmissionVector":
        """Independent copy (the simulator snapshots vectors for metrics)."""
        return AdmissionVector(ladder=self.ladder, probabilities=list(self.probabilities))


@dataclass(slots=True)
class SupplierAdmissionState:
    """Full supplier-side DAC_p2p state: vector + per-session bookkeeping.

    The simulation layer calls the ``on_*`` methods at the corresponding
    protocol events; this class implements the update rules of Section 4.1
    and nothing else (no clocks, no randomness — the admission *coin flip*
    itself lives with the caller, which owns the RNG).
    """

    own_class: int
    ladder: ClassLadder
    vector: AdmissionVector = field(init=False)
    busy: bool = field(default=False, init=False)
    #: True iff a favored-class request arrived while busy in this session.
    favored_request_while_busy: bool = field(default=False, init=False)
    #: Classes of requesters that left reminders during this session.
    reminder_classes: list[int] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self.ladder.validate_class(self.own_class)
        self.vector = AdmissionVector.initial(self.own_class, self.ladder)

    # ------------------------------------------------------------------
    # protocol events
    # ------------------------------------------------------------------
    def on_session_start(self) -> None:
        """The supplier was enlisted into a streaming session."""
        if self.busy:
            raise ConfigurationError(
                "supplier enlisted into a session while already busy; the "
                "paper's model allows at most one session per supplier"
            )
        self.busy = True
        self.favored_request_while_busy = False
        self.reminder_classes = []

    def on_request_while_busy(self, requester_class: int) -> None:
        """A request arrived while the supplier was serving a session."""
        if self.favors(requester_class):
            self.favored_request_while_busy = True

    def on_reminder(self, requester_class: int) -> None:
        """A rejected requester left a reminder with this (busy) supplier."""
        self.reminder_classes.append(requester_class)

    def on_session_end(self) -> None:
        """Apply the paper's rule (c) at the end of a served session."""
        self.busy = False
        if self.reminder_classes:
            self.vector.tighten(min(self.reminder_classes))
        elif not self.favored_request_while_busy:
            self.vector.elevate()
        # A favored-class request without a reminder leaves the vector as-is.
        self.favored_request_while_busy = False
        self.reminder_classes = []

    def on_idle_timeout(self) -> bool:
        """Apply the paper's rule (b) after ``T_out`` of idleness.

        Returns ``True`` when the vector changed, so the caller knows whether
        re-arming the idle timer can still have an effect.
        """
        if self.busy:
            raise ConfigurationError("idle timeout fired while supplier is busy")
        return self.vector.elevate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def grant_probability(self, requester_class: int) -> float:
        """Probability of granting a class-``requester_class`` request now.

        Called once per probed idle candidate — the vector's fast path is
        inlined rather than paying two method hops per probe.
        """
        probabilities = self.vector.probabilities
        if requester_class.__class__ is int and 1 <= requester_class <= len(
            probabilities
        ):
            return probabilities[requester_class - 1]
        return self.vector.probability_for(requester_class)

    def favors(self, requester_class: int) -> bool:
        """Whether this supplier currently favors ``requester_class``."""
        probabilities = self.vector.probabilities
        if requester_class.__class__ is int and 1 <= requester_class <= len(
            probabilities
        ):
            return probabilities[requester_class - 1] == 1.0
        return self.vector.is_favored(requester_class)

    def lowest_favored_class(self) -> int:
        """The lowest class this supplier currently favors (Figure 7)."""
        return self.vector.lowest_favored_class()
