"""Transmission schedules and buffering-delay evaluation (Section 3).

Given a per-period :class:`~repro.core.assignment.Assignment`, every
supplier transmits its assigned segments in increasing segment order,
back-to-back, at its offered rate, starting the moment the session begins
(time 0).  Because a class-``i`` supplier needs ``2**i`` slots per segment
and carries ``2**(L-i)`` segments per ``2**L``-slot period, each supplier's
pipe is exactly full: period ``p``'s data occupies its link during slots
``[p * 2**L, (p+1) * 2**L)``.

This module computes, for any assignment:

* the **arrival slot** of every segment (the slot at which its transmission
  completes and it becomes playable),
* the **minimum start delay** — the smallest playback start time (in slots)
  that guarantees continuous playback, which *is* the buffering delay the
  requesting peer experiences, and
* a continuity verifier used by tests and by the playback-buffer substrate.

All times are integers in units of ``δt`` ("slots"); multiply by the media's
``segment_seconds`` to convert to wall-clock seconds.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.errors import SchedulingError

__all__ = [
    "TransmissionSchedule",
    "min_start_delay_slots",
    "verify_continuous_playback",
]


@dataclass(frozen=True)
class TransmissionSchedule:
    """Arrival times of media segments under a given assignment.

    The schedule is periodic: segment ``s`` in period ``p`` arrives exactly
    ``p * period_len`` slots after its period-0 twin.  We therefore only
    store per-period-local arrival offsets and answer queries for arbitrary
    global segment indices arithmetically.
    """

    assignment: Assignment
    #: ``local_arrival[s]`` = arrival slot of period-local segment ``s`` in period 0.
    local_arrival: tuple[int, ...]

    @classmethod
    def from_assignment(cls, assignment: Assignment) -> "TransmissionSchedule":
        """Build the schedule implied by ``assignment``.

        For each supplier, its assigned segments (in increasing order) finish
        transmission at ``(q + 1) * 2**class`` slots into the period, where
        ``q`` is the segment's rank within the supplier's list.
        """
        arrival = [0] * assignment.period_len
        for supplier, segments in zip(assignment.suppliers, assignment.segment_lists):
            per_segment = 1 << supplier.peer_class
            for rank, local_index in enumerate(segments):
                arrival[local_index] = (rank + 1) * per_segment
        for local_index, slot in enumerate(arrival):
            if slot <= 0:
                raise SchedulingError(
                    f"segment {local_index} has no arrival time; assignment "
                    "does not cover the period"
                )
        return cls(assignment=assignment, local_arrival=tuple(arrival))

    @property
    def period_len(self) -> int:
        """Number of segments (= slots) per period."""
        return self.assignment.period_len

    def arrival_slot(self, segment: int) -> int:
        """Arrival slot of *global* segment index ``segment`` (0-based)."""
        if segment < 0:
            raise SchedulingError(f"segment index must be >= 0, got {segment}")
        period, local = divmod(segment, self.period_len)
        return period * self.period_len + self.local_arrival[local]

    def arrivals(self, num_segments: int) -> Iterator[tuple[int, int]]:
        """Yield ``(segment, arrival_slot)`` for the first ``num_segments``."""
        for segment in range(num_segments):
            yield segment, self.arrival_slot(segment)

    def slack(self, segment: int, start_delay: int) -> int:
        """Slots between a segment's arrival and its playback deadline.

        With playback starting at slot ``start_delay``, segment ``s`` is
        consumed during slot ``start_delay + s``; a non-negative slack means
        the segment arrives in time.
        """
        return (start_delay + segment) - self.arrival_slot(segment)


def min_start_delay_slots(assignment: Assignment) -> int:
    """Minimum buffering delay (in slots) achievable under ``assignment``.

    Continuous playback starting at slot ``d`` requires
    ``arrival(s) <= d + s`` for every segment ``s``, hence
    ``d = max_s (arrival(s) - s)``.  Periodicity makes the first period the
    binding one: period ``p`` adds ``p * period_len`` to both sides.
    """
    schedule = TransmissionSchedule.from_assignment(assignment)
    return max(
        schedule.local_arrival[s] - s for s in range(assignment.period_len)
    )


def verify_continuous_playback(
    assignment: Assignment, start_delay: int, num_segments: int | None = None
) -> bool:
    """Check that playback starting at slot ``start_delay`` never stalls.

    Parameters
    ----------
    assignment:
        The per-period media-data assignment.
    start_delay:
        Candidate buffering delay in slots.
    num_segments:
        How many segments to verify explicitly.  Defaults to three periods,
        which (with the periodicity argument above) is already redundant —
        but tests use larger horizons as belt-and-braces.
    """
    schedule = TransmissionSchedule.from_assignment(assignment)
    horizon = num_segments if num_segments is not None else 3 * assignment.period_len
    return all(
        schedule.slack(segment, start_delay) >= 0 for segment in range(horizon)
    )
