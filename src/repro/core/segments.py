"""Segment-geometry arithmetic shared by assignment and scheduling.

The media file is CBR and cut into equal segments of playback duration
``δt`` (one *slot*).  For a supplier set whose lowest class is ``L``, the
OTS_p2p assignment covers one *period* of ``2**L`` segments and then repeats
(Section 3).  Within a period, a class-``i`` supplier carries a quota of
``2**(L - i)`` segments, and each of its segments takes ``2**i`` slots to
transmit — so every supplier is busy for exactly the whole period.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.model import ClassLadder, SupplierOffer
from repro.errors import AssignmentError, InfeasibleSessionError

__all__ = [
    "lowest_class",
    "period_segments",
    "quota",
    "check_feasible",
    "segments_in_period",
]


def lowest_class(offers: Sequence[SupplierOffer]) -> int:
    """Numerically largest (i.e. lowest) class among the supplier offers."""
    if not offers:
        raise AssignmentError("supplier set is empty")
    return max(offer.peer_class for offer in offers)


def period_segments(lowest: int) -> int:
    """Number of segments per assignment period: ``2**L`` for lowest class L."""
    if lowest < 1:
        raise AssignmentError(f"lowest class must be >= 1, got {lowest}")
    return 1 << lowest


def quota(peer_class: int, lowest: int) -> int:
    """Per-period segment quota of a class-``i`` supplier: ``2**(L - i)``.

    The quota is proportional to the supplier's bandwidth: it can transmit
    exactly this many segments during one period of ``2**L`` slots.
    """
    if peer_class > lowest:
        raise AssignmentError(
            f"class {peer_class} is lower than the period's lowest class {lowest}"
        )
    return 1 << (lowest - peer_class)


def check_feasible(offers: Sequence[SupplierOffer], ladder: ClassLadder) -> None:
    """Validate the paper's session feasibility condition.

    A peer-to-peer streaming session requires the aggregated out-bound offer
    of its suppliers to equal the playback rate ``R0`` exactly.  Raises
    :class:`InfeasibleSessionError` otherwise.
    """
    total = sum(offer.units for offer in offers)
    if total != ladder.full_rate_units:
        raise InfeasibleSessionError(
            f"supplier offers sum to {total} units; a session needs exactly "
            f"{ladder.full_rate_units} units (R0)"
        )
    for offer in offers:
        if ladder.offer_units(offer.peer_class) != offer.units:
            raise InfeasibleSessionError(
                f"offer of peer {offer.peer_id} ({offer.units} units) does not "
                f"match its class {offer.peer_class}"
            )


def segments_in_period(period_index: int, period_len: int) -> range:
    """Global segment indices covered by the ``period_index``-th period."""
    if period_index < 0:
        raise AssignmentError(f"period index must be >= 0, got {period_index}")
    start = period_index * period_len
    return range(start, start + period_len)
