"""Media-data assignment algorithms (Section 3 of the paper).

The central algorithm is :func:`ots_assignment` — the paper's ``OTS_p2p``
(Figure 2) — which distributes the segments of one assignment period over the
supplying peers so that the requesting peer experiences the minimum possible
buffering delay (``n·δt`` for ``n`` suppliers; Theorem 1).

Two baselines are provided for comparison:

* :func:`contiguous_assignment` — each supplier gets a contiguous block of
  segments proportional to its bandwidth.  This is "Assignment I" in the
  paper's Figure 1 and is *sub*-optimal.
* :func:`round_robin_assignment` — segments are dealt round-robin in
  increasing order, one per supplier per turn, honoring quotas.  A natural
  strawman that is also sub-optimal in general.

All assignments describe a single period of ``2**L`` segments (``L`` = lowest
supplier class present) and repeat verbatim for the rest of the media file.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core import segments as seg
from repro.core.model import ClassLadder, SupplierOffer, sort_offers_descending
from repro.errors import AssignmentError

__all__ = [
    "Assignment",
    "ots_assignment",
    "sweep_assignment",
    "contiguous_assignment",
    "round_robin_assignment",
]


@dataclass(frozen=True)
class Assignment:
    """A per-period media-data assignment.

    Attributes
    ----------
    suppliers:
        The supplier offers, sorted by descending bandwidth (the order used
        by the assignment algorithms).
    period_len:
        Number of segments in one assignment period (``2**L``).
    segment_lists:
        ``segment_lists[j]`` is the tuple of *period-local* segment indices
        (each in ``0..period_len-1``) carried by ``suppliers[j]``, in
        increasing (i.e. transmission) order.
    algorithm:
        Name of the algorithm that produced the assignment, for reporting.
    """

    suppliers: tuple[SupplierOffer, ...]
    period_len: int
    segment_lists: tuple[tuple[int, ...], ...]
    algorithm: str = "ots"

    def __post_init__(self) -> None:
        if len(self.suppliers) != len(self.segment_lists):
            raise AssignmentError(
                "segment_lists and suppliers must have the same length"
            )
        assigned = sorted(
            index for segments in self.segment_lists for index in segments
        )
        if assigned != list(range(self.period_len)):
            raise AssignmentError(
                f"assignment must cover each of the {self.period_len} period "
                f"segments exactly once; got {assigned}"
            )

    @property
    def num_suppliers(self) -> int:
        """Number of supplying peers participating in the session."""
        return len(self.suppliers)

    def supplier_of_segment(self, local_index: int) -> SupplierOffer:
        """Return the supplier carrying period-local segment ``local_index``."""
        for supplier, segments in zip(self.suppliers, self.segment_lists):
            if local_index in segments:
                return supplier
        raise AssignmentError(f"segment {local_index} not covered by assignment")

    def quota_of(self, supplier_index: int) -> int:
        """Number of segments per period carried by ``suppliers[supplier_index]``."""
        return len(self.segment_lists[supplier_index])

    def describe(self) -> str:
        """Human-readable one-line-per-supplier description of the assignment."""
        lines = [f"{self.algorithm} assignment over period of {self.period_len} segments:"]
        for supplier, segments in zip(self.suppliers, self.segment_lists):
            lines.append(
                f"  peer {supplier.peer_id} (class {supplier.peer_class}, "
                f"{supplier.units} units): segments {list(segments)}"
            )
        return "\n".join(lines)


def _prepare(
    offers: Sequence[SupplierOffer], ladder: ClassLadder
) -> tuple[list[SupplierOffer], int, list[int]]:
    """Shared validation: sort offers, compute period length and quotas."""
    if not offers:
        raise AssignmentError("cannot assign media data to an empty supplier set")
    seg.check_feasible(offers, ladder)
    ordered = sort_offers_descending(list(offers))
    lowest = seg.lowest_class(ordered)
    period_len = seg.period_segments(lowest)
    quotas = [seg.quota(offer.peer_class, lowest) for offer in ordered]
    return ordered, period_len, quotas


def ots_assignment(
    offers: Sequence[SupplierOffer], ladder: ClassLadder | None = None
) -> Assignment:
    """Algorithm ``OTS_p2p``: the optimal media-data assignment.

    Each supplier ``j`` of class ``c`` transmits its assigned segments
    back-to-back, so its ``q``-th segment (1-based, in increasing segment
    order) arrives exactly ``q * 2**c`` slots into each period.  The period
    therefore has a fixed *multiset of arrival slots*, and choosing an
    assignment is choosing a matching between segments and arrival slots.
    The buffering delay of a matching is ``max_s (arrival(s) - s)``, which
    is minimized by the **sorted matching**: pair the ``i``-th earliest
    segment with the ``i``-th earliest arrival slot (a standard exchange
    argument — swapping any inversion never decreases the max).

    The sorted matching achieves the Theorem-1 minimum of ``n`` slots for
    ``n`` suppliers; the test suite verifies this against a brute-force
    oracle.  Note that the simplified pseudo-code printed as the paper's
    Figure 2 (see :func:`sweep_assignment`) matches this optimum on the
    paper's worked example but not on every input — the sorted matching
    (not the sweep) is the faithful reading of Theorem 1, and
    ``benchmarks/bench_theorem1_optimality.py`` pins the discrepancy.

    Parameters
    ----------
    offers:
        Supplier offers whose units sum to exactly ``R0``.  Any order is
        accepted; the algorithm sorts them itself.
    ladder:
        The class ladder; defaults to the paper's four classes.

    Returns
    -------
    Assignment
        An optimal per-period assignment (delay ``n`` slots).
    """
    ladder = ladder or ClassLadder()
    ordered, period_len, quotas = _prepare(offers, ladder)

    # Build the arrival-slot multiset: (arrival, supplier index).  Sorting
    # by arrival keeps each supplier's own slots in increasing order, so the
    # per-supplier segment lists come out increasing automatically.
    slots: list[tuple[int, int]] = []
    for j, offer in enumerate(ordered):
        per_segment = 1 << offer.peer_class
        for q in range(1, quotas[j] + 1):
            slots.append((q * per_segment, j))
    slots.sort()

    buckets: list[list[int]] = [[] for _ in ordered]
    for segment, (_arrival, j) in enumerate(slots):
        buckets[j].append(segment)

    return Assignment(
        suppliers=tuple(ordered),
        period_len=period_len,
        segment_lists=tuple(tuple(bucket) for bucket in buckets),
        algorithm="ots",
    )


def sweep_assignment(
    offers: Sequence[SupplierOffer], ladder: ClassLadder | None = None
) -> Assignment:
    """The literal sweep pseudo-code printed as the paper's Figure 2.

    Starting from the period's last segment, repeatedly sweep the suppliers
    in descending-bandwidth order, handing the current segment to the first
    supplier whose quota is not yet exhausted.  This reproduces the paper's
    Section-3 worked example exactly (Assignment II of Figure 1) and is
    optimal on it — but it is *not* optimal for every feasible supplier set
    (e.g. classes ``[1, 3, 3, 3, 4, 4]`` yield delay 7 instead of the
    Theorem-1 minimum 6).  It is retained as a comparison baseline and as
    documentation of the discrepancy; see :func:`ots_assignment` for the
    algorithm that realizes Theorem 1.
    """
    ladder = ladder or ClassLadder()
    ordered, period_len, quotas = _prepare(offers, ladder)
    remaining = list(quotas)
    buckets: list[list[int]] = [[] for _ in ordered]

    segment = period_len - 1
    while segment >= 0:
        for j in range(len(ordered)):
            if remaining[j] > 0:
                buckets[j].append(segment)
                remaining[j] -= 1
                segment -= 1
                if segment < 0:
                    break

    segment_lists = tuple(tuple(sorted(bucket)) for bucket in buckets)
    return Assignment(
        suppliers=tuple(ordered),
        period_len=period_len,
        segment_lists=segment_lists,
        algorithm="sweep",
    )


def contiguous_assignment(
    offers: Sequence[SupplierOffer], ladder: ClassLadder | None = None
) -> Assignment:
    """Baseline "Assignment I" of the paper's Figure 1.

    Segments ``0..period_len-1`` are handed out in contiguous blocks, one
    block per supplier in descending-bandwidth order, block sizes equal to
    the quotas.  Simple and intuition-friendly, but the requesting peer must
    wait longer before playback can start (Figure 1(a) shows ``5δt`` where
    OTS achieves ``4δt``).
    """
    ladder = ladder or ClassLadder()
    ordered, period_len, quotas = _prepare(offers, ladder)
    segment_lists: list[tuple[int, ...]] = []
    cursor = 0
    for q in quotas:
        segment_lists.append(tuple(range(cursor, cursor + q)))
        cursor += q
    return Assignment(
        suppliers=tuple(ordered),
        period_len=period_len,
        segment_lists=tuple(segment_lists),
        algorithm="contiguous",
    )


def round_robin_assignment(
    offers: Sequence[SupplierOffer], ladder: ClassLadder | None = None
) -> Assignment:
    """Baseline: deal segments round-robin from segment 0 upwards.

    Sweeps suppliers in descending-bandwidth order handing out segment
    ``0, 1, 2, ...`` one at a time, skipping suppliers whose quota is
    exhausted.  This is OTS_p2p mirrored: the *low*-bandwidth suppliers get
    early segments, which is close to the worst choice and makes a useful
    pessimistic baseline in benchmarks.
    """
    ladder = ladder or ClassLadder()
    ordered, period_len, quotas = _prepare(offers, ladder)
    remaining = list(quotas)
    buckets: list[list[int]] = [[] for _ in ordered]

    segment = 0
    while segment < period_len:
        for j in range(len(ordered)):
            if remaining[j] > 0:
                buckets[j].append(segment)
                remaining[j] -= 1
                segment += 1
                if segment >= period_len:
                    break

    return Assignment(
        suppliers=tuple(ordered),
        period_len=period_len,
        segment_lists=tuple(tuple(bucket) for bucket in buckets),
        algorithm="round_robin",
    )
