"""Core algorithms of the paper: the model, OTS_p2p, and DAC_p2p mechanics.

This package contains the paper's primary contribution in pure, simulator-
independent form:

* :mod:`repro.core.model` — the peer/bandwidth-class model of Section 2;
* :mod:`repro.core.segments` — segment-geometry arithmetic;
* :mod:`repro.core.assignment` — Algorithm OTS_p2p and baseline assignments;
* :mod:`repro.core.schedule` — transmission timelines and buffering delay;
* :mod:`repro.core.theorems` — Theorem 1 and a brute-force optimality oracle;
* :mod:`repro.core.admission` — DAC_p2p supplier-side probability vectors;
* :mod:`repro.core.requesting` — DAC_p2p requester-side decision logic;
* :mod:`repro.core.capacity` — system-capacity accounting.
"""

from repro.core.model import (
    ClassLadder,
    Peer,
    PeerRole,
    SupplierOffer,
)
from repro.core.assignment import (
    Assignment,
    contiguous_assignment,
    ots_assignment,
    round_robin_assignment,
    sweep_assignment,
)
from repro.core.schedule import (
    TransmissionSchedule,
    min_start_delay_slots,
    verify_continuous_playback,
)
from repro.core.theorems import theorem1_min_delay_slots, brute_force_min_delay_slots
from repro.core.admission import AdmissionVector, SupplierAdmissionState
from repro.core.requesting import (
    CandidateReport,
    ProbeOutcome,
    backoff_delay,
    choose_reminder_set,
    greedy_fill,
)
from repro.core.capacity import CapacityLedger, max_capacity_sessions

__all__ = [
    "ClassLadder",
    "Peer",
    "PeerRole",
    "SupplierOffer",
    "Assignment",
    "ots_assignment",
    "sweep_assignment",
    "contiguous_assignment",
    "round_robin_assignment",
    "TransmissionSchedule",
    "min_start_delay_slots",
    "verify_continuous_playback",
    "theorem1_min_delay_slots",
    "brute_force_min_delay_slots",
    "AdmissionVector",
    "SupplierAdmissionState",
    "CandidateReport",
    "ProbeOutcome",
    "greedy_fill",
    "choose_reminder_set",
    "backoff_delay",
    "CapacityLedger",
    "max_capacity_sessions",
]
