"""Requester-side DAC_p2p logic (Section 4.2 of the paper).

A requesting peer of class ``c``:

1. obtains ``M`` random candidate supplying peers (with classes) from the
   lookup substrate;
2. contacts them from high class to low class; each contacted candidate that
   is up and idle grants with probability ``Pa[c]`` of its own vector;
3. accepts granted offers greedily while they fit the remaining bandwidth
   deficit — the power-of-two offer ladder guarantees the greedy descending
   fill is exact (see :func:`greedy_fill`);
4. is **admitted** when the accepted offers sum to exactly ``R0``; otherwise
   it is **rejected**, leaves *reminders* with busy candidates that favor
   class ``c`` (up to the shortfall, high class first —
   :func:`choose_reminder_set`), and backs off exponentially
   (:func:`backoff_delay`).

This module is pure decision logic over candidate *reports*; the simulation
layer gathers the reports (probing peers over the transport) and applies the
outcome.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.model import ClassLadder
from repro.errors import ConfigurationError

__all__ = [
    "CandidateStatus",
    "CandidateReport",
    "ProbeOutcome",
    "greedy_fill",
    "choose_reminder_set",
    "backoff_delay",
    "candidate_contact_order",
]


class CandidateStatus(enum.Enum):
    """What a requesting peer learns when it contacts a candidate supplier."""

    GRANTED = "granted"          # up, idle, and passed the probability test
    DENIED = "denied"            # up, idle, but failed the probability test
    BUSY = "busy"                # up, but serving another session
    DOWN = "down"                # unreachable


@dataclass(frozen=True, slots=True)
class CandidateReport:
    """Result of contacting one candidate supplying peer.

    ``favors_requester`` is only meaningful for ``BUSY`` candidates: it
    records whether the busy supplier *currently favors* the requester's
    class, the precondition for it to accept a reminder.
    """

    peer_id: int
    peer_class: int
    units: int
    status: CandidateStatus
    favors_requester: bool = False


@dataclass(frozen=True)
class ProbeOutcome:
    """The requester's decision after contacting its candidates.

    Attributes
    ----------
    admitted:
        Whether the aggregated granted bandwidth reached ``R0``.
    enlisted:
        The granted candidates actually used for the session (their units sum
        to exactly ``R0`` when ``admitted``); empty otherwise.
    reminded:
        Busy candidates that receive a reminder (only when rejected).
    shortfall_units:
        ``R0 - granted`` in units at the moment the probe ended (0 when
        admitted).
    """

    admitted: bool
    enlisted: tuple[CandidateReport, ...]
    reminded: tuple[CandidateReport, ...]
    shortfall_units: int


def candidate_contact_order(
    candidates: Sequence[CandidateReport],
) -> list[CandidateReport]:
    """Order candidates the way the paper prescribes: high class first.

    Ties are broken by peer id so simulations are deterministic for a fixed
    RNG seed.
    """
    return sorted(candidates, key=lambda c: (c.peer_class, c.peer_id))


def greedy_fill(
    granted: Sequence[CandidateReport], ladder: ClassLadder
) -> tuple[list[CandidateReport], int]:
    """Select granted offers covering ``R0`` exactly, largest offers first.

    Scanning offers in descending order of units, an offer is taken whenever
    it does not overshoot the remaining deficit.  Because every offer is
    ``R0 / 2**i`` and the deficit starts at ``R0``, the deficit is always a
    multiple of the current offer when scanning descending — so greedy never
    strands bandwidth and fills exactly whenever any subset can.

    Returns ``(selected, remaining_deficit_units)``; a zero deficit means a
    feasible session.
    """
    deficit = ladder.full_rate_units
    selected: list[CandidateReport] = []
    for report in sorted(granted, key=lambda c: (-c.units, c.peer_id)):
        if report.status is not CandidateStatus.GRANTED:
            raise ConfigurationError(
                f"greedy_fill given a non-granted report: {report.status}"
            )
        if report.units <= deficit:
            selected.append(report)
            deficit -= report.units
        if deficit == 0:
            break
    return selected, deficit


def choose_reminder_set(
    busy_candidates: Sequence[CandidateReport],
    shortfall_units: int,
) -> list[CandidateReport]:
    """Pick the busy candidates that receive a reminder (paper Section 4.2).

    From high-class to low-class busy candidates, take the first ones that
    (1) currently favor the requester's class and (2) whose aggregate offer
    covers — without overshooting — the requester's bandwidth shortfall.
    The same power-of-two argument as in :func:`greedy_fill` applies, so the
    scan is a plain greedy fill against ``shortfall_units``.
    """
    if shortfall_units <= 0:
        return []
    remaining = shortfall_units
    chosen: list[CandidateReport] = []
    ordered = sorted(busy_candidates, key=lambda c: (-c.units, c.peer_id))
    for report in ordered:
        if report.status is not CandidateStatus.BUSY or not report.favors_requester:
            continue
        if report.units <= remaining:
            chosen.append(report)
            remaining -= report.units
        if remaining == 0:
            break
    return chosen


def backoff_delay(
    rejections: int, t_bkf_seconds: float, e_bkf: float
) -> float:
    """Backoff before the next retry after the ``rejections``-th rejection.

    The paper: after the ``i``-th rejection a requesting peer waits
    ``T_bkf * E_bkf**(i-1)`` before asking again (``T_bkf = 10 min`` and
    ``E_bkf = 2`` in the evaluation; Figure 9 sweeps ``E_bkf``).
    """
    if rejections < 1:
        raise ConfigurationError(
            f"backoff is defined after the first rejection, got {rejections}"
        )
    if t_bkf_seconds <= 0 or e_bkf < 1:
        raise ConfigurationError(
            f"invalid backoff parameters T_bkf={t_bkf_seconds}, E_bkf={e_bkf}"
        )
    return t_bkf_seconds * e_bkf ** (rejections - 1)
