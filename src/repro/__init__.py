"""repro — a full reproduction of *On Peer-to-Peer Media Streaming*.

Xu, Hefeeda, Hambrusch, Bhargava (ICDCS 2002) studied two problems in
peer-to-peer media streaming with heterogeneous peer bandwidth:

1. **Media data assignment** — Algorithm ``OTS_p2p`` distributes a CBR
   stream's segments over multiple supplying peers so the requesting peer
   sees the provably minimum buffering delay (``n·δt`` for ``n`` suppliers).
2. **Fast capacity amplification** — Protocol ``DAC_p2p`` is a distributed
   differentiated admission control scheme (probability vectors, idle
   elevation, reminders, exponential backoff) that grows total streaming
   capacity quickly and rewards peers for pledging more out-bound bandwidth.

This package implements both, every substrate they need (discrete-event
simulator, Napster-style directory and a Chord DHT, streaming/playback
models), the paper's baselines, and a benchmark harness regenerating every
figure and table of the paper's evaluation.

Quickstart
----------
>>> from repro import SimulationConfig, run_simulation
>>> result = run_simulation(SimulationConfig().scaled(0.02))
>>> result.metrics.final_capacity() > 0
True

See ``examples/quickstart.py`` for a guided tour,
``docs/ARCHITECTURE.md`` for the module-by-module map to paper sections,
and ``docs/EXPERIMENTS.md`` for the CLI reference with one recipe per
paper figure/table.
"""

from repro.core.model import ClassLadder, Peer, PeerRole, SupplierOffer
from repro.core.assignment import (
    Assignment,
    contiguous_assignment,
    ots_assignment,
    round_robin_assignment,
    sweep_assignment,
)
from repro.core.schedule import (
    TransmissionSchedule,
    min_start_delay_slots,
    verify_continuous_playback,
)
from repro.core.theorems import theorem1_min_delay_slots
from repro.core.admission import AdmissionVector, SupplierAdmissionState
from repro.core.capacity import CapacityLedger, max_capacity_sessions
from repro.streaming.media import MediaFile
from repro.streaming.session import ActiveSession, StreamingSession, plan_session
from repro._version import __version__
from repro.orchestration.batch import run_batch
from repro.orchestration.runspec import RunSpec
from repro.orchestration.study import ResultSet, RunRecord, Study
from repro.orchestration.store import ResultStore
from repro.orchestration.shard import (
    ClaimRegistry,
    merge_stores,
    shard_run,
    store_status,
)
from repro.scenarios import Scenario, get_scenario, scenario_names
from repro.simulation.config import SimulationConfig
from repro.simulation.kernel import CalendarKernel, EventKernel, HeapKernel
from repro.simulation.lifecycle import (
    LIFECYCLE_NAMES,
    RECOVERY_MODES,
    LifecycleDynamics,
    LifecycleModel,
    make_lifecycle,
)
from repro.simulation.probes import MetricsPipeline, Probe
from repro.simulation.runner import (
    SimulationResult,
    compare_protocols,
    run_simulation,
    sweep_parameter,
)
from repro.simulation.system import StreamingSystem
from repro.analysis.replication import ReplicatedResult, replicate
from repro.analysis.experiments import run_experiment

__all__ = [
    "__version__",
    # core model
    "ClassLadder",
    "Peer",
    "PeerRole",
    "SupplierOffer",
    # OTS_p2p and baselines
    "Assignment",
    "ots_assignment",
    "sweep_assignment",
    "contiguous_assignment",
    "round_robin_assignment",
    "TransmissionSchedule",
    "min_start_delay_slots",
    "verify_continuous_playback",
    "theorem1_min_delay_slots",
    # DAC_p2p mechanics
    "AdmissionVector",
    "SupplierAdmissionState",
    # capacity
    "CapacityLedger",
    "max_capacity_sessions",
    # streaming
    "MediaFile",
    "StreamingSession",
    "ActiveSession",
    "plan_session",
    # simulation
    "SimulationConfig",
    "StreamingSystem",
    "SimulationResult",
    "run_simulation",
    "compare_protocols",
    "sweep_parameter",
    # event kernels and metric probes
    "EventKernel",
    "HeapKernel",
    "CalendarKernel",
    "MetricsPipeline",
    "Probe",
    # session-lifecycle dynamics
    "LifecycleModel",
    "LifecycleDynamics",
    "make_lifecycle",
    "LIFECYCLE_NAMES",
    "RECOVERY_MODES",
    # scenarios and orchestration
    "Scenario",
    "get_scenario",
    "scenario_names",
    "run_batch",
    # studies: declarative grids, records, caching
    "Study",
    "RunSpec",
    "RunRecord",
    "ResultSet",
    "ResultStore",
    # sharded, crash-safe execution
    "ClaimRegistry",
    "shard_run",
    "merge_stores",
    "store_status",
    # replication and experiments
    "replicate",
    "ReplicatedResult",
    "run_experiment",
]
