"""Fluid (mean-field) model of the self-growing streaming system.

The paper argues informally that the system's capacity grows because every
served requester joins the supply side.  That feedback loop has a clean
mean-field description which this module integrates numerically:

* ``C(t)`` — supply in *sessions* (the capacity of Figure 4),
* ``B(t)`` — sessions currently in progress,
* ``Q(t)`` — backlog of peers waiting to be admitted,
* ``λ(t)`` — the first-request arrival rate of the configured pattern.

Per small step ``dt``::

    Q += λ(t)·dt                        (new demand)
    a  = min(Q, max(0, C − B))          (admissions fill free supply)
    B += a;  Q −= a
    after the show time T:  B −= a;  C += a·ĝ

where ``ĝ`` is the mean offer of the requester class mix in sessions per
peer (the paper's mix: 0.15).  The model ignores probing granularity
(``M``), admission probabilities and backoff quantization — it is the
*capacity skeleton* of the protocol, useful to

* sanity-check the simulator's Figure-4 curves against an independent
  derivation (see ``bench_fluid_model``), and
* reason about scaling without running the DES.

The fluid curve is an *upper envelope*: every mechanism it ignores only
delays admissions, so the DES curve should trail it but share its shape
(S-curve saturating at the all-peers-supplying maximum).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.capacity import max_capacity_sessions
from repro.errors import ConfigurationError
from repro.simulation.arrivals import make_pattern
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SeriesPoint

__all__ = ["FluidTrajectory", "fluid_capacity_model", "mean_offer_sessions"]

HOUR = 3600.0


def mean_offer_sessions(config: SimulationConfig) -> float:
    """Mean out-bound offer of the requester mix, in sessions per peer."""
    ladder = config.ladder
    total = config.total_requesting
    if total == 0:
        return 0.0
    units = sum(
        count * ladder.offer_units(peer_class)
        for peer_class, count in config.requesting_peers.items()
    )
    return units / total / ladder.full_rate_units


@dataclass(frozen=True)
class FluidTrajectory:
    """Result of integrating the fluid model."""

    capacity: list[SeriesPoint]       # C(t), sessions
    backlog: list[SeriesPoint]        # Q(t), peers waiting
    in_progress: list[SeriesPoint]    # B(t), running sessions
    admitted_total: float             # peers served by the horizon

    def final_capacity(self) -> float:
        """Capacity at the end of the horizon."""
        return self.capacity[-1].value if self.capacity else 0.0


def fluid_capacity_model(
    config: SimulationConfig, step_seconds: float = 60.0
) -> FluidTrajectory:
    """Integrate the mean-field model for ``config``'s workload.

    Parameters
    ----------
    config:
        Simulation configuration; population, pattern, show time and
        horizon are used (protocol knobs are deliberately ignored — the
        fluid model is protocol-free).
    step_seconds:
        Integration step; one minute resolves the paper's 60-minute show
        time comfortably.
    """
    if step_seconds <= 0:
        raise ConfigurationError(f"step must be > 0, got {step_seconds}")

    pattern = make_pattern(config.arrival_pattern, config.arrival_window_seconds)
    total_peers = config.total_requesting
    gain = mean_offer_sessions(config)
    show = config.show_seconds
    steps_per_show = max(1, round(show / step_seconds))

    ladder = config.ladder
    seed_units = sum(
        count * ladder.offer_units(peer_class)
        for peer_class, count in config.seed_suppliers.items()
    )
    capacity = seed_units / ladder.full_rate_units
    backlog = 0.0
    in_progress = 0.0
    admitted_total = 0.0
    completions: deque[float] = deque([0.0] * steps_per_show)

    capacity_series: list[SeriesPoint] = []
    backlog_series: list[SeriesPoint] = []
    progress_series: list[SeriesPoint] = []

    sample_every = max(1, round(HOUR / step_seconds))
    num_steps = round(config.horizon_seconds / step_seconds)

    for step in range(num_steps + 1):
        t = step * step_seconds
        if step % sample_every == 0:
            hour = t / HOUR
            capacity_series.append(SeriesPoint(hour, capacity))
            backlog_series.append(SeriesPoint(hour, backlog))
            progress_series.append(SeriesPoint(hour, in_progress))
        if step == num_steps:
            break

        # demand: new first requests during this step
        mass = pattern.cumulative(min(t + step_seconds, pattern.window_seconds))
        mass -= pattern.cumulative(min(t, pattern.window_seconds))
        backlog += mass * total_peers

        # sessions finishing this step free suppliers and add new supply
        finished = completions.popleft()
        in_progress -= finished
        capacity += finished * gain

        # admissions fill whatever supply is free
        free = max(0.0, capacity - in_progress)
        admissions = min(backlog, free)
        backlog -= admissions
        in_progress += admissions
        admitted_total += admissions
        completions.append(admissions)

    return FluidTrajectory(
        capacity=capacity_series,
        backlog=backlog_series,
        in_progress=progress_series,
        admitted_total=admitted_total,
    )
