"""Statistics helpers for simulation output series.

All series are lists of :class:`~repro.simulation.metrics.SeriesPoint`
(hour, value).  Helpers here never assume uniform sampling — different
classes' series can start at different hours (a class has no suppliers
until its first promotion), so alignment is by hour, not by index.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.simulation.metrics import SeriesPoint

__all__ = [
    "value_at_hour",
    "align_series",
    "windowed_mean",
    "mean_confidence_interval",
    "series_max",
    "area_under_series",
]


def value_at_hour(
    series: Sequence[SeriesPoint], hour: float, default: float = math.nan
) -> float:
    """Value of the last sample at or before ``hour`` (step interpolation)."""
    best = default
    for point in series:
        if point.hour <= hour:
            best = point.value
        else:
            break
    return best


def align_series(
    named_series: dict[object, Sequence[SeriesPoint]], hours: Sequence[float]
) -> dict[object, list[float]]:
    """Sample several series at common hours (step interpolation)."""
    return {
        name: [value_at_hour(series, hour) for hour in hours]
        for name, series in named_series.items()
    }


def windowed_mean(
    series: Sequence[SeriesPoint], window_hours: float
) -> list[SeriesPoint]:
    """Non-overlapping window means of a series (Figure 7's 3-hour bins)."""
    if window_hours <= 0:
        raise ValueError(f"window must be > 0, got {window_hours}")
    bins: dict[int, list[float]] = {}
    for point in series:
        bins.setdefault(int(point.hour // window_hours), []).append(point.value)
    return [
        SeriesPoint(hour=(index + 0.5) * window_hours, value=sum(vals) / len(vals))
        for index, vals in sorted(bins.items())
    ]


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float]:
    """Mean and half-width of a normal-approximation confidence interval.

    Used by multi-seed experiment replications; with a single value the
    half-width is zero.
    """
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(variance / n)


def series_max(series: Sequence[SeriesPoint]) -> float:
    """Largest value in a series (``nan`` when empty)."""
    return max((point.value for point in series), default=math.nan)


def area_under_series(series: Sequence[SeriesPoint]) -> float:
    """Trapezoidal integral of a series over hours.

    A capacity curve's area is a scalar "how fast did it grow" summary used
    by ablation benches to compare protocols with a single number.
    """
    total = 0.0
    for previous, current in zip(series, series[1:]):
        width = current.hour - previous.hour
        total += width * (previous.value + current.value) / 2.0
    return total
