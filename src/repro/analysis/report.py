"""Renderers that print each paper table/figure from simulation results.

Every function returns a string containing the same rows/series the paper
reports — a table for Table 1, an ASCII chart plus sampled values for each
figure.  The benchmark harness calls these and checks the qualitative
claims; ``docs/EXPERIMENTS.md`` holds the recipe regenerating each
artifact.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.plots import ascii_chart, render_table
from repro.analysis.stats import align_series, value_at_hour, windowed_mean
from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    sweep_assignment,
)
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import min_start_delay_slots
from repro.simulation.runner import SimulationResult

__all__ = [
    "figure1_report",
    "figure4_report",
    "figure5_report",
    "figure6_report",
    "table1_report",
    "figure7_report",
    "figure8_report",
    "figure9_report",
    "sample_hours",
]


def sample_hours(horizon_hours: float = 144.0, step: float = 12.0) -> list[float]:
    """Canonical hours at which reports tabulate time series."""
    hours = [0.0]
    hour = step
    while hour <= horizon_hours:
        hours.append(hour)
        hour += step
    return hours


# ----------------------------------------------------------------------
# Figure 1 — media data assignments and their buffering delays
# ----------------------------------------------------------------------
def figure1_report(ladder: ClassLadder | None = None) -> str:
    """The paper's Figure 1: Assignment I vs Assignment II (OTS_p2p).

    Four suppliers of classes 1, 2, 3, 3 — contiguous assignment needs a
    5-slot buffering delay, OTS_p2p only 4 (= the number of suppliers).
    """
    ladder = ladder or ClassLadder(4)
    offers = [
        SupplierOffer(1, 1, ladder.offer_units(1)),
        SupplierOffer(2, 2, ladder.offer_units(2)),
        SupplierOffer(3, 3, ladder.offer_units(3)),
        SupplierOffer(4, 3, ladder.offer_units(3)),
    ]
    contiguous = contiguous_assignment(offers, ladder)
    paper_sweep = sweep_assignment(offers, ladder)
    optimal = ots_assignment(offers, ladder)
    lines = [
        "Figure 1 — different media data assignments, different buffering delay",
        "",
        "(a) Assignment I (contiguous blocks):",
        contiguous.describe(),
        f"    buffering delay: {min_start_delay_slots(contiguous)} x dt   (paper: 5 x dt)",
        "",
        "(b) Assignment II (the paper's Figure-2 sweep):",
        paper_sweep.describe(),
        f"    buffering delay: {min_start_delay_slots(paper_sweep)} x dt   (paper: 4 x dt)",
        "",
        "(c) OTS_p2p sorted matching (optimal on every input):",
        optimal.describe(),
        f"    buffering delay: {min_start_delay_slots(optimal)} x dt   "
        f"(Theorem 1: n x dt = 4 x dt)",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 4 — system capacity amplification
# ----------------------------------------------------------------------
def figure4_report(
    results: dict[str, SimulationResult], pattern: int, hours: Sequence[float] | None = None
) -> str:
    """Capacity-vs-time chart and samples, DAC vs NDAC, one pattern."""
    hours = list(hours) if hours is not None else sample_hours()
    series = {name: result.metrics.capacity_series for name, result in results.items()}
    chart = ascii_chart(
        series,
        title=f"Figure 4 — system capacity amplification (arrival pattern {pattern})",
        y_label="sessions",
    )
    aligned = align_series(series, hours)
    rows = [
        [f"{hour:.0f}h"] + [f"{aligned[name][i]:.0f}" for name in series]
        for i, hour in enumerate(hours)
    ]
    table = render_table(["hour"] + list(series), rows)
    footer = "\n".join(
        f"  {name}: final capacity {result.metrics.final_capacity():.0f} of "
        f"{result.max_capacity} max ({100 * result.capacity_fraction_of_max:.1f}%)"
        for name, result in results.items()
    )
    return f"{chart}\n\n{table}\n{footer}"


# ----------------------------------------------------------------------
# Figure 5 — per-class accumulative admission rate
# ----------------------------------------------------------------------
def figure5_report(result: SimulationResult, label: str) -> str:
    """Per-class cumulative admission rate chart for one protocol run."""
    series = {
        f"class {c}": points
        for c, points in result.metrics.admission_rate_series.items()
    }
    chart = ascii_chart(
        series,
        title=f"Figure 5 — per-class accumulative admission rate (%), {label}",
        y_label="%",
    )
    final = result.metrics.admission_rate_percent()
    footer = "  final: " + "  ".join(
        f"class {c}: {final[c]:.1f}%" for c in sorted(final)
    )
    return f"{chart}\n{footer}"


# ----------------------------------------------------------------------
# Figure 6 — per-class accumulative average buffering delay
# ----------------------------------------------------------------------
def figure6_report(result: SimulationResult, label: str) -> str:
    """Per-class cumulative mean buffering delay chart for one run."""
    series = {
        f"class {c}": points
        for c, points in result.metrics.buffering_delay_series.items()
    }
    chart = ascii_chart(
        series,
        title=f"Figure 6 — per-class accumulative avg buffering delay (x dt), {label}",
        y_label="x dt",
    )
    final = result.metrics.mean_buffering_delay_slots()
    footer = "  final: " + "  ".join(
        f"class {c}: {final[c]:.2f}" for c in sorted(final)
    )
    return f"{chart}\n{footer}"


# ----------------------------------------------------------------------
# Table 1 — per-class average rejections before admission
# ----------------------------------------------------------------------
def table1_report(
    results: dict[tuple[str, int], SimulationResult],
    paper_values: dict[tuple[int, int], tuple[float, float]] | None = None,
) -> str:
    """The paper's Table 1: 'DAC/NDAC' per class, per arrival pattern.

    ``results`` is keyed by ``(protocol, pattern)``; ``paper_values`` (keyed
    by ``(class, pattern)``) adds the published numbers for side-by-side
    comparison.
    """
    patterns = sorted({pattern for _protocol, pattern in results})
    classes = sorted(
        next(iter(results.values())).metrics.mean_rejections_before_admission()
    )
    headers = ["Avg. rejections"] + [f"Pattern {p}" for p in patterns]
    if paper_values:
        headers += [f"paper P{p}" for p in patterns]
    rows = []
    for peer_class in classes:
        row: list[object] = [f"Class {peer_class}"]
        for pattern in patterns:
            dac = results[("dac", pattern)].metrics.mean_rejections_before_admission()
            ndac = results[("ndac", pattern)].metrics.mean_rejections_before_admission()
            row.append(f"{dac[peer_class]:.2f}/{ndac[peer_class]:.2f}")
        if paper_values:
            for pattern in patterns:
                paper_dac, paper_ndac = paper_values.get(
                    (peer_class, pattern), (float("nan"), float("nan"))
                )
                row.append(f"{paper_dac:.2f}/{paper_ndac:.2f}")
        rows.append(row)
    return render_table(
        headers,
        rows,
        title="Table 1 — per-class average rejections before admission (DAC/NDAC)",
    )


# ----------------------------------------------------------------------
# Figure 7 — adaptivity of differentiation
# ----------------------------------------------------------------------
def figure7_report(result: SimulationResult, window_hours: float = 3.0) -> str:
    """Lowest favored requesting class per supplier class over time."""
    series = {
        f"class {c}": windowed_mean(points, window_hours)
        for c, points in result.metrics.favored_series.items()
        if points
    }
    chart = ascii_chart(
        series,
        title=(
            "Figure 7 — lowest favored class of requesting peers, by supplier "
            f"class ({window_hours:.0f}h windows, pattern "
            f"{result.config.arrival_pattern})"
        ),
        y_label="lowest favored class",
    )
    return chart


# ----------------------------------------------------------------------
# Figure 8 — impact of M and T_out on capacity growth
# ----------------------------------------------------------------------
def figure8_report(
    sweep: dict[object, SimulationResult],
    parameter_label: str,
    hours: Sequence[float] | None = None,
) -> str:
    """Capacity curves for a parameter sweep (Figures 8(a) and 8(b))."""
    hours = list(hours) if hours is not None else sample_hours()
    series = {
        f"{parameter_label}={value}": result.metrics.capacity_series
        for value, result in sweep.items()
    }
    chart = ascii_chart(
        series,
        title=f"Figure 8 — impact of {parameter_label} on capacity amplification",
        y_label="sessions",
    )
    aligned = align_series(series, hours)
    rows = [
        [f"{hour:.0f}h"] + [f"{aligned[name][i]:.0f}" for name in series]
        for i, hour in enumerate(hours)
    ]
    return chart + "\n\n" + render_table(["hour"] + list(series), rows)


# ----------------------------------------------------------------------
# Figure 9 — impact of the backoff factor on overall admission rate
# ----------------------------------------------------------------------
def figure9_report(
    sweep: dict[object, SimulationResult], hours: Sequence[float] | None = None
) -> str:
    """Overall cumulative admission rate for each backoff factor."""
    hours = list(hours) if hours is not None else sample_hours()
    series = {
        f"E_bkf={value:g}": result.metrics.overall_admission_rate_series
        for value, result in sweep.items()
    }
    chart = ascii_chart(
        series,
        title="Figure 9 — impact of E_bkf on overall request admission rate",
        y_label="%",
    )
    rows = []
    for value, result in sweep.items():
        final = value_at_hour(result.metrics.overall_admission_rate_series, hours[-1])
        rows.append([f"E_bkf={value:g}", f"{final:.1f}%"])
    return chart + "\n\n" + render_table(["setting", "final admission rate"], rows)
