"""Analysis and reporting: statistics helpers, ASCII plots, paper renderers.

* :mod:`repro.analysis.stats` — accumulative/windowed means, binning,
  series alignment, multi-seed confidence intervals;
* :mod:`repro.analysis.plots` — dependency-free ASCII line charts and CSV
  export, so every benchmark can *show* its figure in the terminal;
* :mod:`repro.analysis.report` — one renderer per paper table/figure,
  consuming :class:`~repro.simulation.runner.SimulationResult` objects and
  printing the same rows/series the paper reports.
"""

from repro.analysis.stats import (
    align_series,
    mean_confidence_interval,
    value_at_hour,
    windowed_mean,
)
from repro.analysis.plots import ascii_chart, render_table, write_csv
from repro.analysis.replication import ReplicatedResult, replicate
from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.fluid import FluidTrajectory, fluid_capacity_model
from repro.analysis import report

__all__ = [
    "align_series",
    "value_at_hour",
    "windowed_mean",
    "mean_confidence_interval",
    "ascii_chart",
    "render_table",
    "write_csv",
    "replicate",
    "ReplicatedResult",
    "EXPERIMENTS",
    "run_experiment",
    "FluidTrajectory",
    "fluid_capacity_model",
    "report",
]
