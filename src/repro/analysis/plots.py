"""Dependency-free ASCII line charts, tables, and CSV export.

The benchmark harness runs in terminals and CI, so every figure renderer
prints an ASCII chart: multiple named series over a shared x-axis, one
glyph per series, with automatic y-scaling.  CSV export gives the exact
numbers for external plotting.
"""

from __future__ import annotations

import csv
import math
from collections.abc import Sequence
from pathlib import Path

from repro.simulation.metrics import SeriesPoint

__all__ = ["ascii_chart", "render_table", "write_csv", "sparkline"]

#: glyphs assigned to successive series in a chart
GLYPHS = "*o+x#@%&"


def ascii_chart(
    named_series: dict[str, Sequence[SeriesPoint]],
    title: str = "",
    width: int = 72,
    height: int = 18,
    y_label: str = "",
    x_label: str = "hours",
) -> str:
    """Render named series as a multi-line ASCII chart.

    Series are step-sampled onto ``width`` columns between the minimum and
    maximum hour across all series; values are binned onto ``height`` rows.
    Later-listed series draw over earlier ones where they collide.
    """
    series_items = [(name, list(s)) for name, s in named_series.items() if s]
    if not series_items:
        return f"{title}\n(no data)"

    all_points = [p for _name, s in series_items for p in s]
    x_min = min(p.hour for p in all_points)
    x_max = max(p.hour for p in all_points)
    y_min = min(p.value for p in all_points)
    y_max = max(p.value for p in all_points)
    if math.isclose(x_min, x_max):
        x_max = x_min + 1.0
    if math.isclose(y_min, y_max):
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_name, series) in enumerate(series_items):
        glyph = GLYPHS[index % len(GLYPHS)]
        cursor = 0
        last_value: float | None = None
        for column in range(width):
            hour = x_min + (x_max - x_min) * column / (width - 1)
            while cursor < len(series) and series[cursor].hour <= hour:
                last_value = series[cursor].value
                cursor += 1
            if last_value is None:
                continue
            fraction = (last_value - y_min) / (y_max - y_min)
            row = height - 1 - round(fraction * (height - 1))
            grid[row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:,.6g}"
    bottom_label = f"{y_min:,.6g}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    axis = f"{x_min:,.4g}".ljust(width - 8) + f"{x_max:,.4g}".rjust(8)
    lines.append(" " * margin + "+" + "-" * width)
    lines.append(" " * (margin + 1) + axis + f"  ({x_label})")
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}" for i, (name, _s) in enumerate(series_items)
    )
    lines.append(" " * (margin + 1) + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line unicode sparkline of a value sequence."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a plain-text table with right-aligned numeric columns."""
    formatted_rows = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted_rows))
        if formatted_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in formatted_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def write_csv(
    path: Path | str,
    named_series: dict[str, Sequence[SeriesPoint]],
) -> None:
    """Write named series to a CSV file with an ``hour`` column per series.

    Series may have different sampling; each gets its own (hour, value)
    column pair so nothing is interpolated on disk.
    """
    names = list(named_series)
    columns = [list(named_series[name]) for name in names]
    depth = max((len(c) for c in columns), default=0)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        header: list[str] = []
        for name in names:
            header.extend([f"{name}_hour", f"{name}_value"])
        writer.writerow(header)
        for row_index in range(depth):
            row: list[object] = []
            for column in columns:
                if row_index < len(column):
                    row.extend([column[row_index].hour, column[row_index].value])
                else:
                    row.extend(["", ""])
            writer.writerow(row)
