"""Named experiment registry: one entry per paper table/figure.

This is the experiment index of ``docs/EXPERIMENTS.md`` in executable
form: each
experiment id maps to a function that takes a scaled
:class:`~repro.simulation.config.SimulationConfig` and returns the rendered
report text.  The CLI exposes it as ``python -m repro experiment <id>``;
the benchmark harness covers the same ground with assertions attached.

Every simulation-backed experiment declares its grid as a
:class:`~repro.orchestration.study.Study` and renders the resulting
records, so passing a :class:`~repro.orchestration.store.ResultStore`
(CLI: ``--cache-dir``) lets repeated invocations reuse already-computed
runs — the report renderers accept cache-served records and live results
interchangeably.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis import report
from repro.errors import ConfigurationError
from repro.orchestration.study import Study
from repro.simulation.config import SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.orchestration.store import ResultStore

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "list_experiments"]

MINUTE = 60.0


@dataclass(frozen=True)
class Experiment:
    """One regenerable paper artifact."""

    experiment_id: str
    title: str
    runner: Callable[[SimulationConfig, "ResultStore | None", bool], str]


def _fig1(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    return report.figure1_report(config.ladder)


def _fig4(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    result_set = (
        Study.from_config(config)
        .sweep("arrival_pattern", [2, 4])
        .protocols("dac", "ndac")
        .run(store=store, cache=cache)
    )
    sections = []
    for pattern in (2, 4):
        subset = result_set.filter(arrival_pattern=pattern)
        results = {record.protocol: record for record in subset}
        sections.append(report.figure4_report(results, pattern=pattern))
    return "\n\n".join(sections)


def _compare_pattern2(
    config: SimulationConfig, store: "ResultStore | None", cache: bool
) -> dict[str, object]:
    result_set = (
        Study.from_config(config.replace(arrival_pattern=2))
        .protocols("dac", "ndac")
        .run(store=store, cache=cache)
    )
    return {record.protocol: record for record in result_set}


def _fig5(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    results = _compare_pattern2(config, store, cache)
    return (
        report.figure5_report(results["dac"], label="DAC_p2p")
        + "\n\n"
        + report.figure5_report(results["ndac"], label="NDAC_p2p")
    )


def _fig6(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    results = _compare_pattern2(config, store, cache)
    return (
        report.figure6_report(results["dac"], label="DAC_p2p")
        + "\n\n"
        + report.figure6_report(results["ndac"], label="NDAC_p2p")
    )


def _table1(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    result_set = (
        Study.from_config(config)
        .protocols("dac", "ndac")
        .sweep("arrival_pattern", [2, 4])
        .run(store=store, cache=cache)
    )
    results = {
        (record.protocol, record.arrival_pattern): record
        for record in result_set
    }
    return report.table1_report(results)


def _fig7(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    result_set = Study.from_config(
        config.replace(arrival_pattern=4, protocol="dac")
    ).run(store=store, cache=cache)
    return report.figure7_report(result_set[0])


def _fig8a(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    result_set = (
        Study.from_config(config.replace(arrival_pattern=2))
        .sweep("probe_candidates", [4, 8, 16, 32])
        .run(store=store, cache=cache)
    )
    sweep = {record.axis("probe_candidates"): record for record in result_set}
    return report.figure8_report(sweep, parameter_label="M")


def _fig8b(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    result_set = (
        Study.from_config(config.replace(arrival_pattern=2))
        .sweep(
            "t_out_seconds",
            [1 * MINUTE, 2 * MINUTE, 20 * MINUTE, 60 * MINUTE, 120 * MINUTE],
        )
        .run(store=store, cache=cache)
    )
    relabeled = {
        f"{record.axis('t_out_seconds') / MINUTE:.0f}min": record
        for record in result_set
    }
    return report.figure8_report(relabeled, parameter_label="T_out")


def _fig9(
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    result_set = (
        Study.from_config(config.replace(arrival_pattern=2))
        .sweep("e_bkf", [1.0, 2.0, 3.0, 4.0])
        .run(store=store, cache=cache)
    )
    sweep = {record.axis("e_bkf"): record for record in result_set}
    return report.figure9_report(sweep)


EXPERIMENTS: dict[str, Experiment] = {
    e.experiment_id: e
    for e in (
        Experiment("fig1", "Figure 1 — media data assignments", _fig1),
        Experiment("fig4", "Figure 4 — capacity amplification", _fig4),
        Experiment("fig5", "Figure 5 — per-class admission rate", _fig5),
        Experiment("fig6", "Figure 6 — per-class buffering delay", _fig6),
        Experiment("table1", "Table 1 — rejections before admission", _table1),
        Experiment("fig7", "Figure 7 — adaptivity of differentiation", _fig7),
        Experiment("fig8a", "Figure 8(a) — impact of M", _fig8a),
        Experiment("fig8b", "Figure 8(b) — impact of T_out", _fig8b),
        Experiment("fig9", "Figure 9 — impact of E_bkf", _fig9),
    )
}


def list_experiments() -> str:
    """Human-readable list of registered experiments."""
    return "\n".join(
        f"  {experiment.experiment_id:<8} {experiment.title}"
        for experiment in EXPERIMENTS.values()
    )


def run_experiment(
    experiment_id: str,
    config: SimulationConfig,
    store: "ResultStore | None" = None,
    cache: bool = True,
) -> str:
    """Run one experiment by id and return its rendered report.

    With a ``store``, the experiment's grid is served from (and written
    back to) the on-disk record cache instead of recomputing every run;
    ``cache=False`` forces re-execution while still writing fresh
    records back.
    """
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known:\n{list_experiments()}"
        ) from None
    return experiment.runner(config, store, cache)
