"""Named experiment registry: one entry per paper table/figure.

This mirrors DESIGN.md §4's experiment index in executable form: each
experiment id maps to a function that takes a scaled
:class:`~repro.simulation.config.SimulationConfig` and returns the rendered
report text.  The CLI exposes it as ``python -m repro experiment <id>``;
the benchmark harness covers the same ground with assertions attached.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis import report
from repro.errors import ConfigurationError
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import compare_protocols, run_simulation, sweep_parameter

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "list_experiments"]

MINUTE = 60.0


@dataclass(frozen=True)
class Experiment:
    """One regenerable paper artifact."""

    experiment_id: str
    title: str
    runner: Callable[[SimulationConfig], str]


def _fig1(config: SimulationConfig) -> str:
    return report.figure1_report(config.ladder)


def _fig4(config: SimulationConfig) -> str:
    sections = []
    for pattern in (2, 4):
        results = compare_protocols(config.replace(arrival_pattern=pattern))
        sections.append(report.figure4_report(results, pattern=pattern))
    return "\n\n".join(sections)


def _fig5(config: SimulationConfig) -> str:
    results = compare_protocols(config.replace(arrival_pattern=2))
    return (
        report.figure5_report(results["dac"], label="DAC_p2p")
        + "\n\n"
        + report.figure5_report(results["ndac"], label="NDAC_p2p")
    )


def _fig6(config: SimulationConfig) -> str:
    results = compare_protocols(config.replace(arrival_pattern=2))
    return (
        report.figure6_report(results["dac"], label="DAC_p2p")
        + "\n\n"
        + report.figure6_report(results["ndac"], label="NDAC_p2p")
    )


def _table1(config: SimulationConfig) -> str:
    results = {
        (protocol, pattern): run_simulation(
            config.replace(protocol=protocol, arrival_pattern=pattern)
        )
        for protocol in ("dac", "ndac")
        for pattern in (2, 4)
    }
    return report.table1_report(results)


def _fig7(config: SimulationConfig) -> str:
    result = run_simulation(config.replace(arrival_pattern=4, protocol="dac"))
    return report.figure7_report(result)


def _fig8a(config: SimulationConfig) -> str:
    sweep = sweep_parameter(
        config.replace(arrival_pattern=2), "probe_candidates", [4, 8, 16, 32]
    )
    return report.figure8_report(sweep, parameter_label="M")


def _fig8b(config: SimulationConfig) -> str:
    sweep = sweep_parameter(
        config.replace(arrival_pattern=2),
        "t_out_seconds",
        [1 * MINUTE, 2 * MINUTE, 20 * MINUTE, 60 * MINUTE, 120 * MINUTE],
    )
    relabeled = {
        f"{value / MINUTE:.0f}min": result for value, result in sweep.items()
    }
    return report.figure8_report(relabeled, parameter_label="T_out")


def _fig9(config: SimulationConfig) -> str:
    sweep = sweep_parameter(
        config.replace(arrival_pattern=2), "e_bkf", [1.0, 2.0, 3.0, 4.0]
    )
    return report.figure9_report(sweep)


EXPERIMENTS: dict[str, Experiment] = {
    e.experiment_id: e
    for e in (
        Experiment("fig1", "Figure 1 — media data assignments", _fig1),
        Experiment("fig4", "Figure 4 — capacity amplification", _fig4),
        Experiment("fig5", "Figure 5 — per-class admission rate", _fig5),
        Experiment("fig6", "Figure 6 — per-class buffering delay", _fig6),
        Experiment("table1", "Table 1 — rejections before admission", _table1),
        Experiment("fig7", "Figure 7 — adaptivity of differentiation", _fig7),
        Experiment("fig8a", "Figure 8(a) — impact of M", _fig8a),
        Experiment("fig8b", "Figure 8(b) — impact of T_out", _fig8b),
        Experiment("fig9", "Figure 9 — impact of E_bkf", _fig9),
    )
}


def list_experiments() -> str:
    """Human-readable list of registered experiments."""
    return "\n".join(
        f"  {experiment.experiment_id:<8} {experiment.title}"
        for experiment in EXPERIMENTS.values()
    )


def run_experiment(experiment_id: str, config: SimulationConfig) -> str:
    """Run one experiment by id and return its rendered report."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known:\n{list_experiments()}"
        ) from None
    return experiment.runner(config)
