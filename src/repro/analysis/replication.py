"""Multi-seed replication of experiments.

A single simulation run is one draw from the protocol's stochastic
behaviour; publishable comparisons replicate over independent seeds and
report means with confidence intervals.  This module runs a configuration
under ``k`` derived seeds and aggregates:

* scalar metrics (final capacity, per-class rejections/delays/waits) into
  ``mean ± half-width`` records, and
* time series (e.g. the Figure-4 capacity curve) into pointwise mean /
  min / max envelopes on a common hourly grid.

Used by the variance benchmark and available to downstream users who want
error bars on any of the paper's figures.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.stats import mean_confidence_interval, value_at_hour
from repro.orchestration.study import Aggregate
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SeriesPoint
from repro.simulation.runner import SimulationResult

__all__ = ["ScalarSummary", "SeriesEnvelope", "ReplicatedResult", "replicate"]


class ScalarSummary(Aggregate):
    """Mean and normal-approximation confidence half-width of a scalar.

    Legacy name for :class:`~repro.orchestration.study.Aggregate` (the
    shape :meth:`~repro.orchestration.study.ResultSet.aggregate`
    returns); kept as a subclass so existing ``isinstance`` checks and
    imports keep working.
    """


@dataclass(frozen=True)
class SeriesEnvelope:
    """Pointwise aggregate of one time series across replications."""

    hours: tuple[float, ...]
    mean: tuple[float, ...]
    low: tuple[float, ...]
    high: tuple[float, ...]

    def mean_series(self) -> list[SeriesPoint]:
        """The mean curve as a plottable series."""
        return [SeriesPoint(h, v) for h, v in zip(self.hours, self.mean)]


@dataclass
class ReplicatedResult:
    """Everything a k-seed replication produced.

    ``results`` may hold live
    :class:`~repro.simulation.runner.SimulationResult` objects or
    cache-served :class:`~repro.orchestration.study.RunRecord` objects —
    every accessor only touches the metrics interface the two share.

    .. deprecated:: 1.1
       Subsumed by :meth:`repro.orchestration.study.ResultSet.aggregate`,
       which generalizes the mean ± CI summaries to any study axis.
    """

    config: SimulationConfig
    seeds: tuple[int, ...]
    results: tuple[SimulationResult, ...]

    # ------------------------------------------------------------------
    def scalar(
        self, extract: Callable[[SimulationResult], float]
    ) -> ScalarSummary:
        """Aggregate any per-run scalar across the replications."""
        values = [extract(result) for result in self.results]
        mean, half = mean_confidence_interval(values)
        return ScalarSummary(mean=mean, half_width=half, samples=tuple(values))

    def final_capacity(self) -> ScalarSummary:
        """Final Figure-4 capacity across seeds."""
        return self.scalar(lambda r: r.metrics.final_capacity())

    def rejections_of_class(self, peer_class: int) -> ScalarSummary:
        """Table-1 entry for one class across seeds."""
        return self.scalar(
            lambda r: r.metrics.mean_rejections_before_admission()[peer_class]
        )

    def delay_of_class(self, peer_class: int) -> ScalarSummary:
        """Figure-6 endpoint for one class across seeds."""
        return self.scalar(
            lambda r: r.metrics.mean_buffering_delay_slots()[peer_class]
        )

    def capacity_envelope(self, step_hours: float = 6.0) -> SeriesEnvelope:
        """Pointwise capacity envelope on a common hourly grid."""
        horizon_hours = self.config.horizon_seconds / 3600.0
        hours = []
        hour = 0.0
        while hour <= horizon_hours:
            hours.append(hour)
            hour += step_hours
        columns = [
            [
                value_at_hour(result.metrics.capacity_series, h, default=0.0)
                for result in self.results
            ]
            for h in hours
        ]
        return SeriesEnvelope(
            hours=tuple(hours),
            mean=tuple(sum(col) / len(col) for col in columns),
            low=tuple(min(col) for col in columns),
            high=tuple(max(col) for col in columns),
        )


def replicate(
    config: SimulationConfig,
    replications: int = 5,
    seed_stride: int = 1,
    jobs: int = 1,
) -> ReplicatedResult:
    """Run ``config`` under ``replications`` derived master seeds.

    Seeds are ``master_seed + i * seed_stride`` so replications are
    reproducible and disjoint; every other parameter is shared.  With
    ``jobs>1`` the seeds run on worker processes; results keep seed order
    and are identical to the serial path.

    .. deprecated:: 1.1
       Thin shim over :class:`~repro.orchestration.study.Study`; new code
       should use ``Study.from_config(config).seeds(k)`` and
       :meth:`~repro.orchestration.study.ResultSet.aggregate`.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    from repro.orchestration.study import Study

    result_set = (
        Study.from_config(config)
        .seeds(replications, stride=seed_stride)
        .run(jobs=jobs)
    )
    return ReplicatedResult(
        config=config,
        seeds=tuple(record.seed for record in result_set),
        results=tuple(record.result for record in result_set),
    )
