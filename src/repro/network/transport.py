"""Message-cost accounting for control traffic.

The protocol's control messages (candidate probes, grants, reminders, DHT
hops) are requests/responses that in a real deployment would each cost a
round trip.  The simulator executes them synchronously — their latency is
negligible against the paper's minutes-scale timers — but this transport
records *what would have been sent*, so experiments can report signalling
overhead (e.g. the probing-traffic cost of large ``M`` that the paper calls
out in Section 5.2(6)).

:class:`Transport` therefore does two things:

* tallies per-message-kind counts and bytes into :class:`MessageStats`;
* accumulates the latency a message *would* incur under the configured
  :class:`~repro.network.topology.LatencyModel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.network.topology import ConstantLatency, LatencyModel

__all__ = ["MessageStats", "Transport"]

#: Nominal control-message sizes in bytes, for overhead reporting.
DEFAULT_MESSAGE_BYTES = {
    "probe": 64,
    "grant": 32,
    "deny": 32,
    "busy": 32,
    "reminder": 48,
    "session_start": 128,
    "session_end": 32,
    "lookup": 64,
    "dht_hop": 64,
}


@dataclass
class MessageStats:
    """Aggregate control-traffic accounting."""

    count_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    total_latency_seconds: float = 0.0

    @property
    def total_messages(self) -> int:
        """Total number of control messages recorded."""
        return sum(self.count_by_kind.values())

    @property
    def total_bytes(self) -> int:
        """Total control bytes recorded."""
        return sum(self.bytes_by_kind.values())

    def snapshot(self) -> dict[str, float]:
        """Plain-dict summary for metrics and reports."""
        return {
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "latency_seconds": self.total_latency_seconds,
            **{f"count_{kind}": count for kind, count in sorted(self.count_by_kind.items())},
        }


class Transport:
    """Synchronous message layer with cost accounting.

    Parameters
    ----------
    latency:
        Model pricing each one-way message; defaults to a small constant.
    message_bytes:
        Mapping of message kind to nominal size; unknown kinds count as 64 B.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        message_bytes: dict[str, int] | None = None,
    ) -> None:
        self.latency = latency if latency is not None else ConstantLatency()
        self.message_bytes = dict(DEFAULT_MESSAGE_BYTES)
        if message_bytes:
            self.message_bytes.update(message_bytes)
        self.stats = MessageStats()
        self._reply_kinds: dict[str, str] = {}

    def send(self, kind: str, src: int, dst: int) -> float:
        """Record a one-way message; returns the latency it would incur."""
        delay = self.latency.one_way_seconds(src, dst)
        self.stats.count_by_kind[kind] += 1
        self.stats.bytes_by_kind[kind] += self.message_bytes.get(kind, 64)
        self.stats.total_latency_seconds += delay
        return delay

    def round_trip(self, kind: str, src: int, dst: int) -> float:
        """Record a request/response pair; returns the round-trip latency.

        Every candidate probe is one of these, so the reply-kind string is
        interned per kind instead of concatenated per call.
        """
        reply = self._reply_kinds.get(kind)
        if reply is None:
            reply = self._reply_kinds[kind] = kind + "_reply"
        return self.send(kind, src, dst) + self.send(reply, dst, src)

    def reset(self) -> None:
        """Clear all recorded statistics."""
        self.stats = MessageStats()
