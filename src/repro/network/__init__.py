"""Peer-to-peer lookup substrate.

The paper leaves candidate discovery to "some peer-to-peer lookup mechanism"
(footnote 4) and names the two archetypes of its era: a centralized
directory server (Napster) and a distributed lookup service (Chord).  This
package implements both, behind a common :class:`~repro.network.lookup.LookupService`
interface that the simulator consumes:

* :mod:`repro.network.directory` — the Napster-style central directory;
* :mod:`repro.network.chord` — a from-scratch Chord DHT (consistent-hash
  ring, finger tables, iterative lookups) plus a supplier index on top;
* :mod:`repro.network.topology` — latency models (constant, random
  geometric graph) used by the transport;
* :mod:`repro.network.transport` — a message-cost model that charges
  latency for probes so experiments can account for signalling overhead.
"""

from repro.network.lookup import LookupService, DirectoryLookup, ChordLookup
from repro.network.directory import CentralDirectory
from repro.network.chord import ChordRing, ChordNode, SupplierIndex
from repro.network.topology import ConstantLatency, GeometricLatency, LatencyModel
from repro.network.transport import Transport, MessageStats

__all__ = [
    "LookupService",
    "DirectoryLookup",
    "ChordLookup",
    "CentralDirectory",
    "ChordRing",
    "ChordNode",
    "SupplierIndex",
    "LatencyModel",
    "ConstantLatency",
    "GeometricLatency",
    "Transport",
    "MessageStats",
]
