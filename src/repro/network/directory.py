"""Napster-style centralized directory (paper footnote 4, option one).

Supplying peers register themselves (per media id) with the directory; a
requesting peer asks for ``M`` uniformly random candidates.  The directory
knows each supplier's class — the paper assumes "the class of each candidate
is also obtained" — but deliberately *not* whether it is busy: discovering
that costs the requester a probe, exactly as in the paper's protocol.

Sampling must be uniform over the current supplier population and O(M); the
implementation keeps an array plus an index map so register/unregister are
O(1) swaps and sampling needs no rejection loops (beyond duplicates when the
population is smaller than ``M``).
"""

from __future__ import annotations

import random

from repro.errors import LookupError_

__all__ = ["CentralDirectory"]


class CentralDirectory:
    """In-memory supplier directory with O(1) updates and uniform sampling."""

    def __init__(self) -> None:
        # media_id -> (list of peer ids, peer id -> position in list)
        self._entries: dict[str, list[int]] = {}
        self._positions: dict[str, dict[int, int]] = {}
        # peer metadata the directory advertises alongside candidates
        self._classes: dict[int, int] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, media_id: str, peer_id: int, peer_class: int) -> None:
        """Add a supplying peer for ``media_id``; idempotent re-registration."""
        entries = self._entries.setdefault(media_id, [])
        positions = self._positions.setdefault(media_id, {})
        if peer_id in positions:
            self._classes[peer_id] = peer_class
            return
        positions[peer_id] = len(entries)
        entries.append(peer_id)
        self._classes[peer_id] = peer_class

    def unregister(self, media_id: str, peer_id: int) -> None:
        """Remove a supplier (churn support); raises if it was never there."""
        positions = self._positions.get(media_id, {})
        if peer_id not in positions:
            raise LookupError_(
                f"peer {peer_id} is not registered for media {media_id!r}"
            )
        entries = self._entries[media_id]
        index = positions.pop(peer_id)
        last = entries.pop()
        if last != peer_id:
            entries[index] = last
            positions[last] = index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def num_suppliers(self, media_id: str) -> int:
        """Current number of registered suppliers for ``media_id``."""
        return len(self._entries.get(media_id, []))

    def class_of(self, peer_id: int) -> int:
        """Advertised class of a registered peer."""
        try:
            return self._classes[peer_id]
        except KeyError:
            raise LookupError_(f"peer {peer_id} unknown to the directory") from None

    def live_entries(self, media_id: str) -> list[int]:
        """The directory's live peer-id array for ``media_id``.

        Returns the *internal* list that :meth:`register` /
        :meth:`unregister` mutate in place, creating it if the media id has
        never been seen.  The array engine
        (:mod:`repro.simulation.arrayengine`) holds onto it so its candidate
        sampling draws from exactly the population — and in exactly the
        order — that :meth:`sample_candidates` would see, without a dict
        lookup per request.  Callers must not mutate the list.
        """
        return self._entries.setdefault(media_id, [])

    def sample_candidates(
        self, media_id: str, count: int, rng: random.Random
    ) -> list[tuple[int, int]]:
        """Return up to ``count`` distinct random ``(peer_id, class)`` pairs.

        When fewer than ``count`` suppliers exist, all of them are returned
        (in random order) — the paper's requester then simply probes a
        shorter candidate list.
        """
        entries = self._entries.get(media_id, [])
        if not entries:
            return []
        if count >= len(entries):
            chosen = list(entries)
            rng.shuffle(chosen)
        else:
            chosen = rng.sample(entries, count)
        classes = self._classes
        return [(peer_id, classes[peer_id]) for peer_id in chosen]
