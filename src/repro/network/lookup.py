"""Unified candidate-lookup interface over the directory and Chord substrates.

The simulator only ever needs one operation: *give me up to M random
candidate supplying peers (with classes) for this media*.  Both substrates
provide it; the adapters below also charge the transport for the control
messages each substrate would generate, so experiments can compare their
signalling overhead (``benchmarks/bench_ablation_lookup.py``).
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.network.chord import ChordRing, SupplierIndex
from repro.network.directory import CentralDirectory
from repro.network.transport import Transport

__all__ = ["LookupService", "DirectoryLookup", "ChordLookup"]


class LookupService(Protocol):
    """What the streaming system requires of a lookup substrate."""

    def register_supplier(self, media_id: str, peer_id: int, peer_class: int) -> None:
        """Publish a new supplying peer."""
        ...

    def unregister_supplier(self, media_id: str, peer_id: int) -> None:
        """Withdraw a supplying peer (churn)."""
        ...

    def candidates(
        self, media_id: str, count: int, requester_id: int, rng: random.Random
    ) -> list[tuple[int, int]]:
        """Up to ``count`` random ``(peer_id, peer_class)`` candidates."""
        ...


class DirectoryLookup:
    """Napster-style lookup: one round trip to a central directory."""

    #: peer id used to represent the directory server in latency accounting
    DIRECTORY_PEER_ID = -1

    def __init__(self, transport: Transport | None = None) -> None:
        self.directory = CentralDirectory()
        self.transport = transport

    def register_supplier(self, media_id: str, peer_id: int, peer_class: int) -> None:
        """Register with the central directory (one control message)."""
        if self.transport is not None:
            self.transport.send("lookup", peer_id, self.DIRECTORY_PEER_ID)
        self.directory.register(media_id, peer_id, peer_class)

    def unregister_supplier(self, media_id: str, peer_id: int) -> None:
        """Unregister from the central directory."""
        if self.transport is not None:
            self.transport.send("lookup", peer_id, self.DIRECTORY_PEER_ID)
        self.directory.unregister(media_id, peer_id)

    def candidates(
        self, media_id: str, count: int, requester_id: int, rng: random.Random
    ) -> list[tuple[int, int]]:
        """One query round trip, then uniform sampling at the server."""
        if self.transport is not None:
            self.transport.round_trip("lookup", requester_id, self.DIRECTORY_PEER_ID)
        return self.directory.sample_candidates(media_id, count, rng)


class ChordLookup:
    """Chord-based lookup: candidates harvested from the supplier index.

    ``node_peer_ids`` determines which peers host DHT nodes; by default the
    seeds (or whoever is passed) form the ring and every supplier merely
    *stores* its index entry, which matches deployments where only stable
    peers serve as DHT infrastructure.
    """

    def __init__(
        self,
        node_peer_ids: list[int],
        bits: int = 32,
        transport: Transport | None = None,
    ) -> None:
        self.ring = ChordRing(bits=bits)
        for peer_id in node_peer_ids:
            self.ring.join(peer_id)
        self.transport = transport
        self._indexes: dict[str, SupplierIndex] = {}

    def _index(self, media_id: str) -> SupplierIndex:
        if media_id not in self._indexes:
            self._indexes[media_id] = SupplierIndex(self.ring, media_id)
        return self._indexes[media_id]

    def _charge_hops(self, requester_id: int, hops_before: int) -> None:
        if self.transport is None:
            return
        hops = self.ring.lookup_hops - hops_before
        for _ in range(max(hops, 1)):
            self.transport.send("dht_hop", requester_id, self.DIRECTORY_PEER_ID)

    DIRECTORY_PEER_ID = -2  # distinct sink id for DHT-hop latency accounting

    def register_supplier(self, media_id: str, peer_id: int, peer_class: int) -> None:
        """Publish the supplier's index entry into the DHT."""
        before = self.ring.lookup_hops
        self._index(media_id).register(peer_id, peer_class)
        self._charge_hops(peer_id, before)

    def unregister_supplier(self, media_id: str, peer_id: int) -> None:
        """Withdraw the supplier's index entry from the DHT."""
        before = self.ring.lookup_hops
        self._index(media_id).unregister(peer_id)
        self._charge_hops(peer_id, before)

    def candidates(
        self, media_id: str, count: int, requester_id: int, rng: random.Random
    ) -> list[tuple[int, int]]:
        """Sample candidates by routing to random ring positions."""
        before = self.ring.lookup_hops
        result = self._index(media_id).sample_candidates(count, rng)
        self._charge_hops(requester_id, before)
        return result
