"""A from-scratch Chord DHT (Stoica et al., SIGCOMM 2001) substrate.

The paper's footnote 4 offers Chord as the distributed way for a requesting
peer to discover candidate supplying peers.  This module implements the
essential Chord machinery —

* an ``m``-bit consistent-hash identifier circle,
* per-node finger tables (``finger[i]`` = successor of ``node + 2**i``),
* eagerly-correct successor/predecessor pointers with joins and leaves,
* iterative ``find_successor`` routing via closest-preceding-finger with
  hop counting, falling back to successor walks when fingers are stale,
* key storage with transfer on join/leave —

plus :class:`SupplierIndex`, the thin layer that maps the streaming
system's "give me M random candidate suppliers" need onto DHT operations.

Determinism: identifiers come from SHA-1 (as in the Chord paper), so ring
positions are reproducible across runs; randomized sampling takes an
explicit ``random.Random``.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from dataclasses import dataclass, field

from repro.errors import LookupError_

__all__ = ["ChordNode", "ChordRing", "SupplierIndex", "chord_id"]

DEFAULT_ID_BITS = 32


def chord_id(name: str, bits: int = DEFAULT_ID_BITS) -> int:
    """Hash ``name`` onto the ``bits``-bit Chord identifier circle (SHA-1)."""
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def _in_half_open(value: int, left: int, right: int, modulus: int) -> bool:
    """True when ``value`` lies in the circular interval ``(left, right]``."""
    value %= modulus
    left %= modulus
    right %= modulus
    if left < right:
        return left < value <= right
    if left > right:
        return value > left or value <= right
    return True  # full circle: a single node owns everything


@dataclass
class ChordNode:
    """One Chord node: identifier, routing state, and its key shard."""

    node_id: int
    peer_id: int
    successor: "ChordNode | None" = None
    predecessor: "ChordNode | None" = None
    fingers: list["ChordNode"] = field(default_factory=list)
    fingers_stale: bool = True
    storage: dict[int, list[tuple[str, object]]] = field(default_factory=dict)

    def store(self, key: int, name: str, value: object) -> None:
        """Store ``(name, value)`` under ``key`` on this node."""
        self.storage.setdefault(key, []).append((name, value))

    def remove(self, key: int, name: str) -> bool:
        """Remove the entry called ``name`` under ``key``; returns success."""
        entries = self.storage.get(key)
        if not entries:
            return False
        kept = [entry for entry in entries if entry[0] != name]
        if len(kept) == len(entries):
            return False
        if kept:
            self.storage[key] = kept
        else:
            del self.storage[key]
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChordNode(id={self.node_id}, peer={self.peer_id})"


class ChordRing:
    """The Chord identifier circle with joins, leaves, routing and storage.

    Successor/predecessor pointers are maintained eagerly (always correct);
    finger tables are rebuilt lazily per node (``fix_fingers``) and marked
    stale ring-wide by membership changes, mirroring how real Chord's
    periodic stabilization eventually repairs fingers while successors keep
    lookups correct in the meantime.
    """

    def __init__(self, bits: int = DEFAULT_ID_BITS) -> None:
        self.bits = bits
        self.modulus = 1 << bits
        self._ids: list[int] = []            # sorted node ids
        self._nodes: dict[int, ChordNode] = {}
        self.lookup_hops: int = 0            # cumulative hop counter
        self.lookups: int = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    @property
    def nodes(self) -> list[ChordNode]:
        """All nodes, in ring order."""
        return [self._nodes[node_id] for node_id in self._ids]

    def join(self, peer_id: int, name: str | None = None) -> ChordNode:
        """Add a node for ``peer_id``; keys it now owns are transferred to it."""
        node_name = name if name is not None else f"peer-{peer_id}"
        node_id = chord_id(node_name, self.bits)
        while node_id in self._nodes:  # resolve the (rare) id collision
            node_name += "'"
            node_id = chord_id(node_name, self.bits)
        node = ChordNode(node_id=node_id, peer_id=peer_id)
        bisect.insort(self._ids, node_id)
        self._nodes[node_id] = node
        self._relink(node)
        self._transfer_keys_to(node)
        self._mark_fingers_stale()
        return node

    def leave(self, node: ChordNode) -> None:
        """Remove ``node``; its keys move to its successor."""
        if node.node_id not in self._nodes:
            raise LookupError_(f"node {node.node_id} is not on the ring")
        index = bisect.bisect_left(self._ids, node.node_id)
        self._ids.pop(index)
        del self._nodes[node.node_id]
        if self._ids:
            successor = self._successor_of(node.node_id)
            for key, entries in node.storage.items():
                for entry_name, value in entries:
                    successor.store(key, entry_name, value)
            self._relink(successor)
            if node.predecessor is not None and node.predecessor is not node:
                self._relink(node.predecessor)
        node.storage.clear()
        self._mark_fingers_stale()

    def _relink(self, node: ChordNode) -> None:
        """Repair successor/predecessor pointers around ``node``."""
        index = bisect.bisect_left(self._ids, node.node_id)
        succ_id = self._ids[(index + 1) % len(self._ids)]
        pred_id = self._ids[(index - 1) % len(self._ids)]
        node.successor = self._nodes[succ_id]
        node.predecessor = self._nodes[pred_id]
        self._nodes[pred_id].successor = node
        self._nodes[succ_id].predecessor = node

    def _successor_of(self, ident: int) -> ChordNode:
        """The live node owning identifier ``ident`` (successor on the circle)."""
        if not self._ids:
            raise LookupError_("the Chord ring is empty")
        index = bisect.bisect_left(self._ids, ident % self.modulus)
        return self._nodes[self._ids[index % len(self._ids)]]

    def _transfer_keys_to(self, node: ChordNode) -> None:
        """Move keys in ``(predecessor, node]`` from the old owner to ``node``."""
        successor = node.successor
        if successor is None or successor is node:
            return
        pred_id = node.predecessor.node_id if node.predecessor else node.node_id
        moving = [
            key
            for key in successor.storage
            if _in_half_open(key, pred_id, node.node_id, self.modulus)
        ]
        for key in moving:
            node.storage[key] = successor.storage.pop(key)

    def _mark_fingers_stale(self) -> None:
        for node in self._nodes.values():
            node.fingers_stale = True

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def fix_fingers(self, node: ChordNode) -> None:
        """Rebuild ``node``'s finger table (Chord's periodic stabilizer)."""
        node.fingers = [
            self._successor_of((node.node_id + (1 << i)) % self.modulus)
            for i in range(self.bits)
        ]
        node.fingers_stale = False

    def _closest_preceding(self, node: ChordNode, key: int) -> ChordNode:
        """Closest finger of ``node`` strictly between ``node`` and ``key``."""
        for finger in reversed(node.fingers):
            if finger.node_id not in self._nodes:
                continue  # stale finger to a departed node
            if _in_half_open(
                finger.node_id, node.node_id, (key - 1) % self.modulus, self.modulus
            ) and finger.node_id != key:
                return finger
        return node

    def find_successor(self, key: int, start: ChordNode | None = None) -> ChordNode:
        """Iteratively route to the node owning ``key``, counting hops.

        Uses finger tables (rebuilding a node's table on first use after a
        membership change) and successor pointers; because successors are
        eagerly correct, the walk always terminates at the right owner.
        """
        if not self._ids:
            raise LookupError_("the Chord ring is empty")
        node = start if start is not None else self._nodes[self._ids[0]]
        self.lookups += 1
        key %= self.modulus
        hops = 0
        limit = 4 * self.bits + len(self._ids)
        while not _in_half_open(key, node.node_id, node.successor.node_id, self.modulus):
            if node.fingers_stale:
                self.fix_fingers(node)
            nxt = self._closest_preceding(node, key)
            if nxt is node:
                nxt = node.successor
            node = nxt
            hops += 1
            if hops > limit:
                raise LookupError_(
                    f"routing for key {key} exceeded {limit} hops; ring corrupt"
                )
        self.lookup_hops += hops
        return node.successor

    @property
    def mean_lookup_hops(self) -> float:
        """Average hops per ``find_successor`` since ring creation."""
        return self.lookup_hops / self.lookups if self.lookups else 0.0

    # ------------------------------------------------------------------
    # storage API
    # ------------------------------------------------------------------
    def put(self, name: str, value: object, start: ChordNode | None = None) -> int:
        """Store ``value`` under the id of ``name``; returns the key."""
        key = chord_id(name, self.bits)
        owner = self.find_successor(key, start)
        owner.store(key, name, value)
        return key

    def get(self, name: str, start: ChordNode | None = None) -> list[object]:
        """Fetch all values stored under ``name`` (empty list if none)."""
        key = chord_id(name, self.bits)
        owner = self.find_successor(key, start)
        return [value for entry_name, value in owner.storage.get(key, []) if entry_name == name]

    def delete(self, name: str, start: ChordNode | None = None) -> bool:
        """Delete the entry stored under ``name``; returns success."""
        key = chord_id(name, self.bits)
        owner = self.find_successor(key, start)
        return owner.remove(key, name)


class SupplierIndex:
    """Candidate-supplier discovery on top of a :class:`ChordRing`.

    Each supplying peer registers one index entry under the DHT name
    ``"{media_id}/{peer_id}"``; entries scatter uniformly around the circle
    because the name is hashed.  To sample candidates, the requester draws a
    random circle position, routes to it, and harvests entries walking
    successors — repeating from fresh random positions until it has ``M``
    distinct candidates.  Harvesting a small window per draw keeps the
    size-bias of "first entry after a random point" negligible; the test
    suite checks the sample is statistically close to uniform.
    """

    #: entries harvested per random draw before redrawing
    WINDOW = 4

    def __init__(self, ring: ChordRing, media_id: str) -> None:
        self.ring = ring
        self.media_id = media_id
        self._registered: dict[int, int] = {}  # peer_id -> class

    def _entry_name(self, peer_id: int) -> str:
        return f"{self.media_id}/{peer_id}"

    def register(self, peer_id: int, peer_class: int) -> None:
        """Publish ``peer_id`` as a supplier of the index's media."""
        if peer_id in self._registered:
            self._registered[peer_id] = peer_class
            return
        self.ring.put(self._entry_name(peer_id), (peer_id, peer_class))
        self._registered[peer_id] = peer_class

    def unregister(self, peer_id: int) -> None:
        """Withdraw a supplier entry (churn support)."""
        if peer_id not in self._registered:
            raise LookupError_(f"peer {peer_id} not registered in supplier index")
        self.ring.delete(self._entry_name(peer_id))
        del self._registered[peer_id]

    @property
    def num_suppliers(self) -> int:
        """Number of currently registered suppliers."""
        return len(self._registered)

    def _harvest(self, start_key: int, want: int) -> list[tuple[int, int]]:
        """Collect up to ``want`` entries walking the ring from ``start_key``."""
        found: list[tuple[int, int]] = []
        node = self.ring.find_successor(start_key)
        visited = 0
        while len(found) < want and visited < len(self.ring):
            for entries in node.storage.values():
                for entry_name, value in entries:
                    if entry_name.startswith(f"{self.media_id}/"):
                        found.append(value)  # (peer_id, peer_class)
            node = node.successor
            visited += 1
        return found

    def sample_candidates(
        self, count: int, rng: random.Random
    ) -> list[tuple[int, int]]:
        """Sample up to ``count`` distinct ``(peer_id, class)`` candidates."""
        if not self._registered:
            return []
        if count >= len(self._registered):
            candidates = list(self._registered.items())
            rng.shuffle(candidates)
            return candidates

        chosen: dict[int, int] = {}
        attempts = 0
        while len(chosen) < count and attempts < 50 * count:
            attempts += 1
            start_key = rng.randrange(self.ring.modulus)
            window = self._harvest(start_key, self.WINDOW)
            if not window:
                continue
            peer_id, peer_class = window[rng.randrange(len(window))]
            chosen.setdefault(peer_id, peer_class)
        return list(chosen.items())
