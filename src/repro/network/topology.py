"""Latency models for the transport substrate.

The paper's simulation does not model network latency — probe exchanges are
instantaneous relative to minutes-scale backoffs — but a reproduction that
charges *zero* for signalling can't quantify the probing-overhead remark the
paper makes about large ``M`` (Section 5.2(6)).  These models give the
transport something principled to charge:

* :class:`ConstantLatency` — every pair of peers is ``rtt/2`` apart; the
  paper-equivalent behaviour with a knob.
* :class:`GeometricLatency` — peers are placed uniformly in a unit square
  and latency is proportional to Euclidean distance, a standard lightweight
  stand-in for Internet delay space (built lazily; no O(n²) matrix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = ["LatencyModel", "ConstantLatency", "GeometricLatency"]


class LatencyModel(Protocol):
    """Anything that can price a one-way message between two peers."""

    def one_way_seconds(self, src: int, dst: int) -> float:
        """One-way delay from peer ``src`` to peer ``dst`` in seconds."""
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Uniform one-way latency between any two distinct peers.

    ``one_way_seconds(p, p)`` is zero — a peer talking to itself (e.g. a
    local directory cache hit) costs nothing.
    """

    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.seconds}")

    def one_way_seconds(self, src: int, dst: int) -> float:
        """Constant delay for distinct peers, zero for self-messages."""
        return 0.0 if src == dst else self.seconds


@dataclass
class GeometricLatency:
    """Latency proportional to distance in a unit square.

    Peer coordinates are derived deterministically from the peer id with a
    splitmix-style hash, so the model needs no per-peer state, scales to any
    population, and is reproducible without an RNG seed handshake.

    Parameters
    ----------
    min_seconds:
        Base propagation delay added to every (distinct-peer) message.
    max_extra_seconds:
        Delay added at the maximum possible distance (``√2``).
    """

    min_seconds: float = 0.01
    max_extra_seconds: float = 0.08

    def __post_init__(self) -> None:
        if self.min_seconds < 0 or self.max_extra_seconds < 0:
            raise ConfigurationError("latency parameters must be >= 0")

    @staticmethod
    def _mix(value: int) -> int:
        """SplitMix64 finalizer: a cheap, well-distributed integer hash."""
        value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return value ^ (value >> 31)

    def position(self, peer_id: int) -> tuple[float, float]:
        """Deterministic position of ``peer_id`` in the unit square."""
        scale = float(1 << 64)
        x = self._mix(2 * peer_id) / scale
        y = self._mix(2 * peer_id + 1) / scale
        return (x, y)

    def one_way_seconds(self, src: int, dst: int) -> float:
        """Distance-proportional one-way delay; zero for self-messages."""
        if src == dst:
            return 0.0
        (x1, y1), (x2, y2) = self.position(src), self.position(dst)
        distance = math.hypot(x2 - x1, y2 - y1)
        return self.min_seconds + self.max_extra_seconds * distance / math.sqrt(2.0)
