"""Declarative experiment grids: the ``Study`` builder and its results.

The paper's whole evaluation is a grid — protocols × arrival patterns ×
parameter sweeps × seeds — and every entry point used to hand-roll its
own corner of it.  A :class:`Study` declares the grid once:

>>> from repro.orchestration.study import Study
>>> study = (Study.from_scenario("flash_crowd", scale=0.02)
...          .protocols("dac", "ndac")
...          .sweep("probe_candidates", [4, 8, 16, 32])
...          .seeds(5))
>>> result_set = study.run(jobs=4)          # doctest: +SKIP

and expands to an ordered list of :class:`~repro.orchestration.runspec.RunSpec`
objects, executes them through the existing
:func:`~repro.orchestration.batch.run_batch` pool, and returns a
:class:`ResultSet` of lightweight, JSON-serializable :class:`RunRecord`
objects.  Passing a :class:`~repro.orchestration.store.ResultStore` to
:meth:`Study.run` memoizes records on disk keyed by spec hash, so a
repeated invocation is served without running a single simulation.

Records carry full provenance (the exact configuration, the package
version, wall time) plus every scalar and series the paper's reports
consume.  :attr:`RunRecord.metrics` exposes the serialized metrics with
the same accessors as a live
:class:`~repro.simulation.metrics.MetricsCollector`, so the report
renderers in :mod:`repro.analysis.report` work identically on a record
loaded from cache and on a freshly computed result.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import io
import itertools
import json
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.orchestration.batch import run_batch
from repro.orchestration.runspec import RunSpec, config_from_dict, config_to_dict
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SeriesPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.orchestration.store import ResultStore
    from repro.simulation.runner import SimulationResult

__all__ = ["Aggregate", "RecordMetrics", "RunRecord", "ResultSet", "Study"]

#: the JSON schema identifier stamped into every exported result set
STUDY_SCHEMA = "repro.study.v1"

_PLAIN_SERIES = (
    "capacity_series",
    "capacity_fractional_series",
    "supplier_count_series",
    "overall_admission_rate_series",
)
_CLASS_SERIES = (
    "admission_rate_series",
    "buffering_delay_series",
    "favored_series",
)
_CLASS_COUNTERS = (
    "first_requests",
    "requests",
    "rejections",
    "admitted",
    "reminders_left",
    "supplier_departures",
    "supplier_rejoins",
)
_CLASS_SCALARS = (
    "mean_rejections_before_admission",
    "mean_buffering_delay_slots",
    "mean_waiting_seconds",
    "admission_rate_percent",
)
#: class-keyed payload of the lifecycle extension's continuity probe —
#: present only in records of lifecycle-enabled runs
_CLASS_CONTINUITY = (
    "interruptions",
    "recovered_sessions",
    "recovery_retries",
    "sessions_lost",
    "interrupted_completions",
    "stall_seconds_sum",
    "mean_recovery_latency_seconds",
    "playback_continuity_index",
)


def _restore_metrics(data: dict) -> dict:
    """Re-int the class keys JSON stringified in a metrics payload."""
    restored = dict(data)
    keyed = _CLASS_COUNTERS + _CLASS_SCALARS + _CLASS_SERIES + _CLASS_CONTINUITY
    for name in keyed:
        if name in restored:
            restored[name] = {int(c): v for c, v in restored[name].items()}
    return restored


class RecordMetrics:
    """Read-only view over a record's serialized metrics payload.

    Mirrors the accessors of a live
    :class:`~repro.simulation.metrics.MetricsCollector` (series of
    :class:`SeriesPoint`, per-class counter dicts, derived-scalar
    methods), so report renderers and downstream analysis accept a
    :class:`RunRecord` anywhere they accept a simulation result.
    """

    def __init__(self, data: dict) -> None:
        self._data = data

    # ---- series ------------------------------------------------------
    def _series(self, name: str) -> list[SeriesPoint]:
        return [SeriesPoint(float(h), float(v)) for h, v in self._data[name]]

    def _class_series(self, name: str) -> dict[int, list[SeriesPoint]]:
        return {
            int(c): [SeriesPoint(float(h), float(v)) for h, v in points]
            for c, points in self._data[name].items()
        }

    @property
    def capacity_series(self) -> list[SeriesPoint]:
        """Figure-4 capacity samples."""
        return self._series("capacity_series")

    @property
    def capacity_fractional_series(self) -> list[SeriesPoint]:
        """Fractional (bandwidth-unit) capacity samples."""
        return self._series("capacity_fractional_series")

    @property
    def supplier_count_series(self) -> list[SeriesPoint]:
        """Supplier head-count samples."""
        return self._series("supplier_count_series")

    @property
    def overall_admission_rate_series(self) -> list[SeriesPoint]:
        """Figure-9 overall cumulative admission rate samples."""
        return self._series("overall_admission_rate_series")

    @property
    def admission_rate_series(self) -> dict[int, list[SeriesPoint]]:
        """Figure-5 per-class cumulative admission rate samples."""
        return self._class_series("admission_rate_series")

    @property
    def buffering_delay_series(self) -> dict[int, list[SeriesPoint]]:
        """Figure-6 per-class cumulative buffering delay samples."""
        return self._class_series("buffering_delay_series")

    @property
    def favored_series(self) -> dict[int, list[SeriesPoint]]:
        """Figure-7 lowest-favored-class snapshots."""
        return self._class_series("favored_series")

    # ---- counters and derived scalars --------------------------------
    def _class_map(self, name: str) -> dict[int, float]:
        return {int(c): v for c, v in self._data[name].items()}

    def _classes(self) -> list[int]:
        """The class labels of this record (the counters always carry them)."""
        return [int(c) for c in self._data["admitted"]]

    def __getattr__(self, name: str):
        if name in _CLASS_COUNTERS:
            return self._class_map(name)
        if name in _CLASS_CONTINUITY:
            # records of lifecycle-free runs carry no continuity payload;
            # mirror the live pipeline's zeros for unsubscribed probes
            if name in self._data:
                return self._class_map(name)
            return {c: 0 for c in self._classes()}
        raise AttributeError(name)

    # ---- continuity (lifecycle extension; mirrors the live pipeline) --
    @property
    def continuity_series(self) -> list[SeriesPoint]:
        """Hourly mean playback continuity index (empty without the probe)."""
        if "continuity_series" not in self._data:
            return []
        return self._series("continuity_series")

    def mean_recovery_latency_seconds(self) -> dict[int, float]:
        """Per-class mean interruption-to-re-admission latency."""
        if "mean_recovery_latency_seconds" in self._data:
            return self._class_map("mean_recovery_latency_seconds")
        return {c: float("nan") for c in self._classes()}

    def playback_continuity_index(self) -> dict[int, float]:
        """Per-class mean playback continuity index (1.0 = stall-free)."""
        if "playback_continuity_index" in self._data:
            return self._class_map("playback_continuity_index")
        return {c: float("nan") for c in self._classes()}

    def mean_rejections_before_admission(self) -> dict[int, float]:
        """Table 1: per-class mean rejections suffered before admission."""
        return self._class_map("mean_rejections_before_admission")

    def mean_buffering_delay_slots(self) -> dict[int, float]:
        """Final per-class mean buffering delay (Figure 6 endpoint)."""
        return self._class_map("mean_buffering_delay_slots")

    def mean_waiting_seconds(self) -> dict[int, float]:
        """Per-class mean waiting time from first request to admission."""
        return self._class_map("mean_waiting_seconds")

    def admission_rate_percent(self) -> dict[int, float]:
        """Final per-class cumulative admission rate (Figure 5 endpoint)."""
        return self._class_map("admission_rate_percent")

    def final_capacity(self) -> float:
        """Last Figure-4 sample (sessions)."""
        series = self._data["capacity_series"]
        return float(series[-1][1]) if series else 0.0

    def to_dict(self) -> dict:
        """The underlying JSON-ready payload."""
        return self._data


@dataclass(frozen=True)
class RunRecord:
    """Everything one run produced, in a JSON-serializable envelope.

    A record is self-describing: it embeds the exact configuration that
    produced it (``config_data``), the package version, the spec hash it
    is cached under, wall time, the full metrics payload and the
    transport's message statistics.  ``result`` holds the live
    :class:`~repro.simulation.runner.SimulationResult` when the record
    was computed in-process; it is ``None`` for records loaded from a
    :class:`~repro.orchestration.store.ResultStore` and is never
    serialized.
    """

    spec_hash: str
    scenario: str | None
    axes: tuple[tuple[str, object], ...]
    config_data: dict
    scalars: dict[str, float]
    metrics_data: dict
    message_stats: dict[str, float] | None
    events_processed: int
    wall_seconds: float
    version: str
    result: "SimulationResult | None" = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, spec: RunSpec, result: "SimulationResult") -> "RunRecord":
        """Stamp a freshly computed simulation result into a record."""
        metrics = result.metrics
        scalars = {
            "final_capacity": metrics.final_capacity(),
            "max_capacity": float(result.max_capacity),
            "capacity_fraction_of_max": result.capacity_fraction_of_max,
        }
        return cls(
            spec_hash=spec.spec_hash,
            scenario=spec.scenario,
            axes=spec.axes,
            config_data=config_to_dict(result.config),
            scalars=scalars,
            metrics_data=metrics.to_dict(),
            message_stats=dict(result.message_stats)
            if result.message_stats is not None
            else None,
            events_processed=result.events_processed,
            wall_seconds=result.wall_seconds,
            version=__version__,
            result=result,
        )

    # ------------------------------------------------------------------
    # identity / provenance
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> str:
        """Admission policy the run used."""
        return str(self.config_data["protocol"])

    @property
    def seed(self) -> int:
        """Master RNG seed the run used."""
        return int(self.config_data["master_seed"])

    @property
    def arrival_pattern(self) -> int:
        """First-request arrival pattern the run used."""
        return int(self.config_data["arrival_pattern"])

    @property
    def config(self) -> SimulationConfig:
        """The exact configuration, rebuilt from the stored provenance."""
        return config_from_dict(self.config_data)

    def axis(self, name: str) -> object:
        """Value of one study axis for this record."""
        for axis_name, value in self.axes:
            if axis_name == name:
                return value
        raise ConfigurationError(
            f"record has no axis {name!r}; axes: "
            f"{[axis_name for axis_name, _ in self.axes]}"
        )

    def with_spec(self, spec: RunSpec) -> "RunRecord":
        """The same measurements rebound to another spec's provenance.

        Used when a cached record (stored by a differently shaped study)
        is served into this study's result set: measurements are
        identical by construction (same spec hash), only the scenario
        label and axis tuple are realigned.
        """
        return dataclasses.replace(self, scenario=spec.scenario, axes=spec.axes)

    # ---- result-like accessors (duck-compatible with SimulationResult)
    @property
    def metrics(self) -> RecordMetrics:
        """Metrics view with the live collector's accessors."""
        return RecordMetrics(self.metrics_data)

    @property
    def max_capacity(self) -> int:
        """Capacity ceiling if every peer became a supplier."""
        return int(self.scalars["max_capacity"])

    @property
    def capacity_fraction_of_max(self) -> float:
        """Final capacity as a fraction of the ceiling."""
        return float(self.scalars["capacity_fraction_of_max"])

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (drops the live ``result`` reference)."""
        return {
            "spec_hash": self.spec_hash,
            "scenario": self.scenario,
            "axes": [[name, value] for name, value in self.axes],
            "config": self.config_data,
            "scalars": dict(self.scalars),
            "metrics": self.metrics_data,
            "message_stats": self.message_stats,
            "events_processed": self.events_processed,
            "wall_seconds": self.wall_seconds,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output (JSON round-trip)."""
        return cls(
            spec_hash=str(data["spec_hash"]),
            scenario=data.get("scenario"),
            axes=tuple((str(name), value) for name, value in data.get("axes", ())),
            config_data=dict(data["config"]),
            scalars={str(k): float(v) for k, v in data["scalars"].items()},
            metrics_data=_restore_metrics(data["metrics"]),
            message_stats=dict(data["message_stats"])
            if data.get("message_stats") is not None
            else None,
            events_processed=int(data["events_processed"]),
            wall_seconds=float(data["wall_seconds"]),
            version=str(data["version"]),
        )

    def fingerprint(self) -> str:
        """Digest of everything except wall time.

        Wall time is the one field that legitimately differs between a
        serial and a parallel execution of the same spec; every other
        byte must match, and this digest is how tests assert that.
        """
        payload = self.to_dict()
        del payload["wall_seconds"]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Aggregate:
    """Mean ± normal-approximation CI half-width of one scalar."""

    mean: float
    half_width: float
    samples: tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.half_width:.2f}"


@dataclass(frozen=True)
class ResultSet:
    """An ordered, immutable collection of run records.

    Supports tabular flattening (:meth:`to_rows`), JSON/CSV export,
    axis-based :meth:`filter`, and seed-collapsing :meth:`aggregate`
    (subsuming the older ``ReplicatedResult`` mean ± CI summaries).
    """

    records: tuple[RunRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> RunRecord:
        return self.records[index]

    # ------------------------------------------------------------------
    def results(self) -> list["SimulationResult | None"]:
        """Live simulation results (``None`` for cache-served records)."""
        return [record.result for record in self.records]

    # ------------------------------------------------------------------
    def _lookup(self, record: RunRecord, name: str) -> object:
        axes = dict(record.axes)
        if name in axes:
            return axes[name]
        if name == "scenario":
            return record.scenario
        if name == "seed":
            return record.seed
        if name in record.config_data:
            return record.config_data[name]
        if name in record.scalars:
            return record.scalars[name]
        raise ConfigurationError(
            f"unknown record key {name!r}; known: axes "
            f"{[axis for axis, _ in record.axes]}, 'scenario', 'seed', "
            "any config field, any scalar metric"
        )

    def filter(
        self,
        predicate: Callable[[RunRecord], bool] | None = None,
        **criteria: object,
    ) -> "ResultSet":
        """Records matching a predicate and/or axis/field equality criteria.

        >>> result_set.filter(protocol="dac", arrival_pattern=2)  # doctest: +SKIP
        """
        kept = []
        for record in self.records:
            if predicate is not None and not predicate(record):
                continue
            if all(
                self._lookup(record, name) == wanted
                for name, wanted in criteria.items()
            ):
                kept.append(record)
        return ResultSet(records=tuple(kept))

    def aggregate(
        self,
        metric: str | Callable[[RunRecord], float] = "final_capacity",
        by: Sequence[str] | None = None,
    ) -> dict[tuple[tuple[str, object], ...], Aggregate]:
        """Collapse seeds into mean ± CI, grouped by the remaining axes.

        ``metric`` is a scalar name from :attr:`RunRecord.scalars` or a
        callable extracting a float from a record.  ``by`` overrides the
        grouping key (default: scenario plus every axis except the seed),
        named like :meth:`filter` criteria.  Returns an ordered mapping
        of group key — a tuple of ``(name, value)`` pairs — to
        :class:`Aggregate`.
        """
        from repro.analysis.stats import mean_confidence_interval

        if callable(metric):
            extract = metric
        else:
            def extract(record: RunRecord, _name: str = metric) -> float:
                if _name not in record.scalars:
                    raise ConfigurationError(
                        f"unknown scalar metric {_name!r}; known: "
                        f"{sorted(record.scalars)} (or pass a callable)"
                    )
                return record.scalars[_name]

        groups: dict[tuple[tuple[str, object], ...], list[float]] = {}
        for record in self.records:
            if by is not None:
                key = tuple((name, self._lookup(record, name)) for name in by)
            else:
                key = (("scenario", record.scenario),) + tuple(
                    (name, value) for name, value in record.axes if name != "seed"
                )
            groups.setdefault(key, []).append(extract(record))
        summaries = {}
        for key, values in groups.items():
            mean, half = mean_confidence_interval(values)
            summaries[key] = Aggregate(
                mean=mean, half_width=half, samples=tuple(values)
            )
        return summaries

    # ------------------------------------------------------------------
    # tabular / serialized forms
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict[str, object]]:
        """One flat dict per record: provenance, axes, headline scalars."""
        rows = []
        for record in self.records:
            row: dict[str, object] = {
                "spec_hash": record.spec_hash,
                "scenario": record.scenario,
                "protocol": record.protocol,
                "seed": record.seed,
                "arrival_pattern": record.arrival_pattern,
            }
            for name, value in record.axes:
                row[name] = value
            row.update(record.scalars)
            metrics = record.metrics
            for peer_class, value in sorted(metrics.admission_rate_percent().items()):
                row[f"admission_rate_class_{peer_class}"] = value
            rejections = metrics.mean_rejections_before_admission()
            for peer_class, value in sorted(rejections.items()):
                row[f"rejections_class_{peer_class}"] = value
            delays = metrics.mean_buffering_delay_slots()
            for peer_class, value in sorted(delays.items()):
                row[f"delay_class_{peer_class}"] = value
            row["events_processed"] = record.events_processed
            row["wall_seconds"] = record.wall_seconds
            row["version"] = record.version
            rows.append(row)
        return rows

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Schema-stamped JSON of every record; optionally written to ``path``."""
        payload = {
            "schema": STUDY_SCHEMA,
            "version": __version__,
            "count": len(self.records),
            "records": [record.to_dict() for record in self.records],
        }
        text = json.dumps(payload, indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def to_csv(self, path: str | Path | None = None) -> str:
        """Flat CSV of :meth:`to_rows`; optionally written to ``path``."""
        rows = self.to_rows()
        columns: list[str] = []
        for row in rows:
            for name in row:
                if name not in columns:
                    columns.append(name)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


class Study:
    """Chainable builder for a grid of simulation runs.

    Build from a named scenario (or several) or from a raw config, add
    axes — protocols, parameter sweeps, seeds — and :meth:`run` the
    expanded grid.  Axes expand in declaration order with seeds
    innermost, so the spec list (and therefore every result set, export
    and cache layout) is deterministic.

    The builder mutates in place and returns itself, so chains read as
    one declaration::

        Study.from_scenario("flash_crowd").protocols("dac", "ndac") \\
             .sweep("probe_candidates", [4, 8, 16, 32]).seeds(5)
    """

    def __init__(
        self,
        base_config: SimulationConfig | None = None,
        scenario_names: Sequence[str] | None = None,
        scale: float = 1.0,
        scenario_label: str | None = None,
    ) -> None:
        if (base_config is None) == (scenario_names is None):
            raise ConfigurationError(
                "a Study starts from either a config or scenario names; "
                "use Study.from_config(...) or Study.from_scenario(...)"
            )
        self._base_config = base_config
        self._scenario_names = list(scenario_names) if scenario_names else None
        self._scenario_label = scenario_label
        self._scale = scale
        self._overrides: dict[str, object] = {}
        self._axes: list[tuple[str, list[object]]] = []
        self._seed_count: int | None = None
        self._seed_stride: int = 1
        self._seed_list: list[int] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls, config: SimulationConfig, scenario: str | None = None
    ) -> "Study":
        """Start from an already expanded config (``scenario`` labels only)."""
        return cls(base_config=config, scenario_label=scenario)

    @classmethod
    def from_scenario(cls, name: str, scale: float = 1.0) -> "Study":
        """Start from one registered scenario at ``scale``."""
        return cls(scenario_names=[name], scale=scale)

    @classmethod
    def from_scenarios(cls, names: Sequence[str], scale: float = 1.0) -> "Study":
        """Start from several scenarios (the outermost grid axis)."""
        names = list(names)
        _reject_duplicates("scenario", names)
        if not names:
            raise ConfigurationError("a Study needs at least one scenario")
        return cls(scenario_names=names, scale=scale)

    # ------------------------------------------------------------------
    # grid axes
    # ------------------------------------------------------------------
    def scenarios(self, *names: str) -> "Study":
        """Add more scenarios to a scenario-based study."""
        if self._scenario_names is None:
            raise ConfigurationError(
                "scenarios() needs a scenario-based study; this one was "
                "built from a raw config"
            )
        combined = self._scenario_names + list(names)
        _reject_duplicates("scenario", combined)
        self._scenario_names = combined
        return self

    def protocols(self, *names: str) -> "Study":
        """Sweep the admission protocol axis."""
        return self.sweep("protocol", names)

    def sweep(self, parameter: str, values: Iterable[object]) -> "Study":
        """Sweep one config field over ``values`` (declaration-ordered axis)."""
        valid = sorted(f.name for f in dataclasses.fields(SimulationConfig))
        if parameter == "master_seed":
            raise ConfigurationError(
                "sweep the seed axis with Study.seeds(), not sweep('master_seed')"
            )
        if parameter not in valid:
            raise ConfigurationError(
                f"unknown sweep parameter {parameter!r}; valid config fields: "
                f"{', '.join(valid)}"
            )
        value_list = list(values)
        if not value_list:
            raise ConfigurationError(
                f"sweep of {parameter!r} needs at least one value"
            )
        _reject_duplicates(parameter, value_list)
        if any(name == parameter for name, _ in self._axes):
            raise ConfigurationError(
                f"parameter {parameter!r} is already a study axis"
            )
        self._axes.append((parameter, value_list))
        return self

    def seeds(
        self, count_or_seeds: int | Iterable[int], stride: int = 1
    ) -> "Study":
        """Replicate every grid point over several master seeds.

        An ``int`` derives that many seeds from each point's base seed
        (``base + i * stride``); an iterable gives explicit seeds.
        """
        if isinstance(count_or_seeds, int):
            if count_or_seeds < 1:
                raise ValueError(
                    f"need at least one seed, got {count_or_seeds}"
                )
            self._seed_count = count_or_seeds
            self._seed_stride = stride
            self._seed_list = None
        else:
            seed_list = [int(seed) for seed in count_or_seeds]
            if not seed_list:
                raise ValueError("need at least one explicit seed")
            _reject_duplicates("seed", seed_list)
            self._seed_list = seed_list
            self._seed_count = None
        return self

    def override(self, **changes: object) -> "Study":
        """Fix config fields for every run (applied before the axes)."""
        valid = {f.name for f in dataclasses.fields(SimulationConfig)}
        for name in changes:
            if name not in valid:
                raise ConfigurationError(
                    f"unknown config field {name!r}; valid: "
                    f"{', '.join(sorted(valid))}"
                )
        self._overrides.update(changes)
        return self

    # ------------------------------------------------------------------
    # expansion and execution
    # ------------------------------------------------------------------
    def _base_configs(self) -> list[tuple[str | None, SimulationConfig]]:
        if self._scenario_names is not None:
            from repro.scenarios import get_scenario

            return [
                (name, get_scenario(name).build_config(scale=self._scale))
                for name in self._scenario_names
            ]
        assert self._base_config is not None
        return [(self._scenario_label, self._base_config)]

    def _seeds_for(self, config: SimulationConfig) -> list[int] | None:
        if self._seed_list is not None:
            return list(self._seed_list)
        if self._seed_count is not None:
            return [
                config.master_seed + i * self._seed_stride
                for i in range(self._seed_count)
            ]
        return None

    def specs(self) -> list[RunSpec]:
        """The ordered expansion of the grid into frozen run specs."""
        specs: list[RunSpec] = []
        axis_names = [name for name, _ in self._axes]
        value_lists = [values for _, values in self._axes]
        for scenario_name, base in self._base_configs():
            if self._overrides:
                base = base.replace(**self._overrides)
            for combo in itertools.product(*value_lists):
                changes = dict(zip(axis_names, combo))
                config = base.replace(**changes) if changes else base
                seeds = self._seeds_for(config)
                axis_values = tuple(zip(axis_names, combo))
                if seeds is None:
                    specs.append(
                        RunSpec(
                            config=config,
                            scenario=scenario_name,
                            axes=axis_values,
                        )
                    )
                    continue
                for seed in seeds:
                    seeded = (
                        config
                        if seed == config.master_seed
                        else config.replace(master_seed=seed)
                    )
                    specs.append(
                        RunSpec(
                            config=seeded,
                            scenario=scenario_name,
                            axes=axis_values + (("seed", seed),),
                        )
                    )
        return specs

    def run(
        self,
        jobs: int = 1,
        store: "ResultStore | None" = None,
        cache: bool = True,
        resume: bool = False,
        owner: str | None = None,
        lease_seconds: float = 900.0,
    ) -> ResultSet:
        """Execute the grid and return its records in spec order.

        ``jobs>1`` fans uncached runs over worker processes via
        :func:`~repro.orchestration.batch.run_batch`; records are
        identical to the serial path up to wall time.  With a ``store``,
        already-computed specs are served from disk (``cache=False``
        forces re-execution; fresh records still land in the store).

        ``resume=True`` (requires a ``store``) re-enters a sharded or
        crashed run through the claim protocol
        (:mod:`repro.orchestration.shard`): cached specs are served,
        unclaimed and expired-lease specs are claimed and executed, and
        specs under a live foreign lease are skipped — their records are
        omitted from the returned set, since another worker is still
        computing them.  After a worker crash, its leases expire and a
        resumed run completes the grid without recomputing finished
        specs.
        """
        specs = self.specs()
        if resume:
            if store is None:
                raise ConfigurationError(
                    "Study.run(resume=True) needs a store: resumption is "
                    "defined by the records and claims already on disk"
                )
            from repro.orchestration.shard import shard_run

            shard_run(
                self, store, owner=owner,
                lease_seconds=lease_seconds, jobs=jobs,
            )
            return self.collect(store, allow_missing=True)
        records: list[RunRecord | None] = [None] * len(specs)
        if store is not None and cache:
            for index, spec in enumerate(specs):
                cached = store.get(spec.spec_hash)
                if cached is not None:
                    records[index] = cached.with_spec(spec)
        missing = [index for index, record in enumerate(records) if record is None]
        results = run_batch(
            [specs[index].config for index in missing],
            jobs=jobs,
            labels=[specs[index].label() for index in missing],
        )
        for index, result in zip(missing, results):
            record = RunRecord.from_result(specs[index], result)
            records[index] = record
            if store is not None:
                store.put(record)
        return ResultSet(records=tuple(records))  # type: ignore[arg-type]

    def collect(
        self, store: "ResultStore", allow_missing: bool = False
    ) -> ResultSet:
        """The grid's records served purely from a store, in spec order.

        This is how a merged multi-host store becomes a
        :class:`ResultSet` without re-running anything.  A spec absent
        from the store raises :class:`ConfigurationError` naming the
        gap, unless ``allow_missing=True`` — then incomplete grids
        return only the records that exist.
        """
        specs = self.specs()
        records = []
        missing = []
        for spec in specs:
            cached = store.get(spec.spec_hash)
            if cached is not None:
                records.append(cached.with_spec(spec))
            else:
                missing.append(spec)
        if missing and not allow_missing:
            raise ConfigurationError(
                f"store {store.root} is missing {len(missing)} of "
                f"{len(specs)} grid specs (first: {missing[0].label()}); "
                "run the remaining shards or pass allow_missing=True"
            )
        return ResultSet(records=tuple(records))


def _reject_duplicates(label: str, values: Sequence[object]) -> None:
    """Duplicate axis values silently collapsed dict keys before; now they raise."""
    seen: list[object] = []
    for value in values:
        if value in seen:
            raise ConfigurationError(
                f"duplicate {label} value {value!r}; each axis value must be "
                "unique"
            )
        seen.append(value)
