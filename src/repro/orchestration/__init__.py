"""Experiment orchestration: declarative studies over a process pool.

* :mod:`repro.orchestration.batch` — :func:`run_batch`, the one executor
  every multi-run experiment funnels through (serial or process pool,
  config-ordered, bit-identical results);
* :mod:`repro.orchestration.runspec` — :class:`RunSpec`, a frozen,
  content-hashed description of exactly one run;
* :mod:`repro.orchestration.study` — the :class:`Study` builder
  (``Study.from_scenario("flash_crowd").protocols("dac", "ndac")
  .sweep("probe_candidates", [4, 8]).seeds(5)``), which expands any
  scenario × protocol × parameter × seed grid into specs, executes them,
  and returns a :class:`ResultSet` of JSON-serializable
  :class:`RunRecord` objects with export, filter and mean ± CI
  aggregation;
* :mod:`repro.orchestration.store` — :class:`ResultStore`, disk
  memoization of records keyed by spec hash, so repeated invocations
  skip already-computed runs;
* :mod:`repro.orchestration.shard` — crash-safe multi-host execution:
  the lease-based :class:`ClaimRegistry` claim protocol,
  :func:`shard_run` (claim and execute a slice of a study),
  :func:`merge_stores` (fold per-host stores, verifying agreement on
  overlap) and :func:`store_status` (claimed/done/orphaned census).

The legacy helpers — :func:`~repro.simulation.runner.compare_protocols`,
:func:`~repro.simulation.runner.sweep_parameter` and
:func:`~repro.analysis.replication.replicate` — are thin shims over
:class:`Study` and remain supported.
"""

from repro.orchestration.batch import run_batch
from repro.orchestration.runspec import RunSpec, config_from_dict, config_to_dict
from repro.orchestration.study import (
    Aggregate,
    RecordMetrics,
    ResultSet,
    RunRecord,
    Study,
)
from repro.orchestration.store import ResultStore
from repro.orchestration.shard import (
    Claim,
    ClaimRegistry,
    MergeReport,
    ShardReport,
    StoreStatus,
    default_owner,
    merge_stores,
    shard_run,
    store_status,
)

__all__ = [
    "run_batch",
    "RunSpec",
    "config_to_dict",
    "config_from_dict",
    "Aggregate",
    "RecordMetrics",
    "ResultSet",
    "RunRecord",
    "Study",
    "ResultStore",
    # sharded execution
    "Claim",
    "ClaimRegistry",
    "MergeReport",
    "ShardReport",
    "StoreStatus",
    "default_owner",
    "merge_stores",
    "shard_run",
    "store_status",
]
