"""Experiment orchestration: declarative studies over a process pool.

* :mod:`repro.orchestration.batch` — :func:`run_batch`, the one executor
  every multi-run experiment funnels through (serial or process pool,
  config-ordered, bit-identical results);
* :mod:`repro.orchestration.runspec` — :class:`RunSpec`, a frozen,
  content-hashed description of exactly one run;
* :mod:`repro.orchestration.study` — the :class:`Study` builder
  (``Study.from_scenario("flash_crowd").protocols("dac", "ndac")
  .sweep("probe_candidates", [4, 8]).seeds(5)``), which expands any
  scenario × protocol × parameter × seed grid into specs, executes them,
  and returns a :class:`ResultSet` of JSON-serializable
  :class:`RunRecord` objects with export, filter and mean ± CI
  aggregation;
* :mod:`repro.orchestration.store` — :class:`ResultStore`, disk
  memoization of records keyed by spec hash, so repeated invocations
  skip already-computed runs.

The legacy helpers — :func:`~repro.simulation.runner.compare_protocols`,
:func:`~repro.simulation.runner.sweep_parameter` and
:func:`~repro.analysis.replication.replicate` — are thin shims over
:class:`Study` and remain supported.
"""

from repro.orchestration.batch import run_batch
from repro.orchestration.runspec import RunSpec, config_from_dict, config_to_dict
from repro.orchestration.study import (
    Aggregate,
    RecordMetrics,
    ResultSet,
    RunRecord,
    Study,
)
from repro.orchestration.store import ResultStore

__all__ = [
    "run_batch",
    "RunSpec",
    "config_to_dict",
    "config_from_dict",
    "Aggregate",
    "RecordMetrics",
    "ResultSet",
    "RunRecord",
    "Study",
    "ResultStore",
]
