"""Experiment orchestration: fanning independent runs over CPU cores.

:func:`~repro.orchestration.batch.run_batch` executes a list of
:class:`~repro.simulation.config.SimulationConfig` objects either
serially (``jobs=1``, bit-identical to a plain loop) or over a process
pool (``jobs>1``), always returning results in config order.  The
higher-level helpers — :func:`~repro.simulation.runner.compare_protocols`,
:func:`~repro.simulation.runner.sweep_parameter` and
:func:`~repro.analysis.replication.replicate` — all accept a ``jobs``
argument and delegate here.
"""

from repro.orchestration.batch import run_batch

__all__ = ["run_batch"]
