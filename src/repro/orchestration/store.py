"""On-disk memoization of run records, keyed by spec hash.

A :class:`ResultStore` is a directory of one JSON file per computed
:class:`~repro.orchestration.study.RunRecord`, named by the record's
spec hash.  :meth:`Study.run <repro.orchestration.study.Study.run>`
consults it before executing and writes every fresh record back, so a
repeated benchmark or CLI invocation over the same grid is served
entirely from disk — bit-identical to the records of the first run.

Robustness contract: :meth:`ResultStore.get` returns ``None`` (a cache
miss, never an exception) for absent, corrupt, schema-mismatched, or
version-mismatched entries; writes are atomic (temp file + rename), so a
crashed run can never poison the cache for later ones.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro._version import __version__
from repro.orchestration.study import RunRecord

__all__ = ["ResultStore"]

#: bump when the on-disk payload layout changes incompatibly
STORE_SCHEMA = 1


class ResultStore:
    """A directory-backed record cache keyed by spec hash.

    ``require_version`` (default: the current package version) guards
    against serving records computed by a different release of the
    simulator; pass ``None`` to accept any version.
    """

    def __init__(
        self, root: str | Path, require_version: str | None = __version__
    ) -> None:
        self.root = Path(root)
        self.require_version = require_version
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec_hash: str) -> Path:
        """The file a record with this spec hash lives in."""
        return self.root / f"{spec_hash}.json"

    @property
    def claims_root(self) -> Path:
        """Where this store's spec claims live (the ``claims/`` subdir).

        Record globs are non-recursive, so claim files never read as
        records; see :class:`~repro.orchestration.shard.ClaimRegistry`
        for the claim protocol itself.
        """
        return self.root / "claims"

    # ------------------------------------------------------------------
    def get(self, spec_hash: str) -> RunRecord | None:
        """The cached record for ``spec_hash``, or ``None`` on any miss."""
        path = self.path_for(spec_hash)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("store_schema") != STORE_SCHEMA:
            return None
        try:
            record = RunRecord.from_dict(payload["record"])
        except (AttributeError, KeyError, TypeError, ValueError):
            return None
        if record.spec_hash != spec_hash:
            return None
        if (
            self.require_version is not None
            and record.version != self.require_version
        ):
            return None
        return record

    def put(self, record: RunRecord) -> Path:
        """Persist a record atomically; returns the file it landed in."""
        path = self.path_for(record.spec_hash)
        payload = {"store_schema": STORE_SCHEMA, "record": record.to_dict()}
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        return path

    # ------------------------------------------------------------------
    def __contains__(self, spec_hash: str) -> bool:
        return self.path_for(spec_hash).exists()

    def __len__(self) -> int:
        # counting records: filesystem iteration order cannot matter
        return sum(1 for _ in self.root.glob("*.json"))  # detlint: ignore[no-unordered-iteration]

    def spec_hashes(self) -> list[str]:
        """Spec hashes of every stored record, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = 0
        # unlink order cannot matter: every record is deleted regardless
        for path in self.root.glob("*.json"):  # detlint: ignore[no-unordered-iteration]
            path.unlink()
            removed += 1
        return removed
