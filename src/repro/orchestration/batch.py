"""``run_batch`` — one fault-tolerant executor for every multi-run experiment.

Replications, protocol comparisons and parameter sweeps are all "run k
independent configs, keep the results in order".  :func:`run_batch` is
that one primitive:

* ``jobs=1`` (the default) runs serially in-process — bit-identical to
  calling :func:`~repro.simulation.runner.run_simulation` in a loop, so
  regression baselines and cached results stay valid;
* ``jobs>1`` fans the configs out over a :class:`ProcessPoolExecutor`
  in contiguous chunks.  Configs are picklable frozen dataclasses and
  workers return the full
  :class:`~repro.simulation.runner.SimulationResult` (metrics included),
  so results are byte-equal to the serial path — only wall time changes.

Fault tolerance: a dead worker (OOM kill, SIGKILL, interpreter abort)
used to surface as a bare ``BrokenProcessPool`` that lost the whole
batch and named no culprit.  Now the surviving chunks' results are
kept, the broken pool is replaced, and the unfinished configs are
requeued as singleton chunks; a config that still kills its worker
after ``retries`` fresh pools raises
:class:`~repro.errors.BatchWorkerError` naming the config's index and
label.  Deterministic in-simulation exceptions are wrapped the same way
(chained to the original), so every failure mode identifies its grid
point.

Determinism guarantees, both modes:

* result order == config order (results are reassembled by index);
* every run's RNG streams derive only from its own config's
  ``master_seed``, so seed-pairing across protocols/sweep points is
  exactly as in serial execution;
* requeued configs recompute byte-identical results (runs are
  deterministic), so retries never change what the batch returns.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.errors import BatchWorkerError
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import SimulationResult, run_simulation

__all__ = ["run_batch"]

#: fresh pools a config may break before it is declared the culprit
DEFAULT_RETRIES = 2


class _WorkerFailure(Exception):
    """Pickle-safe envelope for an exception raised inside a worker.

    Carries the failing config's batch index and the original
    exception's ``repr`` (the exception object itself may not pickle).
    """

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(index, reason)
        self.index = index
        self.reason = reason


def _run_chunk(
    chunk: Sequence[tuple[int, SimulationConfig]],
) -> list[tuple[int, SimulationResult]]:
    """Worker body: run one chunk, tagging results (and failures) by index.

    ``run_simulation`` is resolved as a module global at call time, in
    the worker — with fork-start workers the child inherits the parent's
    module state, so both execution paths run the same callable.
    """
    out: list[tuple[int, SimulationResult]] = []
    for index, config in chunk:
        try:
            out.append((index, run_simulation(config)))
        except Exception as exc:
            raise _WorkerFailure(index, repr(exc)) from exc
    return out


def _label_for(index: int, labels: Sequence[str] | None,
               config: SimulationConfig) -> str:
    """The config's study label when given, else a protocol/seed sketch."""
    if labels is not None and index < len(labels):
        return labels[index]
    return f"{config.protocol} seed={config.master_seed}"


def run_batch(
    configs: Iterable[SimulationConfig],
    jobs: int = 1,
    labels: Sequence[str] | None = None,
    retries: int = DEFAULT_RETRIES,
) -> list[SimulationResult]:
    """Run every config; results come back in config order.

    ``jobs`` is the maximum number of worker processes; ``1`` means
    serial in-process execution (no pool, no pickling).  The pool never
    holds more workers than configs.  ``labels`` (parallel to
    ``configs``) names grid points in failure messages; ``retries``
    bounds how many fresh pools a worker-killing config may break
    before :class:`~repro.errors.BatchWorkerError` is raised.
    """
    config_list: Sequence[SimulationConfig] = list(configs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 1:
        raise ValueError(f"retries must be >= 1, got {retries}")
    if jobs == 1 or len(config_list) <= 1:
        results: list[SimulationResult] = []
        for index, config in enumerate(config_list):
            try:
                results.append(run_simulation(config))
            except Exception as exc:
                raise BatchWorkerError(
                    index, _label_for(index, labels, config), repr(exc)
                ) from exc
        return results
    return _run_pooled(config_list, jobs, labels, retries)


def _run_pooled(
    config_list: Sequence[SimulationConfig],
    jobs: int,
    labels: Sequence[str] | None,
    retries: int,
) -> list[SimulationResult]:
    """Chunked pool execution surviving worker death by requeuing chunks."""
    workers = min(jobs, len(config_list))
    # Batch tasks so a large grid (hundreds of specs) does not pay one
    # round of pickling/IPC per run; results carry their index, so any
    # chunk layout reassembles in config order.
    chunksize = max(1, len(config_list) // workers)
    indexed = list(enumerate(config_list))
    chunks = [
        indexed[start:start + chunksize]
        for start in range(0, len(indexed), chunksize)
    ]
    slots: list[SimulationResult | None] = [None] * len(config_list)
    attempts = [0] * len(config_list)
    while chunks:
        requeue: list[list[tuple[int, SimulationConfig]]] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_chunk, chunk): chunk
                for chunk in chunks
            }
            # Collect eagerly: a broken pool fails every outstanding
            # future, but chunks that already finished keep their results.
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in done:
                    chunk = futures[future]
                    try:
                        for index, result in future.result():
                            slots[index] = result
                    except _WorkerFailure as failure:
                        index = failure.index
                        raise BatchWorkerError(
                            index,
                            _label_for(index, labels, config_list[index]),
                            failure.reason,
                        ) from failure
                    except BrokenProcessPool as broken:
                        for index, config in chunk:
                            if slots[index] is not None:
                                continue
                            attempts[index] += 1
                            if attempts[index] >= retries:
                                raise BatchWorkerError(
                                    index,
                                    _label_for(index, labels, config),
                                    "worker process died repeatedly "
                                    f"({attempts[index]} pools broken); "
                                    "this config is the likely culprit",
                                ) from broken
                            requeue.append([(index, config)])
        # Retry rounds run each survivor alone in a fresh pool, so a
        # second death unambiguously identifies the culprit config.
        chunks = requeue
    return [result for result in slots if result is not None]
