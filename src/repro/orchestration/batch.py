"""``run_batch`` — one executor for every multi-run experiment.

Replications, protocol comparisons and parameter sweeps are all "run k
independent configs, keep the results in order".  :func:`run_batch` is
that one primitive:

* ``jobs=1`` (the default) runs serially in-process — bit-identical to
  calling :func:`~repro.simulation.runner.run_simulation` in a loop, so
  regression baselines and cached results stay valid;
* ``jobs>1`` fans the configs out over a :class:`ProcessPoolExecutor`.
  Configs are picklable frozen dataclasses and workers return the full
  :class:`~repro.simulation.runner.SimulationResult` (metrics included),
  so results are byte-equal to the serial path — only wall time changes.

Determinism guarantees, both modes:

* result order == config order (``Executor.map`` preserves it);
* every run's RNG streams derive only from its own config's
  ``master_seed``, so seed-pairing across protocols/sweep points is
  exactly as in serial execution.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.simulation.config import SimulationConfig
from repro.simulation.runner import SimulationResult, run_simulation

__all__ = ["run_batch"]


def run_batch(
    configs: Iterable[SimulationConfig], jobs: int = 1
) -> list[SimulationResult]:
    """Run every config; results come back in config order.

    ``jobs`` is the maximum number of worker processes; ``1`` means
    serial in-process execution (no pool, no pickling).  The pool never
    holds more workers than configs.
    """
    config_list: Sequence[SimulationConfig] = list(configs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(config_list) <= 1:
        return [run_simulation(config) for config in config_list]
    workers = min(jobs, len(config_list))
    # Batch tasks so a large grid (hundreds of specs) does not pay one
    # round of pickling/IPC per run; Executor.map keeps result order for
    # any chunksize.
    chunksize = max(1, len(config_list) // workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_simulation, config_list, chunksize=chunksize))
