"""Crash-safe sharded study execution over a shared :class:`ResultStore`.

The paper's figure grids are embarrassingly parallel, and every run is
already memoized by spec hash, so N hosts can cooperatively execute one
:class:`~repro.orchestration.study.Study` — provided claiming, crashing
and merging are first-class.  This module supplies the three pieces:

* :class:`ClaimRegistry` — an atomic, lease-based claim protocol.  One
  claim file per spec hash records the owner and a lease deadline;
  claims are acquired with a link-into-place create that exactly one
  contender can win, and an expired lease is reclaimable through an
  equally atomic eviction, so a SIGKILLed worker's specs are re-executed
  after its leases lapse — never lost, and (while a lease is live) never
  executed twice.
* :func:`shard_run` — claim-and-execute a slice of a study against a
  shared or per-host store, surviving worker death through the
  fault-tolerant :func:`~repro.orchestration.batch.run_batch`.
* :func:`merge_stores` / :func:`store_status` — fold N stores into one
  (verifying spec-hash and record-payload agreement on overlap; the
  deterministic winner on agreement is the record with the smaller wall
  time, so any merge order folds to the same contents) and report the
  claimed / done / orphaned state of a sharded run.

Crash-safety invariants (the contract the fault-injection suite under
``tests/orchestration/`` pins):

1. **At-most-once while leased**: a spec with a live claim is executed
   by exactly one worker — claim acquisition is an atomic filesystem
   create, and eviction of an expired claim is an atomic rename only one
   evictor can win.
2. **At-least-once eventually**: a crashed worker's leases expire, after
   which any worker (or a ``Study.run(resume=True)``) reclaims and
   re-executes its specs.
3. **Exactly-once in the merged result**: re-execution is harmless
   because records are deterministic — the store keyed by spec hash
   deduplicates, and :func:`merge_stores` verifies payload agreement on
   every overlap, so a 2-shard run merges to a result set bit-identical
   (up to wall time) to serial execution.
"""

from __future__ import annotations

import json
import os
import socket
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ClaimError, StoreMergeError
from repro.orchestration.batch import run_batch
from repro.orchestration.store import ResultStore
from repro.orchestration.study import RunRecord, Study

__all__ = [
    "CLAIM_SCHEMA",
    "Claim",
    "ClaimRegistry",
    "MergeReport",
    "ShardReport",
    "StoreStatus",
    "default_owner",
    "merge_stores",
    "shard_run",
    "store_status",
]

#: bump when the on-disk claim layout changes incompatibly
CLAIM_SCHEMA = 1

#: bounded retry of the claim/evict race before giving up on a hash
_MAX_CLAIM_ATTEMPTS = 8


def default_owner() -> str:
    """A worker identity unique per host and process (``host-pid``)."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class Claim:
    """One worker's recorded hold (or completion marker) on a spec hash."""

    spec_hash: str
    owner: str
    state: str  # "claimed" | "completed"
    deadline: float
    claimed_at: float

    def expired(self, now: float) -> bool:
        """True when the lease has lapsed (completed claims never expire)."""
        return self.state == "claimed" and now >= self.deadline

    def to_dict(self) -> dict:
        """JSON-ready claim payload."""
        return {
            "claim_schema": CLAIM_SCHEMA,
            "spec_hash": self.spec_hash,
            "owner": self.owner,
            "state": self.state,
            "deadline": self.deadline,
            "claimed_at": self.claimed_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Claim":
        """Rebuild a claim from :meth:`to_dict` output."""
        return cls(
            spec_hash=str(data["spec_hash"]),
            owner=str(data["owner"]),
            state=str(data["state"]),
            deadline=float(data["deadline"]),
            claimed_at=float(data["claimed_at"]),
        )


class ClaimRegistry:
    """Atomic, lease-based spec claims in a directory of claim files.

    One JSON file per spec hash under ``root``.  Acquisition writes a
    private temp file and links it into place — ``os.link`` fails with
    ``FileExistsError`` when the name is taken, so exactly one contender
    wins.  Reclaiming an expired lease first renames the stale file
    away (again, exactly one evictor can win the rename) and then races
    for a fresh acquisition.  ``clock`` is injectable so the lease state
    machine is unit-testable without sleeping; production code uses the
    wall clock, which only ever gates *lease expiry* — simulation
    results never depend on it.
    """

    def __init__(
        self,
        root: str | Path,
        owner: str | None = None,
        lease_seconds: float = 900.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_seconds <= 0:
            raise ClaimError(f"lease_seconds must be > 0, got {lease_seconds}")
        self.root = Path(root)
        self.owner = owner if owner is not None else default_owner()
        self.lease_seconds = lease_seconds
        self.clock = clock
        self.root.mkdir(parents=True, exist_ok=True)

    @classmethod
    def for_store(
        cls,
        store: ResultStore,
        owner: str | None = None,
        lease_seconds: float = 900.0,
        clock: Callable[[], float] = time.time,
    ) -> "ClaimRegistry":
        """The registry co-located with a store (its ``claims/`` subdir)."""
        return cls(
            store.claims_root, owner=owner,
            lease_seconds=lease_seconds, clock=clock,
        )

    def path_for(self, spec_hash: str) -> Path:
        """The file a claim on this spec hash lives in."""
        return self.root / f"{spec_hash}.json"

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, spec_hash: str) -> Claim | None:
        """The recorded claim for ``spec_hash``, or ``None`` on any miss.

        Mirrors the store's robustness contract: absent, corrupt or
        schema-mismatched claim files read as "unclaimed", never raise.
        """
        try:
            payload = json.loads(
                self.path_for(spec_hash).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("claim_schema") != CLAIM_SCHEMA
        ):
            return None
        try:
            return Claim.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def holder(self, spec_hash: str) -> str | None:
        """Owner of the live (unexpired, uncompleted) claim, if any."""
        claim = self.get(spec_hash)
        if claim is None or claim.state != "claimed":
            return None
        return None if claim.expired(self.clock()) else claim.owner

    def spec_hashes(self) -> list[str]:
        """Spec hashes of every claim file, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    # ------------------------------------------------------------------
    # the claim state machine: claim -> (renew | expire -> reclaim) -> complete
    # ------------------------------------------------------------------
    def try_claim(self, spec_hash: str) -> bool:
        """Atomically acquire ``spec_hash``; False when someone holds it.

        Acquisition succeeds when no claim file exists, when the
        caller already holds a live claim (the lease is renewed), or
        when the recorded lease has expired and this caller wins the
        eviction race.  A ``completed`` marker is permanent: the spec's
        record is in the store, so claiming it again is always refused.
        """
        path = self.path_for(spec_hash)
        for _ in range(_MAX_CLAIM_ATTEMPTS):
            if self._create(path, spec_hash):
                return True
            claim = self.get(spec_hash)
            if claim is None:
                if path.exists():
                    # unreadable/corrupt claim file: treat like an
                    # expired lease and evict before racing again
                    self._evict(path)
                # otherwise the holder vanished (released/evicted)
                # between our create and read; race again either way
                continue
            if claim.state == "completed":
                return False
            now = self.clock()
            if claim.owner == self.owner and not claim.expired(now):
                self.renew(spec_hash)
                return True
            if not claim.expired(now):
                return False
            if not self._evict(path):
                continue  # another claimant won the eviction; race again
        return False

    def renew(self, spec_hash: str) -> None:
        """Extend the caller's live lease by ``lease_seconds`` from now."""
        claim = self.get(spec_hash)
        if claim is None or claim.owner != self.owner:
            holder = claim.owner if claim is not None else "nobody"
            raise ClaimError(
                f"{self.owner!r} cannot renew {spec_hash[:12]}…: held by "
                f"{holder!r}"
            )
        self._write(
            self.path_for(spec_hash),
            Claim(
                spec_hash=spec_hash, owner=self.owner, state=claim.state,
                deadline=self.clock() + self.lease_seconds,
                claimed_at=claim.claimed_at,
            ),
        )

    def complete(self, spec_hash: str) -> bool:
        """Mark the spec completed; True when this caller's marker landed.

        Safe after lease expiry: if another worker has meanwhile
        reclaimed the spec (live foreign claim), the marker is *not*
        written — that worker will complete it, and the records agree
        byte-for-byte because runs are deterministic.
        """
        claim = self.get(spec_hash)
        now = self.clock()
        if (
            claim is not None
            and claim.state == "claimed"
            and claim.owner != self.owner
            and not claim.expired(now)
        ):
            return False
        if claim is not None and claim.state == "completed":
            return False
        self._write(
            self.path_for(spec_hash),
            Claim(
                spec_hash=spec_hash, owner=self.owner, state="completed",
                deadline=now,
                claimed_at=claim.claimed_at if claim else now,
            ),
        )
        return True

    def release(self, spec_hash: str) -> None:
        """Drop the caller's claim without completing it (graceful abandon)."""
        claim = self.get(spec_hash)
        if claim is None:
            return
        if claim.owner != self.owner:
            raise ClaimError(
                f"{self.owner!r} cannot release {spec_hash[:12]}…: held by "
                f"{claim.owner!r}"
            )
        try:
            self.path_for(spec_hash).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # atomic filesystem primitives
    # ------------------------------------------------------------------
    def _create(self, path: Path, spec_hash: str) -> bool:
        """Link a fresh claim into place; False when the name is taken."""
        now = self.clock()
        tmp = path.with_name(f".{path.stem}.{self.owner}.tmp")
        tmp.write_text(
            json.dumps(
                Claim(
                    spec_hash=spec_hash, owner=self.owner, state="claimed",
                    deadline=now + self.lease_seconds, claimed_at=now,
                ).to_dict(),
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        try:
            os.link(tmp, path)  # atomic: fails iff the claim exists
            return True
        except FileExistsError:
            return False
        finally:
            tmp.unlink()

    def _evict(self, path: Path) -> bool:
        """Rename an expired claim away; False when another evictor won."""
        tombstone = path.with_name(f".{path.stem}.{self.owner}.evicted")
        try:
            os.rename(path, tombstone)  # atomic: exactly one renamer wins
        except FileNotFoundError:
            return False
        tombstone.unlink()
        return True

    def _write(self, path: Path, claim: Claim) -> None:
        """Atomically replace a claim file (temp + rename, like the store)."""
        tmp = path.with_name(f".{path.stem}.{self.owner}.rewrite")
        tmp.write_text(
            json.dumps(claim.to_dict(), sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)


# ----------------------------------------------------------------------
# sharded execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardReport:
    """What one :func:`shard_run` worker did with its slice of the grid."""

    owner: str
    total: int  # specs in this worker's slice
    executed: int  # claimed, simulated and completed by this worker
    cached: int  # already in the store; skipped
    claimed_elsewhere: int  # live foreign lease; skipped
    reclaimed: int  # of the executed, how many took over an expired lease
    executed_hashes: tuple[str, ...] = field(default=(), repr=False)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"shard {self.owner}: {self.executed}/{self.total} executed "
            f"({self.reclaimed} reclaimed from expired leases), "
            f"{self.cached} cached, {self.claimed_elsewhere} claimed "
            "elsewhere"
        )


def _slice_specs(specs: Sequence, slice_index: int, slice_count: int) -> list:
    """Round-robin slice ``slice_index`` of ``slice_count`` (deterministic)."""
    if slice_count < 1:
        raise ClaimError(f"slice_count must be >= 1, got {slice_count}")
    if not 0 <= slice_index < slice_count:
        raise ClaimError(
            f"slice_index must be in [0, {slice_count}), got {slice_index}"
        )
    return [
        spec for position, spec in enumerate(specs)
        if position % slice_count == slice_index
    ]


def shard_run(
    study: Study,
    store: ResultStore,
    owner: str | None = None,
    lease_seconds: float = 900.0,
    jobs: int = 1,
    slice_index: int = 0,
    slice_count: int = 1,
    claim_batch: int | None = None,
    clock: Callable[[], float] = time.time,
    executed_log: str | Path | None = None,
) -> ShardReport:
    """Claim and execute one slice of a study against a store.

    The worker walks its round-robin slice (``slice_index`` of
    ``slice_count``) of the study's spec list in claim waves of at most
    ``claim_batch`` specs (default: the whole slice at once): cached
    specs are marked completed and skipped, specs with a live foreign
    lease are skipped, and everything else is claimed, executed through
    the fault-tolerant :func:`~repro.orchestration.batch.run_batch`,
    stored, and completed.  ``lease_seconds`` must comfortably exceed
    one wave's runtime (claims are only acquired at the start of the
    wave that executes them, so smaller ``claim_batch`` values tolerate
    shorter leases).  When
    ``executed_log`` is given, one ``owner spec_hash`` line is appended
    per executed spec — the audit trail the claim-contention tests
    assert exactly-once execution on.
    """
    if claim_batch is not None and claim_batch < 1:
        raise ClaimError(f"claim_batch must be >= 1, got {claim_batch}")
    claims = ClaimRegistry.for_store(
        store, owner=owner, lease_seconds=lease_seconds, clock=clock
    )
    sliced = _slice_specs(study.specs(), slice_index, slice_count)
    pending = list(sliced)
    executed = cached = elsewhere = reclaimed = 0
    executed_hashes: list[str] = []
    while pending:
        wave, pending = (
            (pending, [])
            if claim_batch is None
            else (pending[:claim_batch], pending[claim_batch:])
        )
        mine = []
        for spec in wave:
            if store.get(spec.spec_hash) is not None:
                claims.complete(spec.spec_hash)
                cached += 1
                continue
            was_expired = (
                claims.get(spec.spec_hash) is not None
                and claims.holder(spec.spec_hash) is None
            )
            if claims.try_claim(spec.spec_hash):
                mine.append(spec)
                reclaimed += int(was_expired)
            else:
                elsewhere += 1
        if not mine:
            continue
        results = run_batch(
            [spec.config for spec in mine],
            jobs=jobs,
            labels=[spec.label() for spec in mine],
        )
        for spec, result in zip(mine, results):
            record = RunRecord.from_result(spec, result)
            store.put(record)
            claims.complete(spec.spec_hash)
            executed += 1
            executed_hashes.append(spec.spec_hash)
            if executed_log is not None:
                _append_log(executed_log, claims.owner, spec.spec_hash)
    return ShardReport(
        owner=claims.owner,
        total=len(sliced),
        executed=executed,
        cached=cached,
        claimed_elsewhere=elsewhere,
        reclaimed=reclaimed,
        executed_hashes=tuple(executed_hashes),
    )


def _append_log(path: str | Path, owner: str, spec_hash: str) -> None:
    """Append one executed-spec line (O_APPEND: atomic for short lines)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{owner} {spec_hash}\n")


# ----------------------------------------------------------------------
# merging per-host stores
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MergeReport:
    """What folding source stores into a destination did."""

    copied: int  # records new to the destination
    replaced: int  # agreeing duplicates where the source won (smaller wall)
    identical: int  # agreeing duplicates where the destination won
    skipped_invalid: int  # unreadable/corrupt source entries, left behind
    total: int  # records in the destination afterwards

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"merged: {self.copied} copied, {self.replaced} replaced, "
            f"{self.identical} identical, {self.skipped_invalid} invalid "
            f"skipped; {self.total} records in destination"
        )


def merge_stores(
    destination: ResultStore,
    sources: Sequence[ResultStore],
    require_version: str | None = None,
) -> MergeReport:
    """Fold every source store's records into ``destination``.

    On overlap the records must agree: equal spec hash (they are filed
    under it) *and* equal payload fingerprint — the digest of everything
    except wall time.  Disagreement raises :class:`StoreMergeError`,
    because two differing records under one spec hash mean a determinism
    violation, not a merge policy question.  Among agreeing duplicates
    the record with the smaller ``wall_seconds`` wins (ties keep the
    incumbent), which makes the fold order-independent: any merge order
    of any partition of the sources produces byte-identical destination
    contents.  ``require_version`` defaults to ``None`` — merging
    preserves whatever the shards computed; version gating happens when
    records are *read* for a study.
    """
    copied = replaced = identical = invalid = 0
    for source in sources:
        reader = ResultStore(source.root, require_version=require_version)
        for spec_hash in reader.spec_hashes():
            record = reader.get(spec_hash)
            if record is None:
                invalid += 1
                continue
            incumbent = destination.get(spec_hash)
            if incumbent is None:
                destination.put(record)
                copied += 1
                continue
            if incumbent.fingerprint() != record.fingerprint():
                raise StoreMergeError(
                    f"stores disagree on spec {spec_hash[:12]}…: "
                    f"{source.root} and {destination.root} hold records "
                    "with differing payloads (same spec hash, different "
                    "fingerprint) — a determinism violation, refusing to "
                    "merge"
                )
            if record.wall_seconds < incumbent.wall_seconds:
                destination.put(record)
                replaced += 1
            else:
                identical += 1
    return MergeReport(
        copied=copied,
        replaced=replaced,
        identical=identical,
        skipped_invalid=invalid,
        total=len(destination),
    )


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreStatus:
    """Claimed / done / orphaned census of a (possibly sharded) store."""

    done: int  # records in the store
    claimed: int  # live leases with no record yet
    orphaned: int  # expired leases with no record (a crashed worker's)
    pending: int | None  # grid specs with neither record nor live claim
    total_specs: int | None  # grid size, when a study was given

    def summary(self) -> str:
        """One-line human-readable report."""
        parts = [
            f"{self.done} done", f"{self.claimed} claimed",
            f"{self.orphaned} orphaned",
        ]
        if self.total_specs is not None:
            parts.append(f"{self.pending} pending of {self.total_specs} specs")
        return ", ".join(parts)


def store_status(
    store: ResultStore,
    study: Study | None = None,
    clock: Callable[[], float] = time.time,
) -> StoreStatus:
    """Census the store and its claims, optionally against a study grid.

    ``done`` counts stored records; ``claimed`` counts live leases not
    yet backed by a record; ``orphaned`` counts expired leases without a
    record — the signature a SIGKILLed worker leaves behind, and exactly
    the specs a resumed run will reclaim.  With a ``study``, ``pending``
    additionally counts grid specs nobody has stored or claimed.
    """
    claims = ClaimRegistry.for_store(store, clock=clock)
    done_hashes = set(store.spec_hashes())
    now = clock()
    claimed = orphaned = 0
    live: set[str] = set()
    for spec_hash in claims.spec_hashes():
        if spec_hash in done_hashes:
            continue
        claim = claims.get(spec_hash)
        if claim is None or claim.state != "claimed":
            continue
        if claim.expired(now):
            orphaned += 1
        else:
            claimed += 1
            live.add(spec_hash)
    pending = total = None
    if study is not None:
        spec_hashes = [spec.spec_hash for spec in study.specs()]
        total = len(spec_hashes)
        pending = sum(
            1 for spec_hash in spec_hashes
            if spec_hash not in done_hashes and spec_hash not in live
        )
    return StoreStatus(
        done=len(done_hashes), claimed=claimed, orphaned=orphaned,
        pending=pending, total_specs=total,
    )
