"""Frozen run specifications and their stable content hashes.

A :class:`RunSpec` pins down *exactly one* simulation run: a fully
expanded :class:`~repro.simulation.config.SimulationConfig` (master seed
included) plus provenance labels — the scenario it came from and the
study axes that selected it.  Its :attr:`~RunSpec.spec_hash` is a SHA-256
over the canonical JSON form of the configuration, which makes it a
stable cache key across processes and sessions: the same configuration
always hashes the same, and any field change hashes differently.

The helpers :func:`config_to_dict` / :func:`config_from_dict` define the
canonical JSON form; they are also what run records use to stamp full
configuration provenance into their on-disk representation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import cached_property

from repro.simulation.config import SimulationConfig

__all__ = [
    "HASH_EXCLUDED_FIELDS",
    "RunSpec",
    "config_to_dict",
    "config_from_dict",
    "config_hash",
]

#: config fields whose values are per-class dicts (int keys, stringified in JSON)
_CLASS_KEYED_FIELDS = ("seed_suppliers", "requesting_peers")

#: The documented allowlist of :class:`SimulationConfig` fields that
#: :func:`config_hash` deliberately leaves out of the cache key, each with
#: the rationale for why excluding it cannot change measurements.  This is
#: the single source of truth humans read; the executable pops inside
#: :func:`config_hash` are kept literal on purpose, and the detlint
#: ``config-hash-drift`` rule fails the build whenever the two drift apart
#: (an entry without a pop, a pop without an entry, a stale field name, or
#: an empty rationale).
HASH_EXCLUDED_FIELDS: dict[str, str] = {
    "kernel": (
        "event kernels are dispatch-order-identical by contract (see "
        "repro.simulation.kernel), so runs differing only in kernel "
        "produce the same measurements and share one cache entry"
    ),
    "engine": (
        "the array engine is parity-pinned against the object engine "
        "(see repro.simulation.arrayengine), so runs differing only in "
        "engine produce the same measurements and share one cache entry"
    ),
}


def config_to_dict(config: SimulationConfig) -> dict:
    """Every config field as a JSON-ready dict (class keys as strings)."""
    data = dataclasses.asdict(config)
    for name in _CLASS_KEYED_FIELDS:
        data[name] = {str(k): v for k, v in sorted(data[name].items())}
    return data


def config_from_dict(data: dict) -> SimulationConfig:
    """Rebuild a validated config from :func:`config_to_dict` output."""
    payload = dict(data)
    for name in _CLASS_KEYED_FIELDS:
        payload[name] = {int(k): v for k, v in payload[name].items()}
    return SimulationConfig(**payload)


def config_hash(config: SimulationConfig) -> str:
    """Stable SHA-256 hex digest of a configuration's canonical JSON.

    The fields listed in :data:`HASH_EXCLUDED_FIELDS` are excluded (see
    the per-field rationales there): runs differing only in those fields
    produce the same measurements and deliberately share one cache
    entry.  The pops below stay literal — not a loop over the constant —
    so the exclusion set is auditable at a glance; the detlint
    ``config-hash-drift`` rule keeps them and the allowlist in sync.
    """
    data = config_to_dict(config)
    data.pop("kernel", None)
    data.pop("engine", None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One fully specified simulation run within a study.

    ``config`` is the run itself; ``scenario`` and ``axes`` are
    provenance — which named workload the study expanded and which swept
    axis values (protocol, parameter, seed) selected this particular run.
    Two specs with equal configs share a ``spec_hash`` even if their
    provenance differs, so result stores deduplicate identical work.
    """

    config: SimulationConfig
    scenario: str | None = None
    axes: tuple[tuple[str, object], ...] = ()

    @cached_property
    def spec_hash(self) -> str:
        """Content hash of the configuration (cache key)."""
        return config_hash(self.config)

    @property
    def seed(self) -> int:
        """The run's master RNG seed."""
        return self.config.master_seed

    @property
    def protocol(self) -> str:
        """The run's admission policy name."""
        return self.config.protocol

    def label(self) -> str:
        """Compact human-readable identification of the run."""
        axis_names = {name for name, _ in self.axes}
        parts = [self.scenario] if self.scenario else []
        if "protocol" not in axis_names:
            parts.append(self.protocol)
        parts.extend(f"{name}={value}" for name, value in self.axes)
        if "seed" not in axis_names:
            parts.append(f"seed={self.seed}")
        return " ".join(parts)
