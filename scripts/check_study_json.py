#!/usr/bin/env python3
"""CI shim for the study-export checks in ``repro.devtools.studycheck``.

The schema validators live in :mod:`repro.devtools.studycheck` and share
the :mod:`repro.devtools.reporting` finding/exit-code conventions with
every other repository checker.  This file only makes them runnable as
``python scripts/check_study_json.py PATH/TO/study.json`` without any
install step.

Exit status 0 when the file conforms; 1 with a diagnostic otherwise.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.devtools.studycheck import (  # noqa: E402
    check_file,
    compare_files,
    main,
    record_fingerprint,
)

__all__ = ["check_file", "compare_files", "main", "record_fingerprint"]

if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
