#!/usr/bin/env python3
"""Validate a ``repro study --export json`` file against the record schema.

Stdlib-only checker used by CI (and available to users) to guarantee the
export contract stays stable: schema tag, version stamp, and for every
record the provenance, scalar and metrics fields downstream tooling
relies on.

Usage:  python scripts/check_study_json.py PATH/TO/study.json
Exit status 0 when the file conforms; 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import sys

EXPECTED_SCHEMA = "repro.study.v1"

RECORD_FIELDS = {
    "spec_hash": str,
    "config": dict,
    "scalars": dict,
    "metrics": dict,
    "events_processed": int,
    "wall_seconds": (int, float),
    "version": str,
    "axes": list,
}
REQUIRED_SCALARS = ("final_capacity", "max_capacity", "capacity_fraction_of_max")
REQUIRED_METRIC_SERIES = ("capacity_series", "overall_admission_rate_series")
REQUIRED_CONFIG_FIELDS = ("protocol", "master_seed", "arrival_pattern")


def fail(message: str) -> None:
    print(f"check_study_json: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_record(index: int, record: object) -> None:
    if not isinstance(record, dict):
        fail(f"records[{index}] is not an object")
    for name, types in RECORD_FIELDS.items():
        if name not in record:
            fail(f"records[{index}] missing field {name!r}")
        if not isinstance(record[name], types):
            fail(f"records[{index}].{name} has type "
                 f"{type(record[name]).__name__}, expected {types}")
    spec_hash = record["spec_hash"]
    if len(spec_hash) != 64 or set(spec_hash) - set("0123456789abcdef"):
        fail(f"records[{index}].spec_hash is not a sha256 hex digest")
    for name in REQUIRED_CONFIG_FIELDS:
        if name not in record["config"]:
            fail(f"records[{index}].config missing {name!r}")
    for name in REQUIRED_SCALARS:
        if not isinstance(record["scalars"].get(name), (int, float)):
            fail(f"records[{index}].scalars.{name} missing or non-numeric")
    for name in REQUIRED_METRIC_SERIES:
        series = record["metrics"].get(name)
        if not isinstance(series, list):
            fail(f"records[{index}].metrics.{name} missing or not a list")
        for point in series:
            if not (isinstance(point, list) and len(point) == 2):
                fail(f"records[{index}].metrics.{name} has a malformed "
                     f"sample: {point!r}")


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        fail("usage: check_study_json.py PATH/TO/study.json")
    try:
        with open(argv[1], encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        fail(f"cannot read {argv[1]}: {exc}")
    except ValueError as exc:
        fail(f"{argv[1]} is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        fail("top level is not an object")
    if payload.get("schema") != EXPECTED_SCHEMA:
        fail(f"schema is {payload.get('schema')!r}, expected {EXPECTED_SCHEMA!r}")
    if not isinstance(payload.get("version"), str):
        fail("version stamp missing or not a string")
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        fail("records missing, not a list, or empty")
    if payload.get("count") != len(records):
        fail(f"count={payload.get('count')!r} but {len(records)} records")
    for index, record in enumerate(records):
        check_record(index, record)
    print(f"check_study_json: ok — {len(records)} record(s), "
          f"version {payload['version']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
