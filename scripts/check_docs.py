#!/usr/bin/env python3
"""CI shim for the documentation checks in ``repro.devtools.docscheck``.

The actual rules — markdown links, backticked path/dotted references,
documented CLI commands and flags, API docstrings — live in
:mod:`repro.devtools.docscheck` and share the
:mod:`repro.devtools.reporting` finding/exit-code conventions with every
other repository checker.  This file only makes them runnable as
``python scripts/check_docs.py [REPO_ROOT]`` without any install step.

Exit status 0 when everything checks out; 1 with diagnostics otherwise.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.devtools.docscheck import (  # noqa: E402
    check_api_docstrings,
    check_cli_references,
    check_markdown,
    cli_vocabulary,
    documented_cli_lines,
    dotted_reference_resolves,
    iter_doc_files,
    main,
)

__all__ = [
    "check_api_docstrings",
    "check_cli_references",
    "check_markdown",
    "cli_vocabulary",
    "documented_cli_lines",
    "dotted_reference_resolves",
    "iter_doc_files",
    "main",
]

if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
