#!/usr/bin/env python3
"""Validate a ``bench_kernel_scaling.py`` JSON file against its schema.

Stdlib-only checker used by the CI perf-smoke job (and available to
users) to guarantee the benchmark export contract stays stable: schema
tag, version stamp, per-run throughput fields and the per-scale speedup
summaries.

Usage:  python scripts/check_bench_json.py PATH/TO/BENCH_kernel_scaling.json
Exit status 0 when the file conforms; 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import sys

EXPECTED_SCHEMA = "repro.bench_kernel_scaling.v1"

RUN_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "mode": str,
    "kernel": str,
    "events": int,
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
}
SPEEDUP_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "fast_kernel": str,
    "events_per_sec": (int, float),
    "speedup_vs_full_heap": (int, float),
}


def fail(message: str) -> None:
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_fields(label: str, entry: object, fields: dict) -> None:
    if not isinstance(entry, dict):
        fail(f"{label} is not an object")
    for name, types in fields.items():
        if name not in entry:
            fail(f"{label} missing field {name!r}")
        if isinstance(entry[name], bool) or not isinstance(entry[name], types):
            fail(f"{label}.{name} has type {type(entry[name]).__name__}, "
                 f"expected {types}")


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        fail("usage: check_bench_json.py PATH/TO/BENCH_kernel_scaling.json")
    try:
        data = json.loads(open(argv[1], encoding="utf-8").read())
    except (OSError, ValueError) as exc:
        fail(f"cannot read {argv[1]}: {exc}")
    if not isinstance(data, dict):
        fail("top level is not an object")
    if data.get("schema") != EXPECTED_SCHEMA:
        fail(f"schema is {data.get('schema')!r}, expected {EXPECTED_SCHEMA!r}")
    if not isinstance(data.get("version"), str):
        fail("missing version stamp")
    if not isinstance(data.get("scenario"), str):
        fail("missing scenario name")
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty list")
    for index, run in enumerate(runs):
        check_fields(f"runs[{index}]", run, RUN_FIELDS)
        if run["events_per_sec"] <= 0 or run["wall_seconds"] <= 0:
            fail(f"runs[{index}] has non-positive throughput")
        probes = run.get("probes")
        if probes is not None and not isinstance(probes, list):
            fail(f"runs[{index}].probes must be null or a list")
    speedups = data.get("speedups")
    if not isinstance(speedups, list) or not speedups:
        fail("speedups must be a non-empty list")
    for index, entry in enumerate(speedups):
        check_fields(f"speedups[{index}]", entry, SPEEDUP_FIELDS)
        vs_pre = entry.get("speedup_vs_pre_refactor")
        if vs_pre is not None and (
            isinstance(vs_pre, bool) or not isinstance(vs_pre, (int, float))
        ):
            fail(f"speedups[{index}].speedup_vs_pre_refactor must be "
                 "null or numeric")
    print(f"check_bench_json: OK ({len(runs)} runs, "
          f"{len(speedups)} speedup summaries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
