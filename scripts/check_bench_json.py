#!/usr/bin/env python3
"""Validate a benchmark JSON export against its schema.

Stdlib-only checker used by the CI perf-smoke job (and available to
users) to guarantee the benchmark export contracts stay stable.  The
file's ``schema`` tag selects the validator:

* ``repro.bench_kernel_scaling.v1`` — ``bench_kernel_scaling.py``:
  per-run throughput fields and per-scale speedup summaries;
* ``repro.bench_engine_scaling.v1`` — ``bench_engine_scaling.py``:
  per-engine setup/run timing splits, array-vs-object speedups and the
  megacity end-to-end record.

Usage:  python scripts/check_bench_json.py PATH/TO/BENCH_file.json
Exit status 0 when the file conforms; 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import sys

KERNEL_SCHEMA = "repro.bench_kernel_scaling.v1"
ENGINE_SCHEMA = "repro.bench_engine_scaling.v1"

KERNEL_RUN_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "mode": str,
    "engine": str,
    "kernel": str,
    "events": int,
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
}
KERNEL_SPEEDUP_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "fast_kernel": str,
    "events_per_sec": (int, float),
    "speedup_vs_full_heap": (int, float),
}

ENGINE_RUN_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "scenario": str,
    "engine": str,
    "events": int,
    "setup_seconds": (int, float),
    "run_seconds": (int, float),
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
}
ENGINE_SPEEDUP_FIELDS = {
    "scale": (int, float),
    "peers": int,
    "events_per_sec_object": (int, float),
    "events_per_sec_array": (int, float),
    "speedup_array_vs_object": (int, float),
    "speedup_total_wall": (int, float),
}
MEGACITY_FIELDS = {
    "scenario": str,
    "scale": (int, float),
    "peers": int,
    "engine": str,
    "completed": bool,
    "events": int,
    "setup_seconds": (int, float),
    "run_seconds": (int, float),
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
}


def fail(message: str) -> None:
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_fields(label: str, entry: object, fields: dict) -> None:
    if not isinstance(entry, dict):
        fail(f"{label} is not an object")
    for name, types in fields.items():
        if name not in entry:
            fail(f"{label} missing field {name!r}")
        value = entry[name]
        if types is not bool and isinstance(value, bool):
            fail(f"{label}.{name} has type bool, expected {types}")
        if not isinstance(value, types):
            fail(f"{label}.{name} has type {type(value).__name__}, "
                 f"expected {types}")


def check_common_header(data: dict) -> list:
    """Schema-independent envelope: version, scenario, non-empty runs."""
    if not isinstance(data.get("version"), str):
        fail("missing version stamp")
    if not isinstance(data.get("scenario"), str):
        fail("missing scenario name")
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty list")
    return runs


def check_kernel_scaling(data: dict) -> str:
    runs = check_common_header(data)
    for index, run in enumerate(runs):
        check_fields(f"runs[{index}]", run, KERNEL_RUN_FIELDS)
        if run["events_per_sec"] <= 0 or run["wall_seconds"] <= 0:
            fail(f"runs[{index}] has non-positive throughput")
        probes = run.get("probes")
        if probes is not None and not isinstance(probes, list):
            fail(f"runs[{index}].probes must be null or a list")
    speedups = data.get("speedups")
    if not isinstance(speedups, list) or not speedups:
        fail("speedups must be a non-empty list")
    for index, entry in enumerate(speedups):
        check_fields(f"speedups[{index}]", entry, KERNEL_SPEEDUP_FIELDS)
        vs_pre = entry.get("speedup_vs_pre_refactor")
        if vs_pre is not None and (
            isinstance(vs_pre, bool) or not isinstance(vs_pre, (int, float))
        ):
            fail(f"speedups[{index}].speedup_vs_pre_refactor must be "
                 "null or numeric")
    return f"{len(runs)} runs, {len(speedups)} speedup summaries"


def check_engine_scaling(data: dict) -> str:
    runs = check_common_header(data)
    for index, run in enumerate(runs):
        check_fields(f"runs[{index}]", run, ENGINE_RUN_FIELDS)
        if run["engine"] not in ("object", "array"):
            fail(f"runs[{index}].engine is {run['engine']!r}")
        if run["events_per_sec"] <= 0 or run["run_seconds"] <= 0:
            fail(f"runs[{index}] has non-positive throughput")
    speedups = data.get("speedups")
    if not isinstance(speedups, list) or not speedups:
        fail("speedups must be a non-empty list")
    for index, entry in enumerate(speedups):
        check_fields(f"speedups[{index}]", entry, ENGINE_SPEEDUP_FIELDS)
        if entry["speedup_array_vs_object"] <= 0:
            fail(f"speedups[{index}] has non-positive speedup")
    megacity = data.get("megacity")
    check_fields("megacity", megacity, MEGACITY_FIELDS)
    if megacity["engine"] != "array":
        fail(f"megacity.engine is {megacity['engine']!r}, expected 'array'")
    if not megacity["completed"] or megacity["events"] <= 0:
        fail("megacity run did not complete")
    return (f"{len(runs)} runs, {len(speedups)} speedup summaries, "
            f"megacity at scale {megacity['scale']}")


CHECKERS = {
    KERNEL_SCHEMA: check_kernel_scaling,
    ENGINE_SCHEMA: check_engine_scaling,
}


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        fail("usage: check_bench_json.py PATH/TO/BENCH_file.json")
    try:
        data = json.loads(open(argv[1], encoding="utf-8").read())
    except (OSError, ValueError) as exc:
        fail(f"cannot read {argv[1]}: {exc}")
    if not isinstance(data, dict):
        fail("top level is not an object")
    schema = data.get("schema")
    checker = CHECKERS.get(schema)
    if checker is None:
        fail(f"schema is {schema!r}, expected one of "
             f"{sorted(CHECKERS)}")
    summary = checker(data)
    print(f"check_bench_json: OK [{schema}] ({summary})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
