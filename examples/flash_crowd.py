#!/usr/bin/env python3
"""Flash crowd — a movie premiere served by a self-growing P2P system.

The scenario the paper's introduction motivates: a popular video goes live
with only a hundred seed suppliers while tens of thousands of peers pile
in right at release (the registry's ``flash_crowd`` scenario — an initial
arrival burst followed by a long tail).  A fixed server farm would need
capacity for the peak; the peer-to-peer system *grows its own capacity*
out of the audience.

The example compares DAC_p2p against NDAC_p2p and prints the capacity race,
per-class service quality, and the signalling bill.

Run:  python examples/flash_crowd.py [--scale 0.05] [--scenario diurnal]
"""

import argparse

from repro import Study
from repro.analysis.plots import ascii_chart, render_table
from repro.analysis.stats import value_at_hour
from repro.scenarios import get_scenario, scenario_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="population scale (1.0 = 50,100 peers)")
    parser.add_argument("--scenario", default="flash_crowd",
                        choices=scenario_names(),
                        help="workload to premiere under")
    args = parser.parse_args()

    config = get_scenario(args.scenario).build_config(scale=args.scale)
    print("Scenario:", config.describe())
    print(f"Peers: {config.total_peers}; if every peer eventually supplies, "
          "capacity grows ~15x beyond the seeds.\n")

    # a Study grid over the protocol axis; records are duck-compatible
    # with live results, so the report code below doesn't care
    result_set = (
        Study.from_config(config, scenario=args.scenario)
        .protocols("dac", "ndac")
        .run()
    )
    results = {record.protocol: record for record in result_set}

    chart = ascii_chart(
        {name: r.metrics.capacity_series for name, r in results.items()},
        title="Streaming capacity during the premiere (sessions)",
        y_label="sessions",
    )
    print(chart)
    print()

    hours = [12, 24, 36, 48, 72, 96, 144]
    rows = []
    for hour in hours:
        dac_value = value_at_hour(results["dac"].metrics.capacity_series, hour)
        ndac_value = value_at_hour(results["ndac"].metrics.capacity_series, hour)
        advantage = dac_value / ndac_value if ndac_value else float("inf")
        rows.append([f"{hour}h", f"{dac_value:.0f}", f"{ndac_value:.0f}",
                     f"{advantage:.2f}x"])
    print(render_table(["hour", "DAC_p2p", "NDAC_p2p", "DAC advantage"], rows,
                       title="Capacity race"))
    print()

    rows = []
    for name, result in results.items():
        waits = result.metrics.mean_waiting_seconds()
        delays = result.metrics.mean_buffering_delay_slots()
        rows.append([
            name,
            f"{sum(result.metrics.admitted.values())}",
            f"{waits[1] / 60:.0f} / {waits[4] / 60:.0f} min",
            f"{delays[1]:.2f} / {delays[4]:.2f} x dt",
            f"{result.message_stats['messages']:.0f}",
        ])
    print(render_table(
        ["protocol", "admitted", "wait cls1/cls4", "delay cls1/cls4",
         "control msgs"],
        rows,
        title="Service quality and signalling bill",
    ))
    print()
    dac = results["dac"]
    print(f"DAC_p2p finished at {100 * dac.capacity_fraction_of_max:.1f}% of the "
          "theoretical maximum capacity — the audience became the CDN.")


if __name__ == "__main__":
    main()
