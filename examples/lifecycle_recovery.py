#!/usr/bin/env python3
"""Mid-stream blackout — suppliers die while streaming, viewers recover.

The ``flash_departure`` scenario drops 30% of the supplier population at
hour 36, mid-premiere.  Every interrupted viewer re-probes for fresh
suppliers and resumes from its buffer position (honoring the paper's
exponential backoff); the continuity probes price the damage: stalls,
recovery latency, and the playback continuity index.

The example compares the three recovery policies the lifecycle layer
supports — resume, restart, abandon — on the same seeded world.

Run:  python examples/lifecycle_recovery.py [--scale 0.05]
"""

import argparse

from repro import get_scenario, run_simulation
from repro.analysis.plots import ascii_chart, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="population scale (1.0 = 50,100 peers)")
    args = parser.parse_args()

    scenario = get_scenario("flash_departure")
    results = {}
    for mode in ("resume", "restart", "abandon"):
        config = scenario.build_config(scale=args.scale, lifecycle_recovery=mode)
        results[mode] = run_simulation(config)
    print("Scenario:", results["resume"].config.describe())
    print()

    resume = results["resume"].metrics
    print(ascii_chart(
        {"suppliers": resume.supplier_count_series},
        title="Supplier population around the hour-36 blackout (resume)",
        y_label="suppliers",
    ))
    print()

    rows = []
    for mode, result in results.items():
        metrics = result.metrics
        interrupted = sum(metrics.interruptions.values())
        recovered = sum(metrics.recovered_sessions.values())
        lost = sum(metrics.sessions_lost.values())
        continuity = [
            value
            for value in metrics.playback_continuity_index().values()
            if value == value  # drop NaN classes
        ]
        latency = [
            value
            for value in metrics.mean_recovery_latency_seconds().values()
            if value == value
        ]
        rows.append([
            mode,
            f"{interrupted}",
            f"{recovered}",
            f"{lost}",
            f"{sum(latency) / len(latency) / 60:.0f} min" if latency else "-",
            f"{sum(continuity) / len(continuity):.4f}" if continuity else "-",
            f"{metrics.final_capacity():.0f}",
        ])
    print(render_table(
        ["recovery", "interrupted", "recovered", "lost", "mean latency",
         "continuity", "final capacity"],
        rows,
        title="What a mid-stream blackout costs, per recovery policy",
    ))
    print()
    print("resume keeps every viewer: the stall is the recovery latency plus")
    print("one fresh buffering delay.  abandon turns each interruption into a")
    print("lost viewer — and a supplier the system never gains.")


if __name__ == "__main__":
    main()
