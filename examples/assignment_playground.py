#!/usr/bin/env python3
"""Assignment playground — visualize the paper's Figure 1 and beyond.

Renders transmission timelines for the three assignment algorithms on the
paper's supplier set (classes 1, 2, 3, 3) as ASCII charts: each row is a
supplier's pipe, each cell shows which segment is being transmitted, and a
playback cursor shows why OTS_p2p can start earlier.

Run:  python examples/assignment_playground.py [class class ...]
      e.g.  python examples/assignment_playground.py 1 3 3 3 4 4
"""

import sys

from repro import (
    ClassLadder,
    SupplierOffer,
    contiguous_assignment,
    min_start_delay_slots,
    ots_assignment,
    sweep_assignment,
)
from repro.core.assignment import Assignment
from repro.streaming.buffer import occupancy_profile
from repro.streaming.playback import simulate_playback


def timeline(assignment: Assignment, slots: int = 18) -> str:
    """ASCII transmission timeline: one row per supplier, one column per slot."""
    rows = []
    for offer, segments in zip(assignment.suppliers, assignment.segment_lists):
        per_segment = 1 << offer.peer_class
        cells: list[str] = []
        position = 0
        # Repeat the periodic schedule to fill the timeline.
        period = assignment.period_len
        repetition = 0
        while len(cells) < slots:
            for local in segments:
                label = f"{local + repetition * period:>2}"
                cells.extend([label] * per_segment)
                if len(cells) >= slots:
                    break
            repetition += 1
        row = "".join(f"[{c}]" for c in cells[:slots])
        rows.append(f"  Ps{offer.peer_id} (c{offer.peer_class}): {row}")
    return "\n".join(rows)


def playback_row(delay: int, slots: int = 18) -> str:
    """ASCII playback cursor row: which segment plays during each slot."""
    cells = []
    for slot in range(slots):
        if slot < delay:
            cells.append("  buffering" [:4].strip().ljust(2))
            cells[-1] = ".."
        else:
            cells.append(f"{slot - delay:>2}")
    return "  playback : " + "".join(f"[{c}]" for c in cells)


def show(name: str, assignment: Assignment) -> None:
    delay = min_start_delay_slots(assignment)
    print(f"--- {name} ---")
    print(timeline(assignment))
    print(playback_row(delay))
    print(f"  buffering delay: {delay} x dt")
    replay = simulate_playback(assignment, delay)
    print(f"  playback continuous: {replay.continuous} "
          f"(verified by slot-by-slot replay)")
    stats = occupancy_profile(assignment, delay)
    print(f"  peak receiver buffer: {stats.peak_segments} segments "
          f"(at slot {stats.peak_slot})")
    print()


def main() -> None:
    classes = [int(c) for c in sys.argv[1:]] or [1, 2, 3, 3]
    ladder = ClassLadder(4)
    offers = [
        SupplierOffer(peer_id=i + 1, peer_class=c, units=ladder.offer_units(c))
        for i, c in enumerate(classes)
    ]
    total = sum(o.units for o in offers)
    if total != ladder.full_rate_units:
        raise SystemExit(
            f"offers sum to {total}/16 of R0 — a session needs exactly 16 "
            f"units (e.g. classes 1 2 3 3)"
        )

    print(f"Supplier classes: {classes}  "
          f"(class i offers R0/2^i; offers sum to R0)\n")
    show("Assignment I — contiguous blocks (paper Figure 1a)",
         contiguous_assignment(offers, ladder))
    show("Assignment II — the paper's Figure-2 sweep (Figure 1b)",
         sweep_assignment(offers, ladder))
    show("OTS_p2p — optimal sorted matching (Theorem 1: delay = n x dt)",
         ots_assignment(offers, ladder))


if __name__ == "__main__":
    main()
