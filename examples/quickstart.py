#!/usr/bin/env python3
"""Quickstart — the library in five minutes.

Walks through the paper's two contributions with the public API:

1. plan a multi-supplier streaming session with OTS_p2p and inspect the
   buffering delay (Theorem 1);
2. run a small peer-to-peer streaming simulation under DAC_p2p and watch
   the system capacity amplify itself.

Run:  python examples/quickstart.py
"""

from repro import (
    ClassLadder,
    MediaFile,
    SupplierOffer,
    min_start_delay_slots,
    ots_assignment,
    plan_session,
    run_simulation,
    theorem1_min_delay_slots,
)
from repro.scenarios import get_scenario


def part1_media_assignment() -> None:
    """OTS_p2p: assign a CBR stream to heterogeneous supplying peers."""
    print("=" * 70)
    print("Part 1 — optimal media data assignment (OTS_p2p)")
    print("=" * 70)

    # The paper's 4-class bandwidth ladder: class-i offers R0 / 2**i.
    ladder = ClassLadder(4)
    for peer_class in ladder.classes:
        print(
            f"  class {peer_class}: offers R0/{2 ** peer_class}"
            f" = {ladder.offer_units(peer_class)} units of R0/16"
        )

    # Four suppliers whose offers sum to exactly R0 (the Figure-1 set).
    offers = [
        SupplierOffer(peer_id=1, peer_class=1, units=ladder.offer_units(1)),
        SupplierOffer(peer_id=2, peer_class=2, units=ladder.offer_units(2)),
        SupplierOffer(peer_id=3, peer_class=3, units=ladder.offer_units(3)),
        SupplierOffer(peer_id=4, peer_class=3, units=ladder.offer_units(3)),
    ]
    assignment = ots_assignment(offers, ladder)
    print()
    print(assignment.describe())
    delay = min_start_delay_slots(assignment)
    print(f"\nbuffering delay: {delay} slots "
          f"(Theorem 1 minimum: {theorem1_min_delay_slots(len(offers))})")

    # Wrap it into a full session plan against a 60-minute video.
    media = MediaFile()  # paper default: 60 min show, 5 s segments
    session = plan_session(
        requester_id=99, requester_class=2, offers=offers, media=media, ladder=ladder
    )
    print()
    print(session.describe())


def part2_capacity_amplification() -> None:
    """DAC_p2p: a self-growing streaming system."""
    print()
    print("=" * 70)
    print("Part 2 — capacity amplification (DAC_p2p)")
    print("=" * 70)

    # The paper's workload from the scenario registry, at 1/50th of the
    # population so this runs in a couple of seconds.
    config = get_scenario("paper_default").build_config(scale=0.02)
    print(config.describe())
    result = run_simulation(config)
    print(result.summary())

    print("\ncapacity over time (sessions the supply side can sustain):")
    for point in result.metrics.capacity_series:
        if point.hour % 24 == 0:
            bar = "#" * int(60 * point.value / max(1, result.max_capacity))
            print(f"  {point.hour:5.0f} h |{bar:<60}| {point.value:.0f}")

    print("\nper-class outcomes (class 1 pledges the most bandwidth):")
    rejections = result.metrics.mean_rejections_before_admission()
    delays = result.metrics.mean_buffering_delay_slots()
    waits = result.metrics.mean_waiting_seconds()
    for peer_class in (1, 2, 3, 4):
        print(
            f"  class {peer_class}: {rejections[peer_class]:.2f} rejections, "
            f"{waits[peer_class] / 60:6.1f} min waiting, "
            f"buffering delay {delays[peer_class]:.2f} x dt"
        )
    print("\nHigher pledges -> fewer rejections, shorter waits, lower delay:")
    print("that differentiation is the paper's incentive mechanism.")


if __name__ == "__main__":
    part1_media_assignment()
    part2_capacity_amplification()
