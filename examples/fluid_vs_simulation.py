#!/usr/bin/env python3
"""Fluid model vs discrete-event simulation — theory meeting practice.

Integrates the protocol-free mean-field model of the self-growing system
(``repro.analysis.fluid``) and overlays it on actual DAC_p2p and NDAC_p2p
runs.  The
fluid curve is the capacity growth the feedback loop *could* deliver if
admissions only waited for free supply; the gap each protocol leaves
against it prices the mechanisms the fluid model ignores — probing
granularity, admission denials, backoff quantization.

Run:  python examples/fluid_vs_simulation.py [--scale 0.05] [--pattern 2]
"""

import argparse

from repro import Study
from repro.analysis.fluid import fluid_capacity_model, mean_offer_sessions
from repro.analysis.plots import ascii_chart, render_table
from repro.analysis.stats import area_under_series, value_at_hour
from repro.scenarios import scenario_for_pattern


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern", type=int, default=2, choices=[1, 2, 3, 4])
    args = parser.parse_args()

    config = scenario_for_pattern(args.pattern).build_config(scale=args.scale)
    print("Workload:", config.describe())
    print(f"Mean requester offer: {mean_offer_sessions(config):.3f} sessions/peer "
          "(the feedback gain of the self-growing loop)\n")

    fluid = fluid_capacity_model(config)
    # one declarative grid: the same seeded workload under both protocols
    result_set = Study.from_config(config).protocols("dac", "ndac").run()
    results = {record.protocol: record for record in result_set}

    print(ascii_chart(
        {
            "fluid": fluid.capacity,
            "dac": results["dac"].metrics.capacity_series,
            "ndac": results["ndac"].metrics.capacity_series,
        },
        title="Capacity: mean-field envelope vs simulated protocols",
        y_label="sessions",
    ))
    print()

    rows = []
    for hour in (12, 24, 36, 48, 60, 72, 96, 144):
        rows.append([
            f"{hour}h",
            f"{value_at_hour(fluid.capacity, hour):.0f}",
            f"{value_at_hour(results['dac'].metrics.capacity_series, hour):.0f}",
            f"{value_at_hour(results['ndac'].metrics.capacity_series, hour):.0f}",
        ])
    print(render_table(["hour", "fluid envelope", "DAC_p2p", "NDAC_p2p"], rows))

    fluid_area = area_under_series(fluid.capacity)
    for name, result in results.items():
        gap = fluid_area - area_under_series(result.metrics.capacity_series)
        print(f"\n{name}: leaves {100 * gap / fluid_area:.1f}% of the fluid "
              "envelope's capacity-hours unrealized")
    print("\nDAC's smaller gap is the paper's headline claim in one number:")
    print("differentiated admission wastes less of the achievable growth.")


if __name__ == "__main__":
    main()
