#!/usr/bin/env python3
"""Incentive study — does honesty about bandwidth pay?

The paper claims DAC_p2p "creates an incentive for peers to offer their
truly available out-bound bandwidth".  This example quantifies that claim
by simulating two worlds with identical physical resources:

* **truthful** — peers pledge their real class (the paper's 10/10/40/40 mix);
* **under-reporting** — every class-1 and class-2 peer pledges class 4
  instead (hiding bandwidth, e.g. to free-ride on upload).

Under-reporting shrinks the system's capacity pool *and*, under DAC_p2p,
demotes the under-reporters to the worst service class — so the defectors
hurt themselves most.  Under NDAC_p2p the personal penalty largely
disappears, which is why non-differentiated systems invite free-riding
(the Saroiu et al. measurement study the paper cites found exactly that).

Run:  python examples/incentive_study.py [--scale 0.05]
"""

import argparse

from repro import run_simulation
from repro.analysis.plots import render_table
from repro.analysis.stats import value_at_hour
from repro.scenarios import get_scenario


def build_configs(scale: float):
    """Truthful world from the registry; lying world derived from it.

    Deriving (rather than scaling the ``underreporting`` scenario
    independently) keeps both worlds' populations *identical* peer for
    peer at any scale — the defectors merely relabel themselves class 4,
    so any outcome difference is attributable to the hiding alone.
    """
    truthful = get_scenario("paper_default").build_config(scale=scale)
    total_high = truthful.requesting_peers[1] + truthful.requesting_peers[2]
    lying = truthful.replace(
        requesting_peers={
            1: 0,
            2: 0,
            3: truthful.requesting_peers[3],
            # the high-bandwidth peers now pledge (and deliver) class 4
            4: truthful.requesting_peers[4] + total_high,
        }
    )
    return truthful, lying


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    args = parser.parse_args()

    truthful_config, lying_config = build_configs(args.scale)
    print("World A (truthful):      ", truthful_config.describe())
    print("World B (under-reporting):", lying_config.describe())
    print()

    results = {
        "truthful": run_simulation(truthful_config),
        "under-reporting": run_simulation(lying_config),
    }

    # ------------------------------------------------------------------
    # System-level damage: the capacity pool shrinks for everyone.
    # ------------------------------------------------------------------
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            f"{result.max_capacity}",
            f"{value_at_hour(result.metrics.capacity_series, 72):.0f}",
            f"{result.metrics.final_capacity():.0f}",
            f"{sum(result.metrics.admitted.values())}",
        ])
    print(render_table(
        ["world", "max capacity", "capacity @72h", "final", "admitted"],
        rows,
        title="System-level effect of hiding bandwidth",
    ))
    print()

    # ------------------------------------------------------------------
    # Personal cost: compare the hiding peers' service quality with what
    # the same peers get when they pledge truthfully.
    # ------------------------------------------------------------------
    truthful = results["truthful"].metrics
    lying = results["under-reporting"].metrics
    honest_wait = (
        truthful.mean_waiting_seconds()[1] + truthful.mean_waiting_seconds()[2]
    ) / 2
    defector_wait = lying.mean_waiting_seconds()[4]
    honest_rejections = (
        truthful.mean_rejections_before_admission()[1]
        + truthful.mean_rejections_before_admission()[2]
    ) / 2
    defector_rejections = lying.mean_rejections_before_admission()[4]
    honest_delay = (
        truthful.mean_buffering_delay_slots()[1]
        + truthful.mean_buffering_delay_slots()[2]
    ) / 2
    defector_delay = lying.mean_buffering_delay_slots()[4]

    rows = [
        ["waiting time", f"{honest_wait / 60:.1f} min", f"{defector_wait / 60:.1f} min"],
        ["rejections before admission", f"{honest_rejections:.2f}",
         f"{defector_rejections:.2f}"],
        ["buffering delay", f"{honest_delay:.2f} x dt", f"{defector_delay:.2f} x dt"],
    ]
    print(render_table(
        ["metric", "pledging truthfully", "hiding bandwidth"],
        rows,
        title="What the high-bandwidth peers did to themselves (DAC_p2p)",
    ))
    print()
    if defector_wait > honest_wait:
        ratio = defector_wait / honest_wait if honest_wait else float("inf")
        print(f"Hiding bandwidth made the defectors wait {ratio:.1f}x longer —")
        print("DAC_p2p's differentiation is the incentive the paper promises.")
    else:
        print("Unexpected: defectors did not pay a waiting-time penalty at this")
        print("scale; rerun with a larger --scale for a contended system.")


if __name__ == "__main__":
    main()
