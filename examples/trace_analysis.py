#!/usr/bin/env python3
"""Trace analysis — opening up one simulated run event by event.

Records a structured trace of a DAC_p2p run, audits it against the paper's
model invariants, and mines it for protocol phenomena the aggregate metrics
hide:

* concurrent-session load over time (how hard the supply side works),
* reminder waves around arrival bursts (the tighten signal at work),
* the rejection histogram behind the Table-1 means,
* per-supplier utilisation (how many sessions each seed ended up serving).

Run:  python examples/trace_analysis.py [--scale 0.02] [--save trace.jsonl]
"""

import argparse
from collections import Counter

from repro.analysis.plots import render_table, sparkline
from repro.scenarios import get_scenario, scenario_names
from repro.simulation.system import StreamingSystem
from repro.simulation.trace import TraceRecorder
from repro.simulation.validation import audit_system

HOUR = 3600.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--scenario", default="diurnal", choices=scenario_names(),
                        help="workload to trace")
    parser.add_argument("--save", type=str, default=None,
                        help="also write the trace as JSON Lines")
    args = parser.parse_args()

    config = get_scenario(args.scenario).build_config(scale=args.scale)
    print("Run:", config.describe())

    trace = TraceRecorder(path=args.save) if args.save else TraceRecorder()
    system = StreamingSystem(config, trace=trace)
    system.run()
    trace.close()

    print(f"\ntrace: {len(trace.events)} events "
          f"({trace.count('admission')} admissions, "
          f"{trace.count('rejection')} rejections, "
          f"{trace.count('supplier_joined')} supplier joins, "
          f"{trace.count('idle_elevation')} idle elevations)")

    # ------------------------------------------------------------------
    # 1. The audit: every model invariant of the paper holds.
    # ------------------------------------------------------------------
    report = audit_system(system, trace)
    print(f"\ninvariant audit: {report.summary()}")

    # ------------------------------------------------------------------
    # 2. Concurrent sessions per hour (supply-side load).
    # ------------------------------------------------------------------
    horizon_hours = int(config.horizon_seconds / HOUR)
    load = [0] * horizon_hours
    show_hours = config.show_seconds / HOUR
    for event in trace.of_kind("admission"):
        start = event["t"] / HOUR
        for hour in range(int(start), min(int(start + show_hours) + 1,
                                          horizon_hours)):
            load[hour] += 1
    print("\nconcurrent sessions per hour:")
    print("  " + sparkline([float(v) for v in load], width=72))
    print(f"  peak: {max(load)} concurrent sessions at hour {load.index(max(load))}")

    # ------------------------------------------------------------------
    # 3. Rejections histogram (what's behind the Table-1 means).
    # ------------------------------------------------------------------
    per_peer = Counter()
    for event in trace.of_kind("rejection"):
        per_peer[event["peer"]] = event["rejections"]
    histogram = Counter(per_peer.values())
    admitted_first_try = trace.count("admission") - len(per_peer)
    rows = [["0 (first try)", str(admitted_first_try)]]
    for rejections in sorted(histogram):
        rows.append([str(rejections), str(histogram[rejections])])
    print()
    print(render_table(["rejections before admission", "peers"], rows,
                       title="Rejection histogram"))

    # ------------------------------------------------------------------
    # 4. Reminder waves: tighten pressure follows the arrival bursts.
    # ------------------------------------------------------------------
    elevation_hours = Counter(
        int(e["t"] / HOUR) for e in trace.of_kind("idle_elevation")
    )
    series = [float(elevation_hours.get(h, 0)) for h in range(horizon_hours)]
    print("\nidle elevations per hour (relax pressure):")
    print("  " + sparkline(series, width=72))

    # ------------------------------------------------------------------
    # 5. Who did the work: sessions served per seed supplier.
    # ------------------------------------------------------------------
    seed_rows = []
    for peer in system.peers:
        if peer.is_seed:
            seed_rows.append([f"seed {peer.peer_id}", str(peer.sessions_served)])
    print()
    print(render_table(["supplier", "sessions served"], seed_rows[:10],
                       title="Seed supplier utilisation (first 10)"))

    if args.save:
        print(f"\ntrace written to {args.save}")


if __name__ == "__main__":
    main()
