#!/usr/bin/env python3
"""Chord DHT demo — the distributed candidate-lookup substrate.

The paper's footnote 4 allows requesting peers to discover candidate
suppliers "by using a distributed lookup service such as Chord".  This
example drives the Chord implementation directly:

* builds a ring, shows key ownership and finger-table routing,
* registers suppliers in the supplier index and samples candidates,
* measures routing hop counts against the O(log n) expectation,
* demonstrates churn: nodes leave, keys migrate, lookups keep working.

Run:  python examples/chord_lookup_demo.py
"""

import math
import random

from repro.network.chord import ChordRing, SupplierIndex, chord_id


def section(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    rng = random.Random(2002)

    section("1. Building a 64-node ring")
    ring = ChordRing(bits=24)
    for peer_id in range(64):
        ring.join(peer_id)
    nodes = ring.nodes
    print(f"ring of {len(ring)} nodes over a {ring.bits}-bit identifier circle")
    print("first five nodes (id -> successor):")
    for node in nodes[:5]:
        print(f"  {node.node_id:>8}  ->  {node.successor.node_id:>8}")

    section("2. Key ownership and routing")
    for name in ("movie.mkv", "trailer.mp4", "poster.png"):
        key = chord_id(name, ring.bits)
        owner = ring.find_successor(key)
        print(f"  key {name!r} hashes to {key:>8}; owned by node {owner.node_id}")
    probes = 400
    before = ring.lookup_hops, ring.lookups
    for _ in range(probes):
        ring.find_successor(rng.randrange(ring.modulus))
    hops = (ring.lookup_hops - before[0]) / probes
    print(f"\n  mean routing hops over {probes} random lookups: {hops:.2f} "
          f"(log2({len(ring)}) = {math.log2(len(ring)):.2f})")

    section("3. The supplier index")
    index = SupplierIndex(ring, media_id="movie.mkv")
    for peer_id in range(1000, 1200):
        index.register(peer_id, peer_class=1 + peer_id % 4)
    print(f"registered {index.num_suppliers} suppliers for 'movie.mkv'")
    candidates = index.sample_candidates(8, rng)
    print("a requesting peer samples M = 8 candidates:")
    for peer_id, peer_class in candidates:
        print(f"  peer {peer_id} (class {peer_class}, offers R0/{2 ** peer_class})")

    section("4. Churn: a quarter of the ring leaves")
    stored_before = sum(
        len(entries) for node in ring.nodes for entries in node.storage.values()
    )
    for node in list(ring.nodes)[::4]:
        ring.leave(node)
    stored_after = sum(
        len(entries) for node in ring.nodes for entries in node.storage.values()
    )
    print(f"nodes: 64 -> {len(ring)}; stored entries conserved: "
          f"{stored_before} -> {stored_after}")
    survivors = index.sample_candidates(8, rng)
    print(f"candidate sampling still works: {[pid for pid, _ in survivors]}")
    print(f"mean lookup hops now: {ring.mean_lookup_hops:.2f}")


if __name__ == "__main__":
    main()
