#!/usr/bin/env python3
"""Study grid — declarative experiment grids with caching and export.

Declares the repository's acceptance grid — {DAC, NDAC} × two scenarios
× several seeds — as one :class:`repro.Study`, runs it over a worker
pool, prints mean ± CI aggregates, exports the records to JSON and CSV,
and then runs the *same* study again to show it served entirely from the
on-disk :class:`repro.ResultStore` with identical records.

Run:  python examples/study_grid.py [--scale 0.02] [--jobs 2] [--out study_out]
"""

import argparse
import time
from pathlib import Path

from repro import ResultStore, Study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="population scale (1.0 = 50,100 peers)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="replications per grid point (default 3)")
    parser.add_argument("--out", default="study_out",
                        help="directory for exports and the record cache")
    args = parser.parse_args()

    out = Path(args.out)
    store = ResultStore(out / "cache")
    study = (
        Study.from_scenarios(["paper_default", "flash_crowd"], scale=args.scale)
        .protocols("dac", "ndac")
        .seeds(args.seeds)
    )
    print(f"grid: 2 scenarios x 2 protocols x {args.seeds} seeds "
          f"= {len(study.specs())} runs, jobs={args.jobs}\n")

    start = time.perf_counter()
    result_set = study.run(jobs=args.jobs, store=store)
    first_wall = time.perf_counter() - start

    for record in result_set:
        print(f"  {record.scenario:>13} {record.protocol:>4} "
              f"seed={record.seed}  "
              f"capacity {record.scalars['final_capacity']:.0f} "
              f"({100 * record.capacity_fraction_of_max:.1f}% of max)")

    print("\nfinal capacity, mean ± 95% CI across seeds:")
    for key, aggregate in result_set.aggregate("final_capacity").items():
        label = " ".join(f"{name}={value}" for name, value in key)
        print(f"  {label}: {aggregate}")

    json_path = out / "study.json"
    csv_path = out / "study.csv"
    result_set.to_json(json_path)
    result_set.to_csv(csv_path)
    print(f"\nexported {json_path} and {csv_path}")

    start = time.perf_counter()
    cached_set = study.run(jobs=args.jobs, store=store)
    cached_wall = time.perf_counter() - start
    identical = cached_set.to_json() == result_set.to_json()
    print(f"second run: {first_wall:.2f}s -> {cached_wall:.2f}s, "
          f"served from cache with identical records: {identical}")


if __name__ == "__main__":
    main()
