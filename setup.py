"""Legacy setup shim for wheel-less environments.

All metadata lives in ``pyproject.toml``.  This shim exists because the
offline environments this repo targets have no ``wheel`` package, while
setuptools' PEP 517/660 code paths assume it in two places:

* ``dist_info`` (metadata generation) delegates the egg-info →
  dist-info conversion to a ``bdist_wheel`` command normally provided by
  the ``wheel`` package — :class:`MinimalBdistWheel` below supplies the
  three entry points setuptools actually calls (``egg2dist``,
  ``write_wheelfile``, ``get_tag``);
* ``editable_wheel`` (``pip install -e .``) lazily imports
  ``wheel.wheelfile.WheelFile`` to zip the editable wheel —
  :func:`_install_wheel_shim` registers a minimal RECORD-writing
  ``zipfile`` subclass under that name in ``sys.modules`` before the
  import happens (the build backend executes ``setup.py`` in-process, so
  the registration is visible to it).

With the real ``wheel`` package installed, the shim steps aside
entirely.  Building *distributable* (non-editable) wheels still requires
the real package.
"""

import sys

from setuptools import setup

try:
    from wheel.bdist_wheel import bdist_wheel as _  # noqa: F401

    CMDCLASS = {}
except ImportError:
    import base64
    import hashlib
    import os
    import shutil
    import types
    import zipfile
    from distutils.core import Command
    from email.parser import Parser

    WHEEL_FILE_CONTENT = (
        "Wheel-Version: 1.0\n"
        "Generator: setup-py-shim (no wheel package)\n"
        "Root-Is-Purelib: true\n"
        "Tag: py3-none-any\n"
    )

    class MinimalBdistWheel(Command):
        description = "egg-info to dist-info conversion (no `wheel` package)"
        user_options = []

        def initialize_options(self):
            pass

        def finalize_options(self):
            pass

        def run(self):
            raise RuntimeError(
                "building a distributable wheel requires the `wheel` "
                "package; this shim only supports metadata generation "
                "and editable installs"
            )

        def get_tag(self):
            return ("py3", "none", "any")

        def write_wheelfile(self, dist_info_dir):
            path = os.path.join(dist_info_dir, "WHEEL")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(WHEEL_FILE_CONTENT)

        @staticmethod
        def _requires_dist(egginfo_path):
            """Requires-Dist / Provides-Extra lines from requires.txt."""
            requires_path = os.path.join(egginfo_path, "requires.txt")
            if not os.path.isfile(requires_path):
                return
            extra = marker = None
            with open(requires_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    if line.startswith("[") and line.endswith("]"):
                        extra, _, marker = line[1:-1].partition(":")
                        if extra:
                            yield ("Provides-Extra", extra)
                        continue
                    conditions = []
                    if extra:
                        conditions.append(f'extra == "{extra}"')
                    if marker:
                        conditions.append(f"({marker})")
                    if conditions:
                        line = f"{line} ; {' and '.join(conditions)}"
                    yield ("Requires-Dist", line)

        def egg2dist(self, egginfo_path, distinfo_path):
            """The method ``setuptools.command.dist_info`` calls."""
            pkginfo_path = os.path.join(egginfo_path, "PKG-INFO")
            with open(pkginfo_path, encoding="utf-8") as handle:
                metadata = Parser().parse(handle)
            metadata.replace_header("Metadata-Version", "2.1")
            for name, value in self._requires_dist(egginfo_path):
                metadata.add_header(name, value)

            if os.path.isdir(distinfo_path):
                shutil.rmtree(distinfo_path)
            os.makedirs(distinfo_path)
            with open(
                os.path.join(distinfo_path, "METADATA"), "w", encoding="utf-8"
            ) as handle:
                handle.write(metadata.as_string())
            for extra_file in ("entry_points.txt", "top_level.txt"):
                source = os.path.join(egginfo_path, extra_file)
                if os.path.isfile(source):
                    shutil.copy(source, os.path.join(distinfo_path, extra_file))
            self.write_wheelfile(distinfo_path)

    class _ShimWheelFile(zipfile.ZipFile):
        """RECORD-writing zip, API-compatible with wheel.wheelfile.WheelFile
        as far as setuptools' ``editable_wheel`` exercises it."""

        def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
            super().__init__(file, mode, compression=compression)
            self._shim_records = []
            base = os.path.basename(str(file))
            name_version = "-".join(base.split("-")[:2])
            self.dist_info_path = f"{name_version}.dist-info"

        def _record(self, arcname, data):
            digest = (
                base64.urlsafe_b64encode(hashlib.sha256(data).digest())
                .rstrip(b"=")
                .decode("ascii")
            )
            self._shim_records.append(f"{arcname},sha256={digest},{len(data)}")

        def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
            super().writestr(zinfo_or_arcname, data, *args, **kwargs)
            arcname = getattr(zinfo_or_arcname, "filename", zinfo_or_arcname)
            if isinstance(data, str):
                data = data.encode("utf-8")
            self._record(arcname, data)

        def write(self, filename, arcname=None, *args, **kwargs):
            super().write(filename, arcname, *args, **kwargs)
            with open(filename, "rb") as handle:
                self._record(arcname or filename, handle.read())

        def write_files(self, base_dir):
            for root, _dirs, files in os.walk(base_dir):
                for name in sorted(files):
                    path = os.path.join(root, name)
                    self.write(path, os.path.relpath(path, base_dir))

        def close(self):
            if self.fp is not None and self.mode == "w":
                record_path = f"{self.dist_info_path}/RECORD"
                lines = [*self._shim_records, f"{record_path},,", ""]
                super().writestr(record_path, "\n".join(lines))
            super().close()

    def _install_wheel_shim():
        if "wheel.wheelfile" in sys.modules:
            return
        wheel_module = types.ModuleType("wheel")
        wheelfile_module = types.ModuleType("wheel.wheelfile")
        wheelfile_module.WheelFile = _ShimWheelFile
        wheel_module.wheelfile = wheelfile_module
        sys.modules["wheel"] = wheel_module
        sys.modules["wheel.wheelfile"] = wheelfile_module

    _install_wheel_shim()
    CMDCLASS = {"bdist_wheel": MinimalBdistWheel}

setup(cmdclass=CMDCLASS)
