"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Simulation
results are cached per configuration so that, e.g., the DAC/pattern-2 run
feeding Figures 4, 5, 6 and Table 1 executes once.

Scale
-----
``REPRO_SCALE`` (default ``0.1``) scales the peer population; ``1.0`` is the
paper's full 50,100 peers.  All reported *shapes* are scale-invariant
because the protocol dynamics depend on supply/demand ratios.

Output
------
Each benchmark writes its rendered report to ``benchmarks/output/<name>.txt``
and prints it (visible with ``pytest -s``); ``docs/EXPERIMENTS.md`` maps
every paper artifact to its benchmark and CLI recipe.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.orchestration.runspec import config_hash
from repro.orchestration.store import ResultStore
from repro.scenarios import get_scenario
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import SimulationResult, run_simulation

OUTPUT_DIR = Path(__file__).parent / "output"

_RESULT_CACHE: dict[tuple, SimulationResult] = {}


def study_store() -> ResultStore | None:
    """Disk-backed record store shared across benchmark invocations.

    Studies run through it skip any spec already computed by a previous
    ``pytest benchmarks`` invocation at the same ``REPRO_SCALE`` (the
    spec hash covers the whole config, so scale changes never collide).
    Lives under ``benchmarks/output/``, which is gitignored.

    Caution: the spec hash covers the *config*, not the simulator code —
    after changing simulation logic without bumping ``__version__``,
    delete ``benchmarks/output/cache`` or run with ``REPRO_BENCH_CACHE=0``
    (returns ``None``, disabling the store) so assertions exercise the
    new code instead of stale records.
    """
    if os.environ.get("REPRO_BENCH_CACHE", "1") == "0":
        return None
    return ResultStore(OUTPUT_DIR / "cache")


def repro_scale() -> float:
    """Population scale for benchmark runs (env ``REPRO_SCALE``)."""
    return float(os.environ.get("REPRO_SCALE", "0.1"))


def paper_config(**overrides: object) -> SimulationConfig:
    """The paper's workload (scenario registry) at benchmark scale."""
    return get_scenario("paper_default").build_config(
        scale=repro_scale(), **overrides
    )


def cached_run(config: SimulationConfig) -> SimulationResult:
    """Run (or reuse) the simulation for ``config``.

    Keyed by the run-spec content hash, which covers *every* config field
    (minus the result-irrelevant kernel) — a hand-maintained field tuple
    here silently collided when new knobs were added.
    """
    key = config_hash(config)
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = run_simulation(config)
    return _RESULT_CACHE[key]


def emit_report(name: str, text: str) -> None:
    """Print a benchmark's report and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{'=' * 78}\n{text}\n{'=' * 78}")


@pytest.fixture(scope="session")
def scale() -> float:
    """Session fixture exposing the configured population scale."""
    return repro_scale()
