"""Micro-benchmarks of the performance-critical substrates.

These are classical pytest-benchmark timings (many rounds, statistics)
rather than one-shot experiment reproductions: the event engine, the
directory's O(1)-update/uniform-sample registry, Chord routing, OTS_p2p,
and the end-to-end simulator throughput in protocol events per second.
They guard against performance regressions that would make the full-scale
(``REPRO_SCALE=1.0``) harness impractical.
"""

from __future__ import annotations

import random

from repro.core.assignment import ots_assignment
from repro.core.model import ClassLadder, SupplierOffer
from repro.network.chord import ChordRing
from repro.network.directory import CentralDirectory
from repro.scenarios import get_scenario
from repro.simulation.engine import Simulator
from repro.simulation.system import StreamingSystem


def test_engine_event_throughput(benchmark):
    """Schedule + drain 10,000 events through the heap."""

    def run():
        sim = Simulator()
        sink = []
        for i in range(10_000):
            sim.schedule_at(float(i % 97), sink.append, i)
        sim.run()
        return len(sink)

    assert benchmark(run) == 10_000


def test_directory_sampling(benchmark):
    """Sample M=8 candidates from a 50,000-supplier directory."""
    directory = CentralDirectory()
    for peer_id in range(50_000):
        directory.register("video", peer_id, 1 + peer_id % 4)
    rng = random.Random(5)

    result = benchmark(directory.sample_candidates, "video", 8, rng)
    assert len(result) == 8


def test_directory_register_unregister(benchmark):
    """Churn a directory entry (swap-removal path)."""
    directory = CentralDirectory()
    for peer_id in range(10_000):
        directory.register("video", peer_id, 1)

    def churn():
        directory.unregister("video", 5_000)
        directory.register("video", 5_000, 1)

    benchmark(churn)
    assert directory.num_suppliers("video") == 10_000


def test_chord_lookup(benchmark):
    """One find_successor on a 500-node ring (warm finger tables)."""
    ring = ChordRing(bits=24)
    for peer_id in range(500):
        ring.join(peer_id)
    rng = random.Random(9)
    for node in ring.nodes:  # warm every finger table
        ring.fix_fingers(node)
    keys = [rng.randrange(ring.modulus) for _ in range(256)]
    index = iter(range(10**9))

    def lookup():
        return ring.find_successor(keys[next(index) % 256])

    node = benchmark(lookup)
    assert node is not None


def test_ots_assignment_paper_ladder(benchmark):
    """OTS_p2p on a typical 6-supplier session."""
    ladder = ClassLadder(4)
    classes = [1, 3, 3, 3, 4, 4]
    offers = [
        SupplierOffer(i + 1, c, ladder.offer_units(c))
        for i, c in enumerate(classes)
    ]
    assignment = benchmark(ots_assignment, offers, ladder)
    assert assignment.num_suppliers == 6


def test_simulator_end_to_end_throughput(benchmark):
    """Protocol events per second on a 1,002-peer full run."""
    config = get_scenario("paper_default").build_config(scale=0.02)

    def run():
        system = StreamingSystem(config)
        system.run()
        return system.sim.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events > 1_000
