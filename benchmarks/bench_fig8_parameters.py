"""Figure 8 — impact of protocol parameters M and T_out on capacity growth.

(a) Number of probed candidates ``M ∈ {4, 8, 16, 32}``: M = 4 grows the
    system markedly slower; beyond 8 the improvement shrinks fast (while
    probe traffic keeps rising — we report that too).
(b) Idle elevation period ``T_out ∈ {1, 2, 20, 60, 120} min``: very short
    timeouts hurt, because idle suppliers relax their differentiation too
    soon and miss higher-class requesters.

Both sweeps are declared as :class:`~repro.orchestration.study.Study`
grids backed by the shared on-disk record store, so a repeated benchmark
invocation asserts on cache-served records instead of re-simulating.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report, paper_config, study_store
from repro.analysis.report import figure8_report
from repro.analysis.stats import area_under_series
from repro.orchestration.study import Study

MINUTE = 60.0


def test_figure8a_impact_of_m(benchmark):
    """Sweep the candidate count M (pattern 2, DAC)."""

    def run():
        result_set = (
            Study.from_config(paper_config(arrival_pattern=2))
            .sweep("probe_candidates", [4, 8, 16, 32])
            .run(store=study_store())
        )
        return {record.axis("probe_candidates"): record for record in result_set}

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = figure8_report(sweep, parameter_label="M")
    probes = "\n".join(
        f"  M={m}: probe messages = {record.message_stats['count_probe']:.0f}"
        for m, record in sweep.items()
    )
    emit_report("fig8a_impact_of_M", text + "\nprobe overhead:\n" + probes)

    areas = {m: area_under_series(r.metrics.capacity_series) for m, r in sweep.items()}

    # M = 4 is significantly slower than M = 8.
    assert areas[4] < areas[8]
    # Diminishing returns beyond M = 8.
    gain_4_to_8 = areas[8] - areas[4]
    gain_8_to_32 = areas[32] - areas[8]
    assert gain_8_to_32 < gain_4_to_8
    # Probe overhead per request keeps growing with M even as the benefit
    # flattens (the paper's "it may increase the probing overhead and
    # traffic").  Total probes can *fall* with M because fewer rejections
    # mean fewer retries — the per-request cost is the fair metric.
    def probes_per_request(record):
        total_requests = sum(record.metrics.requests.values())
        return record.message_stats["count_probe"] / total_requests

    assert probes_per_request(sweep[32]) > probes_per_request(sweep[8])


def test_figure8b_impact_of_t_out(benchmark):
    """Sweep the idle elevation period T_out (pattern 2, DAC)."""

    def run():
        result_set = (
            Study.from_config(paper_config(arrival_pattern=2))
            .sweep(
                "t_out_seconds",
                [minutes * MINUTE for minutes in (1, 2, 20, 60, 120)],
            )
            .run(store=study_store())
        )
        return {
            int(record.axis("t_out_seconds") / MINUTE): record
            for record in result_set
        }

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    relabeled = {f"{m}min": record for m, record in sweep.items()}
    text = figure8_report(relabeled, parameter_label="T_out")
    emit_report("fig8b_impact_of_Tout", text)

    areas = {
        m: area_under_series(r.metrics.capacity_series) for m, r in sweep.items()
    }
    # "T_out should not be too short": 1-minute elevation must not beat the
    # paper's 20-minute default.
    assert areas[1] <= areas[20] * 1.02
    # All settings still converge eventually.
    for record in sweep.values():
        assert record.capacity_fraction_of_max > 0.9
