#!/usr/bin/env python3
"""Calendar-kernel bucket width: fixed widths vs. the auto heuristic.

The calendar queue's one tuning knob is its bucket width.  This
benchmark drives the :class:`~repro.simulation.engine.Simulator` with a
deterministic workload shaped like the simulation's event mix —
prescheduled arrivals spread over a multi-day window, each spawning the
near-future timer churn (idle-elevation ``T_out``, backoff retries,
session ends) that dominates the hot loop — and measures drain
throughput under:

* the heap kernel (the width-free baseline);
* the calendar kernel at a range of fixed widths;
* the auto-calibrating calendar kernel (``calendar-auto``), which also
  reports the width it learned from the staged workload.

All kernels dispatch the identical event sequence (the determinism
contract), so wall time is the only thing that varies.

Usage::

    python benchmarks/bench_calendar_width.py            # ~200k arrivals
    python benchmarks/bench_calendar_width.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-style invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.simulation.engine import Simulator  # noqa: E402
from repro.simulation.kernel import (  # noqa: E402
    AutoCalendarKernel,
    CalendarKernel,
    EventKernel,
    HeapKernel,
)

#: fixed bucket widths to sweep (simulated seconds)
FIXED_WIDTHS = (10.0, 60.0, 120.0, 600.0, 3600.0)

#: the paper's three-day arrival window
WINDOW_SECONDS = 259_200.0


def run_workload(kernel: EventKernel, arrivals: int, seed: int) -> tuple[int, float]:
    """Drain one synthetic workload; return (events fired, wall seconds).

    Arrivals are prescheduled uniformly over the window; each one spawns
    an idle-elevation timer (+20 min), a session end (+2 h) and, with
    probability 0.35, a backoff-style retry 10-40 min out.  RNG draws
    happen in dispatch order, which the determinism contract makes
    identical across kernels, so every kernel replays the same events.
    """
    rng = random.Random(seed)
    sim = Simulator(kernel=kernel)
    fired = [0]

    def timer(_argument: object) -> None:
        fired[0] += 1

    def arrival(_argument: object) -> None:
        fired[0] += 1
        sim.schedule_in(1200.0, timer, None)
        sim.schedule_in(7200.0, timer, None)
        if rng.random() < 0.35:
            sim.schedule_in(600.0 + rng.random() * 1800.0, timer, None)

    for _ in range(arrivals):
        sim.schedule_at(rng.random() * WINDOW_SECONDS, arrival, None)
    start = perf_counter()
    sim.run()
    return fired[0], perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 20k arrivals instead of 200k")
    parser.add_argument("--arrivals", type=int, default=None,
                        help="prescheduled arrival count (overrides --quick)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    arrivals = args.arrivals or (20_000 if args.quick else 200_000)
    rows: list[tuple[str, int, float]] = []

    events, wall = run_workload(HeapKernel(), arrivals, args.seed)
    rows.append(("heap", events, wall))
    for width in FIXED_WIDTHS:
        events, wall = run_workload(
            CalendarKernel(bucket_seconds=width), arrivals, args.seed
        )
        rows.append((f"calendar w={width:g}s", events, wall))
    auto = AutoCalendarKernel()
    events, wall = run_workload(auto, arrivals, args.seed)
    rows.append((f"calendar-auto (learned w={auto._width:.1f}s)", events, wall))

    reference_events = rows[0][1]
    print(f"{arrivals:,} arrivals over {WINDOW_SECONDS / 3600:.0f} h, "
          f"{reference_events:,} events drained per kernel\n")
    print(f"{'kernel':<36} {'wall (s)':>9} {'events/sec':>12}")
    for label, events, wall in rows:
        if events != reference_events:  # the contract makes this impossible
            print(f"WARNING: {label} fired {events:,} events, "
                  f"expected {reference_events:,}", file=sys.stderr)
        print(f"{label:<36} {wall:>9.3f} {events / wall:>12,.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
