#!/usr/bin/env python3
"""Engine scaling benchmark: object vs. array events/sec across populations.

Measures both execution engines on the ``metropolis_100k`` workload at a
range of population scales — the per-peer object walk of
:class:`~repro.simulation.system.StreamingSystem` against the
struct-of-arrays :class:`~repro.simulation.arrayengine.ArrayEngine` —
then runs the ``megacity_1m`` scenario (a million requesters) end-to-end
on the array engine.

Setup (system construction: peer tables, prescheduled arrivals) and the
dispatch loop are timed separately; ``events_per_sec`` is dispatch-loop
throughput (``events / run_seconds``), the quantity that scales with
event count, while ``wall_seconds`` keeps the total honest.  Both
engines produce bit-identical results by contract (the parity suite in
``tests/simulation/test_arrayengine.py`` pins that), so throughput is
the only thing compared here.

Results are printed and written to
``benchmarks/output/BENCH_engine_scaling.json`` (schema
``repro.bench_engine_scaling.v1``, validated by
``scripts/check_bench_json.py``).

Usage::

    python benchmarks/bench_engine_scaling.py            # full sweep (minutes)
    python benchmarks/bench_engine_scaling.py --quick    # CI smoke (seconds)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-style invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._version import __version__  # noqa: E402
from repro.scenarios import get_scenario  # noqa: E402
from repro.simulation.arrayengine import ArrayEngine  # noqa: E402
from repro.simulation.system import StreamingSystem  # noqa: E402

SCHEMA = "repro.bench_engine_scaling.v1"
SCENARIO = "metropolis_100k"
MEGACITY = "megacity_1m"
FULL_SCALES = (0.05, 0.1, 0.25, 1.0)
QUICK_SCALES = (0.02,)
#: megacity scale per mode: full runs the actual million-peer build
MEGACITY_SCALE = {"full": 1.0, "quick": 0.004}
DEFAULT_OUT = REPO_ROOT / "benchmarks" / "output" / "BENCH_engine_scaling.json"


def measure(config, repeats: int) -> dict:
    """Best-of-``repeats`` (by loop throughput) timings of one config.

    Construction and the dispatch loop are timed separately so the two
    engines' loops are compared like for like: setup is a one-off cost
    (and the array engine's includes vectorized arrival precomputation),
    the loop is what runs once per event.
    """
    best = None
    for _ in range(repeats):
        start = perf_counter()
        if config.engine == "array":
            system = ArrayEngine(config)
            built = perf_counter()
            system.run()
            done = perf_counter()
            events = system.events_processed
        else:
            system = StreamingSystem(config)
            built = perf_counter()
            system.run()
            done = perf_counter()
            events = system.sim.events_processed
        run_seconds = done - built
        events_per_sec = events / run_seconds
        if best is None or events_per_sec > best["events_per_sec"]:
            best = {
                "events": events,
                "setup_seconds": round(built - start, 3),
                "run_seconds": round(run_seconds, 3),
                "wall_seconds": round(done - start, 3),
                "events_per_sec": round(events_per_sec, 1),
            }
    return best


def run_bench(scales, repeats: int, quick: bool) -> dict:
    """Execute the sweep plus the megacity run; assemble the payload."""
    scenario = get_scenario(SCENARIO)
    runs = []
    speedups = []
    for scale in scales:
        config = scenario.build_config(scale=scale)
        peers = config.total_peers
        by_engine = {}
        for engine in ("object", "array"):
            timings = measure(config.replace(engine=engine), repeats)
            by_engine[engine] = timings
            runs.append({
                "scale": scale, "peers": peers, "scenario": SCENARIO,
                "engine": engine, **timings,
            })
            print(f"scale {scale:>5} ({peers} peers)  {engine:<6} "
                  f"{timings['events_per_sec']:>10,.0f} ev/s  "
                  f"(setup {timings['setup_seconds']:.2f}s, "
                  f"run {timings['run_seconds']:.2f}s)", flush=True)
        speedups.append({
            "scale": scale,
            "peers": peers,
            "events_per_sec_object": by_engine["object"]["events_per_sec"],
            "events_per_sec_array": by_engine["array"]["events_per_sec"],
            "speedup_array_vs_object": round(
                by_engine["array"]["events_per_sec"]
                / by_engine["object"]["events_per_sec"], 2,
            ),
            "speedup_total_wall": round(
                by_engine["object"]["wall_seconds"]
                / by_engine["array"]["wall_seconds"], 2,
            ),
        })

    mega_scenario = get_scenario(MEGACITY)
    mega_scale = MEGACITY_SCALE["quick" if quick else "full"]
    mega_config = mega_scenario.build_config(scale=mega_scale)
    timings = measure(mega_config, 1)
    megacity = {
        "scenario": MEGACITY,
        "scale": mega_scale,
        "peers": mega_config.total_peers,
        "engine": mega_config.engine,
        "completed": True,  # measure() raised otherwise
        **timings,
    }
    print(f"{MEGACITY} scale {mega_scale} ({megacity['peers']:,} peers)  "
          f"{timings['events']:,} events in {timings['wall_seconds']:.1f}s "
          f"({timings['events_per_sec']:,.0f} ev/s)", flush=True)

    return {
        "schema": SCHEMA,
        "version": __version__,
        "quick": quick,
        "scenario": SCENARIO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
        "speedups": speedups,
        "megacity": megacity,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one tiny scale and a scaled-down "
                             "megacity instead of the full sweep")
    parser.add_argument("--repeats", type=int, default=1,
                        help="measurements per configuration; best reported")
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    scales = QUICK_SCALES if args.quick else FULL_SCALES
    payload = run_bench(scales, repeats=max(1, args.repeats), quick=args.quick)

    out_path = Path(args.out) if args.out else DEFAULT_OUT
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out_path}")
    for entry in payload["speedups"]:
        print(f"scale {entry['scale']:>5}: array "
              f"{entry['events_per_sec_array']:,.0f} ev/s — "
              f"{entry['speedup_array_vs_object']:.2f}x the object loop "
              f"({entry['speedup_total_wall']:.2f}x total wall)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
