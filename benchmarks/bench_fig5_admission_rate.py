"""Figure 5 — per-class accumulative request admission rate.

Under DAC_p2p the admission rate is differentiated: the higher a requesting
peer's class, the higher its cumulative admission rate at any time during
the ramp, while NDAC_p2p's classes stay bunched together.  Moreover DAC's
rates dominate NDAC's per class (for class 4, except possibly the first few
hours — exactly the paper's caveat).
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.report import figure5_report
from repro.analysis.stats import value_at_hour


def test_figure5_admission_rates(benchmark):
    """Regenerate Figure 5 (pattern 2, both protocols)."""

    def run():
        return (
            cached_run(paper_config(protocol="dac", arrival_pattern=2)),
            cached_run(paper_config(protocol="ndac", arrival_pattern=2)),
        )

    dac, ndac = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        figure5_report(dac, label="DAC_p2p")
        + "\n\n"
        + figure5_report(ndac, label="NDAC_p2p")
    )
    emit_report("fig5_admission_rate", text)

    # Differentiation during the ramp: class 1 above class 4 under DAC.
    for hour in (24, 36, 48):
        rate_1 = value_at_hour(dac.metrics.admission_rate_series[1], hour)
        rate_4 = value_at_hour(dac.metrics.admission_rate_series[4], hour)
        assert rate_1 > rate_4

    # DAC's spread exceeds NDAC's (NDAC "does not differentiate").
    def spread(result, hour):
        values = [
            value_at_hour(result.metrics.admission_rate_series[c], hour, default=0.0)
            for c in (1, 2, 3, 4)
        ]
        return max(values) - min(values)

    assert spread(dac, 36) > spread(ndac, 36)

    # Overall benefit: DAC's final per-class rates at least match NDAC's.
    dac_final = dac.metrics.admission_rate_percent()
    ndac_final = ndac.metrics.admission_rate_percent()
    for peer_class in (1, 2, 3):
        assert dac_final[peer_class] >= ndac_final[peer_class] - 1.0
