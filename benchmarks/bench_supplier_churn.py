"""Extension — capacity amplification under supplier churn.

The paper's model keeps every supplier online forever.  Real peers leave.
This extension gives suppliers exponential online/offline lifetimes
(departures are graceful — a busy supplier finishes its session first) and
measures how the self-growing property survives: the steady population is
scaled by the availability factor ``online / (online + offline)``, so the
achievable plateau drops accordingly, but DAC_p2p keeps its advantage over
NDAC_p2p because differentiation acts on whoever is online.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.plots import render_table
from repro.analysis.stats import area_under_series, value_at_hour

HOUR = 3600.0


def test_supplier_churn(benchmark):
    """Sweep supplier mean online time; compare DAC vs NDAC under churn."""

    def run():
        settings = {
            "no churn": dict(supplier_mean_online_seconds=None),
            "48h online / 8h offline": dict(
                supplier_mean_online_seconds=48 * HOUR,
                supplier_mean_offline_seconds=8 * HOUR,
            ),
            "12h online / 8h offline": dict(
                supplier_mean_online_seconds=12 * HOUR,
                supplier_mean_offline_seconds=8 * HOUR,
            ),
        }
        results = {}
        for label, knobs in settings.items():
            for protocol in ("dac", "ndac"):
                results[(label, protocol)] = cached_run(
                    paper_config(protocol=protocol, arrival_pattern=2, **knobs)
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    labels = ["no churn", "48h online / 8h offline", "12h online / 8h offline"]
    rows = []
    for label in labels:
        dac = results[(label, "dac")]
        ndac = results[(label, "ndac")]
        departures = sum(dac.metrics.supplier_departures.values())
        rows.append(
            [
                label,
                f"{value_at_hour(dac.metrics.capacity_series, 72):.0f}",
                f"{dac.metrics.final_capacity():.0f}",
                f"{ndac.metrics.final_capacity():.0f}",
                f"{departures}",
            ]
        )
    text = render_table(
        ["supplier lifetime", "DAC @72h", "DAC final", "NDAC final",
         "departures (DAC)"],
        rows,
        title="Extension — capacity amplification under supplier churn "
              "(pattern 2)",
    )
    emit_report("supplier_churn", text)

    # Churn lowers the plateau monotonically with churn intensity.
    finals = [results[(label, "dac")].metrics.final_capacity() for label in labels]
    assert finals[0] >= finals[1] >= finals[2]
    # The 12h/8h case should sit near the availability-scaled ceiling
    # (12 / (12+8) = 60% of peers online in steady state) — well below the
    # churn-free plateau but far from collapse.
    assert finals[2] > 0.35 * finals[0]
    # DAC keeps dominating NDAC's growth under every churn level.
    for label in labels:
        dac_area = area_under_series(results[(label, "dac")].metrics.capacity_series)
        ndac_area = area_under_series(
            results[(label, "ndac")].metrics.capacity_series
        )
        assert dac_area >= ndac_area
