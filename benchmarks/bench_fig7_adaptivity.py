"""Figure 7 — adaptivity of DAC_p2p's admission differentiation.

Under the bursty arrival pattern 4, suppliers dynamically adjust their
lowest favored requesting class: high-class suppliers start tight (favoring
only their own class), relax after idle timeouts, re-tighten when reminders
arrive during bursts, and once no new requests arrive all supplier classes
relax completely (lowest favored class = 4).
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.report import figure7_report
from repro.analysis.stats import value_at_hour, windowed_mean


def test_figure7_adaptive_differentiation(benchmark):
    """Regenerate Figure 7 (pattern 4, DAC_p2p)."""

    def run():
        return cached_run(paper_config(protocol="dac", arrival_pattern=4))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    text = figure7_report(result)
    emit_report("fig7_adaptivity", text)

    favored = result.metrics.favored_series

    # Class-1 suppliers start favoring only class 1 (value 1.0).
    class1 = windowed_mean(favored[1], 3.0)
    assert class1[0].value < 2.0

    # By the end of the run every class of suppliers favors everyone.
    for peer_class in (1, 2, 3, 4):
        if favored[peer_class]:
            assert favored[peer_class][-1].value >= 3.9

    # Differentiation exists mid-ramp: class-1 suppliers are (weakly)
    # tighter than class-4 suppliers.  Class-4 suppliers *start* saturated
    # but reminders from high-class requesters may tighten them too — the
    # paper's Figure 7 shows exactly that dip — so we compare averages
    # rather than demanding permanent saturation.
    mid = 24.0
    class1_mid = value_at_hour(favored[1], mid)
    class4_mid = value_at_hour(favored[4], mid, default=4.0)
    assert class1_mid <= class4_mid + 1e-9

    def series_mean(points):
        return sum(p.value for p in points) / len(points) if points else 4.0

    assert series_mean(favored[1]) <= series_mean(favored[4]) + 1e-9

    # Adaptivity: the class-1 curve actually moves over time (tighten /
    # relax dynamics, not a constant).
    values = [p.value for p in favored[1]]
    assert max(values) - min(values) > 0.5
