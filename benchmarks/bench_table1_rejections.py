"""Table 1 — per-class average number of rejections before admission.

The paper reports (DAC/NDAC):

===========  ============  ============
             Pattern 2     Pattern 4
===========  ============  ============
Class 1      1.77 / 3.73   1.93 / 3.45
Class 2      1.93 / 3.75   2.19 / 3.46
Class 3      2.40 / 3.72   2.59 / 3.42
Class 4      3.15 / 3.74   3.16 / 3.46
===========  ============  ============

Expected shape (absolute numbers differ with scale/seed): DAC's rejections
increase monotonically with the class index, every DAC entry beats its
NDAC counterpart, and NDAC's column is flat across classes.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.report import table1_report

PAPER_TABLE1 = {
    # (class, pattern): (DAC, NDAC)
    (1, 2): (1.77, 3.73),
    (2, 2): (1.93, 3.75),
    (3, 2): (2.40, 3.72),
    (4, 2): (3.15, 3.74),
    (1, 4): (1.93, 3.45),
    (2, 4): (2.19, 3.46),
    (3, 4): (2.59, 3.42),
    (4, 4): (3.16, 3.46),
}


def test_table1_rejections_before_admission(benchmark):
    """Regenerate Table 1 for patterns 2 and 4."""

    def run():
        return {
            (protocol, pattern): cached_run(
                paper_config(protocol=protocol, arrival_pattern=pattern)
            )
            for protocol in ("dac", "ndac")
            for pattern in (2, 4)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table1_report(results, paper_values=PAPER_TABLE1)
    emit_report("table1_rejections", text)

    for pattern in (2, 4):
        dac = results[("dac", pattern)].metrics.mean_rejections_before_admission()
        ndac = results[("ndac", pattern)].metrics.mean_rejections_before_admission()

        # DAC differentiates: rejections grow from class 1 to class 4.
        assert dac[1] < dac[2] < dac[4]
        assert dac[1] < dac[3] < dac[4]

        # DAC beats NDAC for every class.
        for peer_class in (1, 2, 3, 4):
            assert dac[peer_class] < ndac[peer_class]

        # NDAC is flat: its per-class spread is far below DAC's.
        ndac_spread = max(ndac.values()) - min(ndac.values())
        dac_spread = max(dac.values()) - min(dac.values())
        assert ndac_spread < dac_spread
