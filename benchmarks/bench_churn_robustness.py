"""Extension — robustness to peer unavailability ("down" candidates).

The paper's admission condition already accounts for down candidates
("neither down nor busy") but its evaluation keeps every peer up.  This
extension sweeps the probability that a probed candidate is down and
measures how gracefully DAC_p2p degrades: each down candidate effectively
shrinks ``M``, so moderate churn should cost some admission latency but
not break capacity amplification.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.plots import render_table
from repro.analysis.stats import area_under_series


def test_churn_robustness(benchmark):
    """Sweep candidate down-probability over {0, 0.1, 0.25, 0.5}."""

    def run():
        return {
            p: cached_run(paper_config(down_probability=p, arrival_pattern=2))
            for p in (0.0, 0.1, 0.25, 0.5)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for p, result in results.items():
        overall_rejections = sum(result.metrics.rejections.values())
        rows.append(
            [
                f"{p:.2f}",
                f"{area_under_series(result.metrics.capacity_series):.0f}",
                f"{result.metrics.final_capacity():.0f}",
                f"{100 * result.capacity_fraction_of_max:.1f}%",
                f"{overall_rejections}",
            ]
        )
    text = render_table(
        ["P(down)", "capacity area", "final", "% of max", "total rejections"],
        rows,
        title="Extension — DAC_p2p under candidate unavailability (pattern 2)",
    )
    emit_report("churn_robustness", text)

    # Degradation is monotone in rejections (harder to assemble R0)...
    rejections = {
        p: sum(r.metrics.rejections.values()) for p, r in results.items()
    }
    assert rejections[0.0] < rejections[0.25] < rejections[0.5]
    # ...and graceful, not a cliff: moderate churn (10%) costs almost
    # nothing, and even at 50% unavailability the system still amplifies
    # to well over half its maximum by hour 144 (measured ~67%: every
    # probe set is effectively halved, and exponential backoff slows the
    # survivors).
    assert results[0.1].capacity_fraction_of_max > 0.9
    assert results[0.5].capacity_fraction_of_max > 0.5
    fractions = [results[p].capacity_fraction_of_max for p in (0.0, 0.1, 0.25, 0.5)]
    assert fractions == sorted(fractions, reverse=True)
    # Capacity growth slows with churn.
    areas = {
        p: area_under_series(r.metrics.capacity_series) for p, r in results.items()
    }
    assert areas[0.0] > areas[0.5]
