"""Extension — mid-stream failure and recovery under the flash departure.

The paper's adaptivity story (supplier elevation, backoff, reminders) is
probed hardest when suppliers die *mid-stream*: the ``flash_departure``
scenario takes 30% of the supplier population down simultaneously at hour
36 and the interrupted requesters must re-probe, re-admit and resume from
their buffer position (:mod:`repro.simulation.lifecycle`).

This benchmark compares the three recovery modes against the churn-free
reference and reports the continuity probes: interruptions, recovered vs
lost sessions, mean recovery latency and the playback continuity index.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, repro_scale
from repro.analysis.plots import render_table
from repro.scenarios import get_scenario


def test_lifecycle_recovery(benchmark):
    """Flash departure: every recovery mode, plus the no-lifecycle baseline."""

    def run():
        scenario = get_scenario("flash_departure")
        results = {"reference": cached_run(
            scenario.build_config(scale=repro_scale(), lifecycle="none")
        )}
        for mode in ("resume", "restart", "abandon"):
            results[mode] = cached_run(
                scenario.build_config(
                    scale=repro_scale(), lifecycle_recovery=mode
                )
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        metrics = result.metrics
        interruptions = sum(metrics.interruptions.values())
        recovered = sum(metrics.recovered_sessions.values())
        lost = sum(metrics.sessions_lost.values())
        latencies = [
            value
            for value in metrics.mean_recovery_latency_seconds().values()
            if value == value  # drop NaN classes
        ]
        continuity = [
            value
            for value in metrics.playback_continuity_index().values()
            if value == value
        ]
        rows.append([
            label,
            f"{interruptions}",
            f"{recovered}",
            f"{lost}",
            f"{sum(latencies) / len(latencies) / 60:.1f} min" if latencies else "-",
            f"{sum(continuity) / len(continuity):.4f}" if continuity else "-",
            f"{metrics.final_capacity():.0f}",
        ])
    text = render_table(
        ["recovery", "interruptions", "recovered", "lost", "mean latency",
         "continuity", "final capacity"],
        rows,
        title="Extension — mid-stream failure/recovery under flash_departure "
              "(30% of suppliers at hour 36)",
    )
    emit_report("lifecycle_recovery", text)

    reference = results["reference"].metrics
    resume = results["resume"].metrics
    abandon = results["abandon"].metrics
    # The reference never interrupts; the flash always does.
    assert sum(reference.interruptions.values()) == 0
    assert sum(resume.interruptions.values()) > 0
    # The resume path actually recovers sessions, and recovered stalls
    # cost continuity: the index drops below the stall-free 1.0 somewhere.
    assert sum(resume.recovered_sessions.values()) > 0
    continuity = [
        value
        for value in resume.playback_continuity_index().values()
        if value == value
    ]
    assert continuity and min(continuity) < 1.0
    # Abandoned sessions never finish, so they never promote suppliers:
    # the abandon world cannot out-grow the resume world.
    assert abandon.final_capacity() <= resume.final_capacity()
    # Interruptions are identical across recovery modes (same departures,
    # same first-interrupt draws) up to the recovery path's extra probes.
    assert sum(abandon.interruptions.values()) > 0
