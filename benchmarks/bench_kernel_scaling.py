#!/usr/bin/env python3
"""Kernel/probe scaling benchmark: events/sec across populations.

Measures the simulation hot path on the ``metropolis_100k`` workload at a
range of population scales:

* ``full_heap`` — binary heap kernel, every metric probe, message
  accounting: the full-instrumentation path (what every run paid before
  kernels and probe subscriptions existed);
* ``fast_<kernel>`` — the scenario's tuned fast path (subscribed probes
  only, no message accounting) under every registered kernel.

Results are printed and written to ``benchmarks/output/BENCH_kernel_scaling.json``
(schema ``repro.bench_kernel_scaling.v1``, validated by
``scripts/check_bench_json.py``).  When the pinned pre-refactor
measurement file ``benchmarks/baselines/pre_refactor_kernel_scaling.json``
is present, each scale also reports ``speedup_vs_pre_refactor`` — the
fast path against the historical single-heap monolithic-collector hot
path measured on the same machine class.

Usage::

    python benchmarks/bench_kernel_scaling.py            # full sweep (minutes)
    python benchmarks/bench_kernel_scaling.py --quick    # CI smoke (seconds)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-style invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._version import __version__  # noqa: E402
from repro.scenarios import get_scenario  # noqa: E402
from repro.simulation.kernel import KERNEL_NAMES  # noqa: E402
from repro.simulation.runner import run_simulation  # noqa: E402

SCHEMA = "repro.bench_kernel_scaling.v1"
SCENARIO = "metropolis_100k"
FULL_SCALES = (0.05, 0.1, 0.25, 1.0)
QUICK_SCALES = (0.02,)
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baselines" / "pre_refactor_kernel_scaling.json"
DEFAULT_OUT = REPO_ROOT / "benchmarks" / "output" / "BENCH_kernel_scaling.json"


def load_baseline() -> dict[float, float]:
    """Pinned pre-refactor events/sec by scenario scale (empty if absent)."""
    if not BASELINE_PATH.exists():
        return {}
    data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    return {
        float(run["scenario_scale"]): float(run["events_per_sec"])
        for run in data.get("runs", ())
    }


def measure(config, repeats: int) -> dict:
    """Best-of-``repeats`` throughput of one configuration."""
    best = None
    for _ in range(repeats):
        result = run_simulation(config)
        events_per_sec = result.events_processed / result.wall_seconds
        if best is None or events_per_sec > best["events_per_sec"]:
            best = {
                "events": result.events_processed,
                "wall_seconds": round(result.wall_seconds, 3),
                "events_per_sec": round(events_per_sec, 1),
            }
    return best


def run_bench(scales, repeats: int, quick: bool) -> dict:
    """Execute the sweep and assemble the JSON payload."""
    scenario = get_scenario(SCENARIO)
    baseline = load_baseline()
    runs = []
    speedups = []
    for scale in scales:
        fast_config = scenario.build_config(scale=scale)
        full_config = fast_config.replace(
            kernel="heap", probes=None, track_messages=True
        )
        peers = fast_config.total_peers

        full = measure(full_config, repeats)
        runs.append({
            "scale": scale, "peers": peers, "mode": "full_heap",
            "engine": full_config.engine, "kernel": "heap", "probes": None,
            **full,
        })
        print(f"scale {scale:>5} ({peers} peers)  full_heap      "
              f"{full['events_per_sec']:>10,.0f} ev/s", flush=True)

        fast_by_kernel = {}
        for kernel in KERNEL_NAMES:
            fast = measure(fast_config.replace(kernel=kernel), repeats)
            fast_by_kernel[kernel] = fast
            runs.append({
                "scale": scale, "peers": peers, "mode": f"fast_{kernel}",
                "engine": fast_config.engine, "kernel": kernel,
                "probes": list(fast_config.probes or ()),
                **fast,
            })
            print(f"scale {scale:>5} ({peers} peers)  fast_{kernel:<9} "
                  f"{fast['events_per_sec']:>10,.0f} ev/s", flush=True)

        best_kernel = max(
            fast_by_kernel, key=lambda k: fast_by_kernel[k]["events_per_sec"]
        )
        best = fast_by_kernel[best_kernel]["events_per_sec"]
        pre = baseline.get(scale)
        speedups.append({
            "scale": scale,
            "peers": peers,
            "fast_kernel": best_kernel,
            "events_per_sec": best,
            "speedup_vs_full_heap": round(best / full["events_per_sec"], 2),
            "speedup_vs_pre_refactor": round(best / pre, 2) if pre else None,
        })
    return {
        "schema": SCHEMA,
        "version": __version__,
        "quick": quick,
        "scenario": SCENARIO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
        "speedups": speedups,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one tiny scale instead of the sweep")
    parser.add_argument("--repeats", type=int, default=1,
                        help="measurements per configuration; best reported")
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    scales = QUICK_SCALES if args.quick else FULL_SCALES
    payload = run_bench(scales, repeats=max(1, args.repeats), quick=args.quick)

    out_path = Path(args.out) if args.out else DEFAULT_OUT
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out_path}")
    for entry in payload["speedups"]:
        vs_pre = entry["speedup_vs_pre_refactor"]
        print(f"scale {entry['scale']:>5}: fast path ({entry['fast_kernel']}) "
              f"{entry['events_per_sec']:,.0f} ev/s — "
              f"{entry['speedup_vs_full_heap']:.2f}x vs full/heap"
              + (f", {vs_pre:.2f}x vs pre-refactor" if vs_pre else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
