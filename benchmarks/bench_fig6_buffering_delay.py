"""Figure 6 — per-class accumulative average buffering delay (× δt).

By Theorem 1 the buffering delay of a session equals the number of
participating suppliers; DAC_p2p serves higher-class requesters with
higher-class (fewer) suppliers, so their delay is lower, and every class's
mean delay under DAC_p2p undercuts its NDAC_p2p counterpart.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.report import figure6_report


def test_figure6_buffering_delay(benchmark):
    """Regenerate Figure 6 (pattern 2, both protocols)."""

    def run():
        return (
            cached_run(paper_config(protocol="dac", arrival_pattern=2)),
            cached_run(paper_config(protocol="ndac", arrival_pattern=2)),
        )

    dac, ndac = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        figure6_report(dac, label="DAC_p2p")
        + "\n\n"
        + figure6_report(ndac, label="NDAC_p2p")
    )
    emit_report("fig6_buffering_delay", text)

    dac_delay = dac.metrics.mean_buffering_delay_slots()
    ndac_delay = ndac.metrics.mean_buffering_delay_slots()

    # Delays live in the paper's plotted band (axis 2..5.5 x dt) — wide
    # sanity bounds: at least 2 suppliers per session, at most M = 8.
    for value in list(dac_delay.values()) + list(ndac_delay.values()):
        assert 2.0 <= value <= 8.0

    # Overall improvement: DAC's mean delay below NDAC's for every class.
    for peer_class in (1, 2, 3, 4):
        assert dac_delay[peer_class] < ndac_delay[peer_class] + 0.25

    # Differentiation: class 1 enjoys a lower delay than class 4 under DAC.
    assert dac_delay[1] < dac_delay[4]
