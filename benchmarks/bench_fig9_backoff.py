"""Figure 9 — impact of the backoff factor E_bkf on overall admission rate.

The paper's counter-intuitive finding: exponential backoff *hurts* in a
self-growing system.  Constant backoff (E_bkf = 1) keeps retry pressure
high, which admits peers sooner, which grows capacity faster — so the
overall cumulative admission rate is ordered inversely in E_bkf.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.report import figure9_report
from repro.analysis.stats import value_at_hour


def test_figure9_backoff_factor(benchmark):
    """Sweep E_bkf over {1, 2, 3, 4} (pattern 2, DAC)."""

    def run():
        return {
            e: cached_run(paper_config(e_bkf=float(e), arrival_pattern=2))
            for e in (1, 2, 3, 4)
        }

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = figure9_report(sweep)
    emit_report("fig9_backoff", text)

    finals = {
        e: value_at_hour(result.metrics.overall_admission_rate_series, 144.0)
        for e, result in sweep.items()
    }

    # Constant backoff achieves the highest overall admission rate...
    assert finals[1] == max(finals.values())
    # ...and heavy exponential backoff the lowest.
    assert finals[4] == min(finals.values())
    # The paper calls the E_bkf = 1 advantage "significant".
    assert finals[1] > finals[4] + 1.0
