"""Figure 3 — admission order changes the growth of streaming capacity.

Replays the paper's motivating scenario as an actual simulation: four seed
suppliers (two class-1, two class-2) and three requesting peers (two
class-2, one class-1).  Admitting the class-1 requester first lets the
system reach capacity 2 one show-time later and serve both class-2 peers
simultaneously; a differentiated (DAC) run therefore finishes all three
sessions sooner and with a lower mean waiting time than a
non-differentiated (NDAC) run is guaranteed to.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis.plots import render_table
from repro.core.capacity import CapacityLedger
from repro.core.model import ClassLadder


def _replay(admission_order: list[int]) -> tuple[list[int], float]:
    """Replay Figure 3's arithmetic for an admission order of classes.

    Returns the capacity after each show-time epoch and the mean waiting
    time (in show times T).  One requester is admitted per epoch while
    capacity permits; with capacity 2 the two remaining class-2 peers go
    together — exactly the paper's two scenarios.
    """
    ladder = ClassLadder(4)
    ledger = CapacityLedger(ladder)
    for peer_class in (1, 1, 2, 2):
        ledger.add_supplier(peer_class)

    waiting: list[float] = []
    capacities: list[int] = [ledger.sessions]
    pending = list(admission_order)
    epoch = 0
    while pending:
        slots = ledger.sessions
        admitted_now = pending[:slots]
        pending = pending[slots:]
        for peer_class in admitted_now:
            waiting.append(float(epoch))
        epoch += 1
        for peer_class in admitted_now:
            ledger.add_supplier(peer_class)
        capacities.append(ledger.sessions)
    return capacities, sum(waiting) / len(waiting)


def test_figure3_admission_order(benchmark):
    """The class-1-first order reaches capacity 2 and mean wait 2T/3."""

    def run():
        # paper scenario (a): admit a class-2 peer first
        ndac_caps, ndac_wait = _replay([2, 2, 1])
        # paper scenario (b): admit the class-1 peer first
        dac_caps, dac_wait = _replay([1, 2, 2])
        return ndac_caps, ndac_wait, dac_caps, dac_wait

    ndac_caps, ndac_wait, dac_caps, dac_wait = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        ["admit class-2 first (Fig 3a)", str(ndac_caps), f"{ndac_wait:.3f} T"],
        ["admit class-1 first (Fig 3b)", str(dac_caps), f"{dac_wait:.3f} T"],
    ]
    text = render_table(
        ["admission order", "capacity per epoch", "mean waiting time"],
        rows,
        title="Figure 3 — admission decisions vs capacity growth",
    )
    emit_report("fig3_admission_order", text)

    # Paper's numbers: capacity stays 1 for three epochs vs growing to 2;
    # mean waits T vs 2T/3.
    assert ndac_caps[0] == 1 and dac_caps[0] == 1
    assert max(dac_caps) >= 2
    assert ndac_wait == 1.0
    assert abs(dac_wait - 2.0 / 3.0) < 1e-9
    assert dac_wait < ndac_wait
