"""Extension — receiver-buffer cost of the assignment algorithms.

OTS_p2p minimizes buffering *delay*; this extension measures the companion
resource, receiver-buffer occupancy, across all feasible session shapes of
the 4-class ladder.  The paper assumes unbounded storage (footnote 1), so
this is a cost report rather than a constraint — it shows that OTS's lower
delay does not come at a buffer premium relative to the contiguous
baseline.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis.plots import render_table
from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    sweep_assignment,
)
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import min_start_delay_slots
from repro.streaming.buffer import occupancy_profile


def _enumerate_feasible(ladder: ClassLadder) -> list[list[int]]:
    shapes: list[list[int]] = []

    def recurse(prefix: list[int], deficit: int) -> None:
        if deficit == 0:
            shapes.append(list(prefix))
            return
        start = prefix[-1] if prefix else 1
        for c in range(start, ladder.num_classes + 1):
            if ladder.offer_units(c) <= deficit:
                prefix.append(c)
                recurse(prefix, deficit - ladder.offer_units(c))
                prefix.pop()

    recurse([], ladder.full_rate_units)
    return shapes


def test_buffer_occupancy_of_assignments(benchmark):
    """Peak/mean receiver-buffer occupancy, OTS vs sweep vs contiguous."""
    ladder = ClassLadder(4)
    shapes = _enumerate_feasible(ladder)
    algorithms = {
        "ots": ots_assignment,
        "sweep": sweep_assignment,
        "contiguous": contiguous_assignment,
    }

    def measure():
        stats: dict[str, dict[str, float]] = {}
        for name, algorithm in algorithms.items():
            peaks, means, delays = [], [], []
            for classes in shapes:
                offers = [
                    SupplierOffer(i + 1, c, ladder.offer_units(c))
                    for i, c in enumerate(classes)
                ]
                assignment = algorithm(offers, ladder)
                delay = min_start_delay_slots(assignment)
                profile = occupancy_profile(assignment, delay)
                peaks.append(profile.peak_segments)
                means.append(profile.mean_segments)
                delays.append(delay)
            stats[name] = {
                "mean_peak": sum(peaks) / len(peaks),
                "max_peak": max(peaks),
                "mean_occupancy": sum(means) / len(means),
                "mean_delay": sum(delays) / len(delays),
            }
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{values['mean_delay']:.2f}",
            f"{values['mean_peak']:.2f}",
            f"{values['max_peak']:.0f}",
            f"{values['mean_occupancy']:.2f}",
        ]
        for name, values in stats.items()
    ]
    text = render_table(
        ["algorithm", "mean delay (dt)", "mean peak buffer (segs)",
         "worst peak", "mean occupancy"],
        rows,
        title=(
            f"Extension — receiver-buffer cost over all {len(shapes)} "
            "feasible session shapes (N=4), at each algorithm's own minimum "
            "start delay"
        ),
    )
    emit_report("buffer_occupancy", text)

    # OTS wins on delay by construction...
    assert stats["ots"]["mean_delay"] <= stats["sweep"]["mean_delay"]
    assert stats["ots"]["mean_delay"] < stats["contiguous"]["mean_delay"]
    # ...and pays no buffer premium over the contiguous baseline.
    assert stats["ots"]["mean_peak"] <= stats["contiguous"]["mean_peak"] + 0.5
