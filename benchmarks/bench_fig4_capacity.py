"""Figure 4 — system capacity amplification, DAC_p2p vs NDAC_p2p.

The paper's headline result: under arrival patterns 2 and 4 (we run all
four), DAC_p2p grows the total streaming capacity significantly faster than
NDAC_p2p during the 72-hour arrival window, and ends the 144-hour run at
>= 95 % of the all-peers-supplying maximum.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.report import figure4_report
from repro.analysis.stats import area_under_series, value_at_hour


@pytest.mark.parametrize("pattern", [1, 2, 3, 4])
def test_figure4_capacity_amplification(benchmark, pattern):
    """Regenerate Figure 4 for one arrival pattern and check the claims."""

    def run():
        return {
            "dac": cached_run(paper_config(protocol="dac", arrival_pattern=pattern)),
            "ndac": cached_run(paper_config(protocol="ndac", arrival_pattern=pattern)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = figure4_report(results, pattern=pattern)
    emit_report(f"fig4_capacity_pattern{pattern}", text)

    dac = results["dac"].metrics.capacity_series
    ndac = results["ndac"].metrics.capacity_series

    # Claim 1: DAC amplifies faster (dominates in area and through the ramp).
    assert area_under_series(dac) > area_under_series(ndac)
    for hour in (24, 36, 48, 60, 72):
        assert value_at_hour(dac, hour) >= value_at_hour(ndac, hour)

    # Claim 2: DAC ends at >= 95 % of the theoretical maximum capacity.
    assert results["dac"].capacity_fraction_of_max >= 0.95

    # Claim 3: growth slows after the 72-hour arrival window.
    ramp_growth = value_at_hour(dac, 72) - value_at_hour(dac, 24)
    tail_growth = value_at_hour(dac, 144) - value_at_hour(dac, 96)
    assert ramp_growth > tail_growth
