"""Ablation C — lookup substrate: central directory vs Chord DHT.

The paper's footnote 4 allows either a Napster-style directory or a Chord
DHT for candidate discovery.  Both only need to produce M random supplier
candidates, so protocol outcomes should be statistically equivalent; the
substrates differ in signalling (one round trip vs O(log n) hops per
operation).  This bench runs the same workload on both and compares.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config, repro_scale
from repro.analysis.plots import render_table
from repro.analysis.stats import area_under_series


def test_ablation_lookup_substrate(benchmark):
    """Directory vs Chord on the same (smaller) workload."""
    # The Chord path costs O(log n) routing work per operation in the
    # simulator itself, so this ablation runs at a reduced scale.
    scale_factor = min(repro_scale(), 0.05)

    def run():
        base = paper_config(arrival_pattern=2)
        shrink = scale_factor / repro_scale()
        small = base.scaled(shrink)
        return {
            name: cached_run(small.replace(lookup=name))
            for name in ("directory", "chord")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        stats = result.message_stats or {}
        rows.append(
            [
                name,
                f"{result.metrics.final_capacity():.0f}",
                f"{100 * result.capacity_fraction_of_max:.1f}%",
                f"{sum(result.metrics.admitted.values())}",
                f"{stats.get('count_dht_hop', 0):.0f}",
                f"{stats.get('count_lookup', 0):.0f}",
            ]
        )
    text = render_table(
        ["lookup", "final capacity", "% of max", "admitted", "dht hops",
         "directory msgs"],
        rows,
        title="Ablation C — lookup substrate equivalence",
    )
    emit_report("ablation_lookup", text)

    directory = results["directory"]
    chord = results["chord"]

    # Equivalent protocol outcomes: admitted populations within 2 % (the
    # two substrates consume the RNG streams differently, so runs are not
    # bit-identical), final capacities within a few percent, growth areas
    # within 15 %.
    admitted_directory = sum(directory.metrics.admitted.values())
    admitted_chord = sum(chord.metrics.admitted.values())
    assert abs(admitted_directory - admitted_chord) <= max(
        2, 0.02 * admitted_directory
    )
    assert abs(
        directory.metrics.final_capacity() - chord.metrics.final_capacity()
    ) <= max(2.0, 0.05 * directory.metrics.final_capacity())
    area_dir = area_under_series(directory.metrics.capacity_series)
    area_chord = area_under_series(chord.metrics.capacity_series)
    assert abs(area_dir - area_chord) <= 0.15 * area_dir

    # Substrates differ where expected: Chord pays DHT hops, the directory
    # pays registry messages.
    assert chord.message_stats["count_dht_hop"] > 0
    assert directory.message_stats.get("count_dht_hop", 0) == 0
