"""Ablation A — the value of the reminder technique.

Reminders are DAC_p2p's only *tightening* signal: without them suppliers
monotonically relax toward all-ones vectors and differentiation decays to
NDAC-like behaviour even while demand persists.  Under the bursty pattern 4
this shows up as weaker per-class differentiation.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.plots import render_table
from repro.analysis.stats import area_under_series


def test_ablation_reminders(benchmark):
    """DAC vs DAC-without-reminders vs NDAC under pattern 4."""

    def run():
        return {
            name: cached_run(paper_config(protocol=name, arrival_pattern=4))
            for name in ("dac", "dac-no-reminder", "ndac")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        rejections = result.metrics.mean_rejections_before_admission()
        spread = max(rejections.values()) - min(rejections.values())
        rows.append(
            [
                name,
                f"{area_under_series(result.metrics.capacity_series):.0f}",
                f"{rejections[1]:.2f}",
                f"{rejections[4]:.2f}",
                f"{spread:.2f}",
                f"{sum(result.metrics.reminders_left.values())}",
            ]
        )
    text = render_table(
        ["protocol", "capacity area", "rej. cls1", "rej. cls4",
         "differentiation", "reminders"],
        rows,
        title="Ablation A — value of the reminder technique (pattern 4)",
    )
    emit_report("ablation_reminder", text)

    dac = results["dac"].metrics.mean_rejections_before_admission()
    bare = results["dac-no-reminder"].metrics.mean_rejections_before_admission()

    # Reminders sharpen differentiation: DAC's class spread exceeds the
    # reminder-less variant's.
    dac_spread = max(dac.values()) - min(dac.values())
    bare_spread = max(bare.values()) - min(bare.values())
    assert dac_spread > bare_spread * 0.9

    # Sanity: the reminder-less variant literally left zero reminders.
    assert sum(results["dac-no-reminder"].metrics.reminders_left.values()) == 0
    assert sum(results["dac"].metrics.reminders_left.values()) > 0
