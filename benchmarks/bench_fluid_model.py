"""Extension — the fluid model vs the discrete-event simulation.

Integrates the protocol-free mean-field model of
:mod:`repro.analysis.fluid` and overlays it on the DES's Figure-4 curve.
Expected relationship: the fluid curve is an upper envelope (the DES pays
probing granularity, admission-probability denials and backoff
quantization), both saturate at the same all-peers-supplying maximum, and
the DAC curve hugs the envelope much more closely than NDAC — which is a
quantitative way of saying DAC wastes less of the theoretically available
growth.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.fluid import fluid_capacity_model
from repro.analysis.plots import ascii_chart, render_table
from repro.analysis.stats import area_under_series, value_at_hour


def test_fluid_vs_des(benchmark):
    """Fluid envelope vs DAC and NDAC DES curves (pattern 2)."""

    def run():
        config = paper_config(arrival_pattern=2)
        return (
            fluid_capacity_model(config),
            cached_run(config.replace(protocol="dac")),
            cached_run(config.replace(protocol="ndac")),
        )

    fluid, dac, ndac = benchmark.pedantic(run, rounds=1, iterations=1)

    chart = ascii_chart(
        {
            "fluid": fluid.capacity,
            "dac": dac.metrics.capacity_series,
            "ndac": ndac.metrics.capacity_series,
        },
        title="Extension — mean-field fluid envelope vs DES (pattern 2)",
        y_label="sessions",
    )
    hours = [12.0 * i for i in range(13)]
    rows = []
    for hour in hours:
        rows.append(
            [
                f"{hour:.0f}h",
                f"{value_at_hour(fluid.capacity, hour):.0f}",
                f"{value_at_hour(dac.metrics.capacity_series, hour):.0f}",
                f"{value_at_hour(ndac.metrics.capacity_series, hour):.0f}",
            ]
        )
    table = render_table(["hour", "fluid", "dac", "ndac"], rows)
    emit_report("fluid_model", chart + "\n\n" + table)

    # Envelope property: the DES never exceeds the fluid curve materially.
    for hour in hours:
        fluid_value = value_at_hour(fluid.capacity, hour)
        assert value_at_hour(dac.metrics.capacity_series, hour) <= (
            fluid_value * 1.05 + 2.0
        )

    # Shared endpoint: both saturate at the population maximum.
    assert dac.metrics.final_capacity() >= 0.93 * fluid.final_capacity()

    # Efficiency ranking: DAC tracks the envelope more closely than NDAC.
    fluid_area = area_under_series(fluid.capacity)
    dac_gap = fluid_area - area_under_series(dac.metrics.capacity_series)
    ndac_gap = fluid_area - area_under_series(ndac.metrics.capacity_series)
    assert 0 < dac_gap < ndac_gap
