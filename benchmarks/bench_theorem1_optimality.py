"""Theorem 1 — OTS_p2p optimality at benchmark scale.

Checks, over every feasible session shape on the 4-class ladder and random
shapes on larger ladders, that OTS_p2p's delay equals the number of
suppliers — and times the verification pipeline (assignment + schedule +
playback replay), which is the per-admission cost the simulator pays.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit_report
from repro.core.assignment import ots_assignment
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import min_start_delay_slots
from repro.core.theorems import brute_force_min_delay_slots
from repro.streaming.playback import empirical_min_delay_slots


def _enumerate_feasible(ladder: ClassLadder) -> list[list[int]]:
    shapes: list[list[int]] = []

    def recurse(prefix: list[int], deficit: int) -> None:
        if deficit == 0:
            shapes.append(list(prefix))
            return
        start = prefix[-1] if prefix else 1
        for c in range(start, ladder.num_classes + 1):
            if ladder.offer_units(c) <= deficit:
                prefix.append(c)
                recurse(prefix, deficit - ladder.offer_units(c))
                prefix.pop()

    recurse([], ladder.full_rate_units)
    return shapes


def _offers(classes: list[int], ladder: ClassLadder) -> list[SupplierOffer]:
    return [
        SupplierOffer(i + 1, c, ladder.offer_units(c)) for i, c in enumerate(classes)
    ]


def test_theorem1_exhaustive_on_paper_ladder(benchmark):
    """Every feasible session shape (N = 4) achieves delay = n."""
    ladder = ClassLadder(4)
    shapes = _enumerate_feasible(ladder)

    def verify():
        failures = []
        for classes in shapes:
            assignment = ots_assignment(_offers(classes, ladder), ladder)
            if min_start_delay_slots(assignment) != len(classes):
                failures.append(classes)
            if empirical_min_delay_slots(assignment) != len(classes):
                failures.append(classes)
        return failures

    failures = benchmark.pedantic(verify, rounds=1, iterations=1)
    emit_report(
        "theorem1_optimality",
        f"Theorem 1 verified on all {len(shapes)} feasible session shapes "
        f"(ladder N=4): delay == n for every shape; failures: {failures}",
    )
    assert failures == []


def test_theorem1_brute_force_small_periods(benchmark):
    """Brute force confirms no assignment beats n on small periods."""
    ladder = ClassLadder(4)
    shapes = [s for s in _enumerate_feasible(ladder) if max(s) <= 3]

    def verify():
        return all(
            brute_force_min_delay_slots(_offers(classes, ladder), ladder)
            == len(classes)
            for classes in shapes
        )

    assert benchmark.pedantic(verify, rounds=1, iterations=1)


def test_theorem1_randomized_large_ladders(benchmark):
    """Random feasible shapes on ladders up to N = 8 achieve delay = n."""
    rng = random.Random(20020701)

    def verify():
        checked = 0
        for num_classes in (5, 6, 7, 8):
            ladder = ClassLadder(num_classes)
            for _ in range(100):
                classes: list[int] = []
                deficit = ladder.full_rate_units
                while deficit > 0:
                    feasible = [
                        c for c in ladder.classes if ladder.offer_units(c) <= deficit
                    ]
                    chosen = rng.choice(feasible)
                    classes.append(chosen)
                    deficit -= ladder.offer_units(chosen)
                assignment = ots_assignment(_offers(classes, ladder), ladder)
                assert min_start_delay_slots(assignment) == len(classes)
                checked += 1
        return checked

    checked = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert checked == 400
