"""Ablation B — the elevation law.

Compares the paper's doubling elevation against switching elevation off
entirely and against a slower linear law.  Without any elevation, idle
high-class suppliers can refuse lower-class requesters indefinitely, which
wastes supply and slows capacity amplification; a linear law lands between
the two.
"""

from __future__ import annotations

from benchmarks.conftest import cached_run, emit_report, paper_config
from repro.analysis.plots import render_table
from repro.analysis.stats import area_under_series, value_at_hour


def test_ablation_elevation_law(benchmark):
    """DAC vs no-elevation vs linear elevation (pattern 2)."""

    def run():
        return {
            name: cached_run(paper_config(protocol=name, arrival_pattern=2))
            for name in ("dac", "dac-no-elevation", "dac-linear-elevation",
                         "dac-generous-init")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        series = result.metrics.capacity_series
        rows.append(
            [
                name,
                f"{area_under_series(series):.0f}",
                f"{value_at_hour(series, 48):.0f}",
                f"{result.metrics.final_capacity():.0f}",
                f"{100 * result.capacity_fraction_of_max:.1f}%",
            ]
        )
    text = render_table(
        ["protocol", "capacity area", "capacity @48h", "final", "% of max"],
        rows,
        title="Ablation B — elevation law (pattern 2)",
    )
    emit_report("ablation_elevation", text)

    # Every variant still converges to a high fraction of max capacity
    # (retries + session-end relaxation eventually admit everyone) ...
    for result in results.values():
        assert result.capacity_fraction_of_max > 0.85

    # ... and disabling the idle timer must not *help* (the paper's rule
    # exists to free stranded high-class supply).
    assert (
        area_under_series(results["dac-no-elevation"].metrics.capacity_series)
        <= area_under_series(results["dac"].metrics.capacity_series) * 1.05
    )
