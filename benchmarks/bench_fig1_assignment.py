"""Figure 1 — media data assignments and their buffering delays.

Regenerates the paper's opening example: four suppliers of classes
1, 2, 3, 3 serving one requesting peer.  Assignment I (contiguous blocks)
costs a 5-slot buffering delay; Assignment II (the OTS_p2p output) costs 4,
the Theorem-1 minimum.  The benchmark also times the assignment algorithms
themselves on progressively larger supplier sets.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_report
from repro.analysis.report import figure1_report
from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    sweep_assignment,
)
from repro.core.model import ClassLadder, SupplierOffer
from repro.core.schedule import min_start_delay_slots


def test_figure1_reproduction(benchmark):
    """Render Figure 1 and assert the paper's exact delays."""
    text = benchmark.pedantic(figure1_report, rounds=1, iterations=1)
    emit_report("fig1_assignment", text)
    assert "5 x dt" in text and "4 x dt" in text


@pytest.mark.parametrize("num_classes", [4, 6, 8])
def test_ots_assignment_speed(benchmark, num_classes):
    """Time OTS_p2p on the largest session a ladder of N classes allows."""
    ladder = ClassLadder(num_classes)
    # Worst case: every supplier is of the lowest class (2**N suppliers).
    offers = [
        SupplierOffer(peer_id=i, peer_class=num_classes, units=1)
        for i in range(ladder.full_rate_units)
    ]
    assignment = benchmark(ots_assignment, offers, ladder)
    assert min_start_delay_slots(assignment) == len(offers)


def test_assignment_algorithm_delay_comparison(benchmark):
    """Mean delay of OTS vs baselines across every session shape (N=4)."""
    ladder = ClassLadder(4)

    def enumerate_feasible(prefix, deficit, out):
        if deficit == 0:
            out.append(list(prefix))
            return
        start = prefix[-1] if prefix else 1
        for c in range(start, ladder.num_classes + 1):
            if ladder.offer_units(c) <= deficit:
                prefix.append(c)
                enumerate_feasible(prefix, deficit - ladder.offer_units(c), out)
                prefix.pop()

    shapes: list[list[int]] = []
    enumerate_feasible([], ladder.full_rate_units, shapes)

    def measure():
        rows = []
        for algorithm in (ots_assignment, sweep_assignment, contiguous_assignment):
            delays = []
            for classes in shapes:
                offers = [
                    SupplierOffer(i + 1, c, ladder.offer_units(c))
                    for i, c in enumerate(classes)
                ]
                delays.append(
                    min_start_delay_slots(algorithm(offers, ladder))
                    - len(classes)  # excess over the Theorem-1 minimum
                )
            rows.append((algorithm.__name__, sum(delays) / len(delays), max(delays)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"Assignment delay excess over the Theorem-1 minimum "
        f"(all {len(shapes)} session shapes, N=4):",
        f"{'algorithm':<24}{'mean excess':>12}{'max excess':>12}",
    ]
    for name, mean_excess, max_excess in rows:
        lines.append(f"{name:<24}{mean_excess:>12.3f}{max_excess:>12d}")
    emit_report("fig1_algorithm_comparison", "\n".join(lines))

    by_name = {name: mean for name, mean, _mx in rows}
    assert by_name["ots_assignment"] == 0.0           # always optimal
    assert by_name["sweep_assignment"] >= 0.0          # never better
    assert by_name["contiguous_assignment"] > 0.0      # strictly worse overall
