"""Extension — seed sensitivity of the headline comparisons.

Replicates the DAC vs NDAC comparison over several master seeds and checks
that the paper's qualitative conclusions are not one-seed flukes: DAC's
final capacity and per-class rejection advantage hold in *every*
replication, and the run-to-run spread is small relative to the effect.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report, paper_config, repro_scale
from repro.analysis.plots import render_table
from repro.analysis.replication import replicate

REPLICATIONS = 3


def test_replicated_dac_vs_ndac(benchmark):
    """3-seed replication of the pattern-2 capacity/rejection comparison."""
    # Replications multiply runtime; run at a reduced scale.
    scale_factor = min(repro_scale(), 0.04)

    def run():
        base = paper_config(arrival_pattern=2).scaled(
            scale_factor / repro_scale()
        )
        return {
            protocol: replicate(
                base.replace(protocol=protocol), replications=REPLICATIONS
            )
            for protocol in ("dac", "ndac")
        }

    replicated = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for protocol, result in replicated.items():
        rows.append(
            [
                protocol,
                str(result.final_capacity()),
                str(result.rejections_of_class(1)),
                str(result.rejections_of_class(4)),
                str(result.delay_of_class(1)),
            ]
        )
    text = render_table(
        ["protocol", "final capacity", "rejections cls1", "rejections cls4",
         "delay cls1"],
        rows,
        title=(
            f"Extension — {REPLICATIONS}-seed replication (mean ± 95% CI), "
            "pattern 2"
        ),
    )
    emit_report("replication_variance", text)

    dac, ndac = replicated["dac"], replicated["ndac"]

    # The class-1 < class-4 rejection ordering holds in every DAC seed.
    for result in dac.results:
        rejections = result.metrics.mean_rejections_before_admission()
        assert rejections[1] < rejections[4]

    # DAC beats NDAC on mean rejections for every class, beyond the CIs'
    # combined half-widths for the aggregate.
    for peer_class in (1, 2, 3, 4):
        dac_summary = dac.rejections_of_class(peer_class)
        ndac_summary = ndac.rejections_of_class(peer_class)
        assert dac_summary.mean < ndac_summary.mean

    # Capacity envelopes: DAC's mean curve dominates NDAC's mid-ramp.
    dac_envelope = dac.capacity_envelope(step_hours=12.0)
    ndac_envelope = ndac.capacity_envelope(step_hours=12.0)
    for hour, dac_mean, ndac_mean in zip(
        dac_envelope.hours, dac_envelope.mean, ndac_envelope.mean
    ):
        if 24.0 <= hour <= 72.0:
            assert dac_mean >= ndac_mean
