"""Extension — seed sensitivity of the headline comparisons.

Replicates the DAC vs NDAC comparison over several master seeds and checks
that the paper's qualitative conclusions are not one-seed flukes: DAC's
final capacity and per-class rejection advantage hold in *every*
replication, and the run-to-run spread is small relative to the effect.

The grid — {dac, ndac} × seeds — is one
:class:`~repro.orchestration.study.Study` over the shared on-disk record
store, and the mean ± CI columns come from
:meth:`~repro.orchestration.study.ResultSet.aggregate`, which subsumes
the older per-protocol ``ReplicatedResult`` summaries.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report, paper_config, repro_scale, study_store
from repro.analysis.plots import render_table
from repro.analysis.replication import ReplicatedResult
from repro.orchestration.study import Study

REPLICATIONS = 3


def test_replicated_dac_vs_ndac(benchmark):
    """3-seed replication of the pattern-2 capacity/rejection comparison."""
    # Replications multiply runtime; run at a reduced scale.
    scale_factor = min(repro_scale(), 0.04)
    base = paper_config(arrival_pattern=2).scaled(scale_factor / repro_scale())

    def run():
        return (
            Study.from_config(base)
            .protocols("dac", "ndac")
            .seeds(REPLICATIONS)
            .run(store=study_store())
        )

    result_set = benchmark.pedantic(run, rounds=1, iterations=1)

    def column(protocol, metric):
        aggregates = result_set.filter(protocol=protocol).aggregate(metric)
        (aggregate,) = aggregates.values()
        return aggregate

    rows = []
    for protocol in ("dac", "ndac"):
        rows.append(
            [
                protocol,
                str(column(protocol, "final_capacity")),
                str(column(
                    protocol,
                    lambda r: r.metrics.mean_rejections_before_admission()[1],
                )),
                str(column(
                    protocol,
                    lambda r: r.metrics.mean_rejections_before_admission()[4],
                )),
                str(column(
                    protocol,
                    lambda r: r.metrics.mean_buffering_delay_slots()[1],
                )),
            ]
        )
    text = render_table(
        ["protocol", "final capacity", "rejections cls1", "rejections cls4",
         "delay cls1"],
        rows,
        title=(
            f"Extension — {REPLICATIONS}-seed replication (mean ± 95% CI), "
            "pattern 2"
        ),
    )
    emit_report("replication_variance", text)

    dac_records = list(result_set.filter(protocol="dac"))
    ndac_records = list(result_set.filter(protocol="ndac"))
    assert len(dac_records) == len(ndac_records) == REPLICATIONS

    # The class-1 < class-4 rejection ordering holds in every DAC seed.
    for record in dac_records:
        rejections = record.metrics.mean_rejections_before_admission()
        assert rejections[1] < rejections[4]

    # DAC beats NDAC on mean rejections for every class.
    for peer_class in (1, 2, 3, 4):
        def class_rejections(record, c=peer_class):
            return record.metrics.mean_rejections_before_admission()[c]

        assert (
            column("dac", class_rejections).mean
            < column("ndac", class_rejections).mean
        )

    # Capacity envelopes: DAC's mean curve dominates NDAC's mid-ramp.
    # (ReplicatedResult accepts cache-served records transparently.)
    envelopes = {
        protocol: ReplicatedResult(
            config=base.replace(protocol=protocol),
            seeds=tuple(r.seed for r in records),
            results=tuple(records),
        ).capacity_envelope(step_hours=12.0)
        for protocol, records in (("dac", dac_records), ("ndac", ndac_records))
    }
    for hour, dac_mean, ndac_mean in zip(
        envelopes["dac"].hours, envelopes["dac"].mean, envelopes["ndac"].mean
    ):
        if 24.0 <= hour <= 72.0:
            assert dac_mean >= ndac_mean
