"""Unit tests for the admission policies (DAC, NDAC, variants)."""

import pytest

from repro.core.model import ClassLadder
from repro.errors import ConfigurationError
from repro.protocols import (
    DacPolicy,
    GenerousInitDacPolicy,
    LinearElevationDacPolicy,
    NdacPolicy,
    NoElevationDacPolicy,
    NoReminderDacPolicy,
    POLICY_REGISTRY,
    make_policy,
)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICY_REGISTRY) >= {
            "dac",
            "ndac",
            "dac-no-reminder",
            "dac-no-elevation",
            "dac-linear-elevation",
            "dac-generous-init",
        }

    def test_make_policy_by_name(self):
        assert isinstance(make_policy("dac"), DacPolicy)
        assert isinstance(make_policy("ndac"), NdacPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("nonsense")

    def test_describe_mentions_disabled_features(self):
        assert "no reminders" in NoReminderDacPolicy().describe()
        assert "no idle elevation" in NoElevationDacPolicy().describe()
        assert DacPolicy().describe() == "dac"


class TestDacPolicy:
    def test_feature_flags(self):
        policy = DacPolicy()
        assert policy.uses_reminders and policy.uses_idle_elevation

    def test_state_has_differentiated_vector(self, ladder):
        state = DacPolicy().make_supplier_state(2, ladder)
        assert state.grant_probability(4) == 0.25


class TestNdacPolicy:
    @pytest.fixture
    def state(self, ladder):
        return NdacPolicy().make_supplier_state(3, ladder)

    def test_feature_flags(self):
        policy = NdacPolicy()
        assert not policy.uses_reminders and not policy.uses_idle_elevation

    def test_always_grants_everyone(self, state, ladder):
        for peer_class in ladder.classes:
            assert state.grant_probability(peer_class) == 1.0
            assert state.favors(peer_class)

    def test_vector_never_changes(self, state):
        state.on_session_start()
        state.on_request_while_busy(1)
        state.on_reminder(1)
        state.on_session_end()
        assert state.grant_probability(4) == 1.0
        assert state.on_idle_timeout() is False

    def test_busy_flag_works(self, state):
        state.on_session_start()
        assert state.busy
        with pytest.raises(ConfigurationError):
            state.on_session_start()
        state.on_session_end()
        assert not state.busy

    def test_lowest_favored_is_bottom_class(self, state, ladder):
        assert state.lowest_favored_class() == ladder.num_classes


class TestVariantPolicies:
    def test_no_reminder_keeps_dac_vector_dynamics(self, ladder):
        state = NoReminderDacPolicy().make_supplier_state(1, ladder)
        assert state.grant_probability(2) == 0.5
        assert state.on_idle_timeout() is True

    def test_linear_elevation_steps_additively(self, ladder):
        state = LinearElevationDacPolicy().make_supplier_state(1, ladder)
        assert state.on_idle_timeout() is True
        # 0.5 + 0.125, 0.25 + 0.125, 0.125 + 0.125
        assert state.vector.probabilities == [1.0, 0.625, 0.375, 0.25]

    def test_linear_elevation_session_end_uses_linear_step(self, ladder):
        state = LinearElevationDacPolicy().make_supplier_state(1, ladder)
        state.on_session_start()
        state.on_session_end()
        assert state.vector.probabilities == [1.0, 0.625, 0.375, 0.25]

    def test_linear_elevation_tighten_still_reinitializes(self, ladder):
        state = LinearElevationDacPolicy().make_supplier_state(1, ladder)
        state.on_session_start()
        state.on_reminder(1)
        state.on_session_end()
        assert state.vector.probabilities == [1.0, 0.5, 0.25, 0.125]

    def test_linear_idle_timeout_while_busy_is_noop(self, ladder):
        state = LinearElevationDacPolicy().make_supplier_state(1, ladder)
        state.on_session_start()
        assert state.on_idle_timeout() is False

    def test_generous_init_starts_all_ones_but_tightens(self, ladder):
        state = GenerousInitDacPolicy().make_supplier_state(1, ladder)
        assert state.vector.probabilities == [1.0] * 4
        state.on_session_start()
        state.on_reminder(2)
        state.on_session_end()
        assert state.vector.probabilities == [1.0, 1.0, 0.5, 0.25]
