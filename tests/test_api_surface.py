"""API-surface and error-hierarchy tests.

A downstream user programs against ``repro``'s public names; these tests
pin that surface so refactors cannot silently drop or rename it, and check
the error hierarchy contract (everything catchable as P2PStreamError).
"""

import importlib
import inspect

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_core_entry_points_present(self):
        for name in (
            "ClassLadder",
            "SupplierOffer",
            "ots_assignment",
            "sweep_assignment",
            "contiguous_assignment",
            "round_robin_assignment",
            "min_start_delay_slots",
            "theorem1_min_delay_slots",
            "AdmissionVector",
            "SupplierAdmissionState",
            "MediaFile",
            "plan_session",
            "SimulationConfig",
            "run_simulation",
            "compare_protocols",
            "sweep_parameter",
            "replicate",
            "ReplicatedResult",
            "run_experiment",
        ):
            assert name in repro.__all__

    def test_study_api_present(self):
        for name in ("Study", "RunSpec", "RunRecord", "ResultSet", "ResultStore"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.streaming",
            "repro.network",
            "repro.protocols",
            "repro.simulation",
            "repro.scenarios",
            "repro.orchestration",
            "repro.analysis",
        ],
    )
    def test_subpackages_export_alls(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__all__, f"{module_name} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_every_public_callable_has_a_docstring(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert inspect.getdoc(obj), f"repro.{name} lacks a docstring"


class TestErrorHierarchy:
    def test_every_error_derives_from_base(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.P2PStreamError)

    def test_infeasible_session_is_an_assignment_error(self):
        assert issubclass(errors.InfeasibleSessionError, errors.AssignmentError)

    def test_class_ladder_error_is_a_configuration_error(self):
        assert issubclass(errors.ClassLadderError, errors.ConfigurationError)

    def test_base_error_catchable_end_to_end(self):
        from repro.core.model import ClassLadder

        with pytest.raises(errors.P2PStreamError):
            ClassLadder(4).offer_units(9)

    def test_lookup_error_does_not_shadow_builtin(self):
        assert errors.LookupError_ is not LookupError
        assert not issubclass(errors.LookupError_, LookupError)
