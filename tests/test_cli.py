"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 0.1
        assert args.pattern is None  # resolves to pattern 2 / paper_default
        assert args.scenario is None
        assert args.protocol is None  # resolves to the scenario's (dac)


class TestCommands:
    def test_assignment_command(self, capsys):
        assert main(["assignment", "1", "2", "3", "3"]) == 0
        out = capsys.readouterr().out
        assert "OTS_p2p (optimal): buffering delay 4 x dt" in out
        assert "contiguous (Assignment I): buffering delay 5 x dt" in out

    def test_assignment_command_rejects_infeasible(self, capsys):
        assert main(["assignment", "1", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_patterns_command(self, capsys):
        assert main(["patterns", "--peers", "500"]) == 0
        out = capsys.readouterr().out
        for pattern_id in (1, 2, 3, 4):
            assert f"Arrival pattern {pattern_id}" in out

    def test_run_command_small(self, capsys):
        assert main(["run", "--scale", "0.004", "--pattern", "1"]) == 0
        out = capsys.readouterr().out
        assert "avg rejections" in out
        assert "capacity" in out

    def test_run_with_figures(self, capsys):
        code = main(
            ["run", "--scale", "0.004", "--pattern", "1", "--figures"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_compare_command_small(self, capsys):
        assert main(["compare", "--scale", "0.004", "--pattern", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Table 1" in out

    def test_sweep_command_small(self, capsys):
        code = main(
            ["sweep", "e_bkf", "1", "2", "--scale", "0.004", "--pattern", "1"]
        )
        assert code == 0
        assert "E_bkf=1" in capsys.readouterr().out

    def test_experiment_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        assert "Assignment I" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99", "--scale", "0.004"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scenarios_command_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper_default" in out
        assert "flash_crowd" in out
        assert "heavy_churn" in out

    def test_run_with_scenario(self, capsys):
        assert main(["run", "--scale", "0.004", "--scenario", "heavy_churn"]) == 0
        assert "capacity" in capsys.readouterr().out

    def test_pattern_overrides_scenario(self, capsys):
        code = main(
            ["run", "--scale", "0.004", "--scenario", "heavy_churn",
             "--pattern", "1"]
        )
        assert code == 0
        assert "pattern 1" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])

    def test_replicate_command(self, capsys):
        code = main(
            ["replicate", "--scale", "0.004", "--pattern", "1",
             "--replications", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2-seed replication" in out
        assert "final capacity" in out

    def test_compare_with_jobs(self, capsys):
        code = main(
            ["compare", "--scale", "0.004", "--pattern", "1", "--jobs", "2"]
        )
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_run_with_custom_seed_and_protocol(self, capsys):
        code = main(
            ["run", "--scale", "0.004", "--seed", "99", "--protocol", "ndac"]
        )
        assert code == 0
        assert "ndac" in capsys.readouterr().out
