"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 0.1
        assert args.pattern is None  # resolves to pattern 2 / paper_default
        assert args.scenario is None
        assert args.protocol is None  # resolves to the scenario's (dac)


class TestCommands:
    def test_assignment_command(self, capsys):
        assert main(["assignment", "1", "2", "3", "3"]) == 0
        out = capsys.readouterr().out
        assert "OTS_p2p (optimal): buffering delay 4 x dt" in out
        assert "contiguous (Assignment I): buffering delay 5 x dt" in out

    def test_assignment_command_rejects_infeasible(self, capsys):
        assert main(["assignment", "1", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_patterns_command(self, capsys):
        assert main(["patterns", "--peers", "500"]) == 0
        out = capsys.readouterr().out
        for pattern_id in (1, 2, 3, 4):
            assert f"Arrival pattern {pattern_id}" in out

    def test_run_command_small(self, capsys):
        assert main(["run", "--scale", "0.004", "--pattern", "1"]) == 0
        out = capsys.readouterr().out
        assert "avg rejections" in out
        assert "capacity" in out

    def test_run_with_figures(self, capsys):
        code = main(
            ["run", "--scale", "0.004", "--pattern", "1", "--figures"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_compare_command_small(self, capsys):
        assert main(["compare", "--scale", "0.004", "--pattern", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Table 1" in out

    def test_sweep_command_small(self, capsys):
        code = main(
            ["sweep", "e_bkf", "1", "2", "--scale", "0.004", "--pattern", "1"]
        )
        assert code == 0
        assert "E_bkf=1" in capsys.readouterr().out

    def test_experiment_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        assert "Assignment I" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99", "--scale", "0.004"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scenarios_command_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper_default" in out
        assert "flash_crowd" in out
        assert "heavy_churn" in out

    def test_run_with_scenario(self, capsys):
        assert main(["run", "--scale", "0.004", "--scenario", "heavy_churn"]) == 0
        assert "capacity" in capsys.readouterr().out

    def test_pattern_overrides_scenario(self, capsys):
        code = main(
            ["run", "--scale", "0.004", "--scenario", "heavy_churn",
             "--pattern", "1"]
        )
        assert code == 0
        assert "pattern 1" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])

    def test_replicate_command(self, capsys):
        code = main(
            ["replicate", "--scale", "0.004", "--pattern", "1",
             "--replications", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2-seed replication" in out
        assert "final capacity" in out

    def test_compare_with_jobs(self, capsys):
        code = main(
            ["compare", "--scale", "0.004", "--pattern", "1", "--jobs", "2"]
        )
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_run_with_custom_seed_and_protocol(self, capsys):
        code = main(
            ["run", "--scale", "0.004", "--seed", "99", "--protocol", "ndac"]
        )
        assert code == 0
        assert "ndac" in capsys.readouterr().out


class TestPerfAndProfiling:
    def test_perf_command_reports_every_kernel(self, capsys):
        assert main(["perf", "--scale", "0.004", "--scenario", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "reference" in out
        assert "calendar" in out
        assert "heap" in out

    def test_perf_no_reference(self, capsys):
        assert main([
            "perf", "--scale", "0.004", "--kernels", "calendar", "--no-reference",
        ]) == 0
        out = capsys.readouterr().out
        assert "reference" not in out
        assert "calendar" in out

    def test_run_with_kernel_and_probes(self, capsys):
        assert main([
            "run", "--scale", "0.004", "--kernel", "calendar",
            "--probes", "capacity", "table1",
        ]) == 0
        assert "capacity" in capsys.readouterr().out

    def test_run_profile_prints_top_entries(self, capsys):
        assert main(["run", "--scale", "0.004", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (top 25 by cumulative time):" in out
        assert "cumtime" in out

    def test_study_profile_and_kernel(self, capsys):
        assert main([
            "study", "--scale", "0.004", "--kernel", "calendar", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "study: 1 runs" in out
        assert "profile (top 25 by cumulative time):" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--kernel", "fibonacci"])

    def test_unknown_probe_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--probes", "nonexistent"])


class TestProbesParsing:
    """``--probes`` accepts space- and comma-separated name lists."""

    def test_comma_separated_probes_parse(self):
        args = build_parser().parse_args(
            ["run", "--probes", "capacity,table1"]
        )
        assert args.probes == [["capacity", "table1"]]

    def test_mixed_space_and_comma_tokens_parse(self):
        args = build_parser().parse_args(
            ["run", "--probes", "capacity", "table1,waiting"]
        )
        assert args.probes == [["capacity"], ["table1", "waiting"]]

    def test_comma_separated_probes_reach_the_config(self, capsys):
        assert main([
            "run", "--scale", "0.004", "--probes", "capacity,table1",
        ]) == 0
        assert "capacity" in capsys.readouterr().out

    def test_unknown_probe_in_comma_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--probes", "capacity,nonexistent"]
            )

    def test_empty_comma_token_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--probes", ","])


class TestLifecycleFlags:
    def test_lifecycle_flag_selects_the_model(self, capsys):
        assert main([
            "run", "--scale", "0.004", "--lifecycle", "flash",
        ]) == 0
        assert "lifecycle=flash/resume" in capsys.readouterr().out

    def test_recovery_flag_selects_the_mode(self, capsys):
        assert main([
            "run", "--scale", "0.004", "--lifecycle", "onoff",
            "--recovery", "restart",
        ]) == 0
        assert "lifecycle=onoff/restart" in capsys.readouterr().out

    def test_lifecycle_scenario_runs(self, capsys):
        assert main([
            "run", "--scenario", "flash_departure", "--scale", "0.02",
        ]) == 0
        assert "lifecycle=flash/resume" in capsys.readouterr().out

    def test_unknown_lifecycle_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--lifecycle", "meteor"])

    def test_lifecycle_is_sweepable(self, capsys):
        assert main([
            "study", "--scale", "0.004", "--scenario", "flash_departure",
            "--sweep", "lifecycle_flash_fraction", "0.1", "0.5",
        ]) == 0
        assert "study: 2 runs" in capsys.readouterr().out


class TestStudyCommand:
    def test_study_grid_with_aggregates(self, capsys):
        code = main(
            ["study", "--scale", "0.004", "--pattern", "1",
             "--protocols", "dac", "ndac", "--seeds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "study: 4 runs" in out
        assert "mean ± 95% CI" in out

    def test_study_sweep_axis(self, capsys):
        code = main(
            ["study", "--scale", "0.004", "--pattern", "1",
             "--sweep", "probe_candidates", "4", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "study: 2 runs" in out
        assert "probe_candidates=4" in out

    def test_study_export_and_cache(self, capsys, tmp_path):
        out_base = str(tmp_path / "records")
        cache_dir = str(tmp_path / "cache")
        argv = ["study", "--scale", "0.004", "--pattern", "1",
                "--export", "json", "--export", "csv", "--out", out_base,
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "source" in out and "run" in out
        json_path = tmp_path / "records.json"
        csv_path = tmp_path / "records.csv"
        assert json.loads(json_path.read_text())["schema"] == "repro.study.v1"
        assert csv_path.read_text().startswith("spec_hash,")
        # Second invocation is served from the cache directory.
        assert main(argv) == 0
        assert "cache" in capsys.readouterr().out

    def test_study_rejects_unknown_sweep_parameter(self, capsys):
        code = main(
            ["study", "--scale", "0.004", "--sweep", "nonexistent_knob", "4"]
        )
        assert code == 2
        assert "probe_candidates" in capsys.readouterr().err

    def test_compare_with_export(self, capsys, tmp_path):
        out_base = str(tmp_path / "cmp")
        code = main(
            ["compare", "--scale", "0.004", "--pattern", "1",
             "--export", "json", "--out", out_base]
        )
        assert code == 0
        payload = json.loads((tmp_path / "cmp.json").read_text())
        assert payload["count"] == 2

    def test_study_resume_requires_cache_dir(self, capsys):
        code = main(["study", "--scale", "0.004", "--resume"])
        assert code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_replicate_with_cache_dir(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["replicate", "--scale", "0.004", "--pattern", "1",
                "--replications", "2", "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "2-seed replication" in capsys.readouterr().out


class TestStudySharding:
    GRID = ["--scale", "0.004", "--pattern", "1", "--seeds", "2"]

    def test_shard_merge_status_round_trip(self, capsys, tmp_path):
        shards = [str(tmp_path / f"shard{i}") for i in range(2)]
        for index, store in enumerate(shards):
            code = main(["study", "shard", *self.GRID, "--store", store,
                         "--slice", f"{index}/2", "--owner", f"host{index}"])
            assert code == 0
            assert "1/1 executed" in capsys.readouterr().out
        merged = str(tmp_path / "merged")
        assert main(["study", "merge", "--into", merged, *shards]) == 0
        assert "2 copied" in capsys.readouterr().out
        assert main(["study", "status", *self.GRID, "--store", merged]) == 0
        out = capsys.readouterr().out
        assert "2 done" in out and "0 pending of 2 specs" in out
        # The merged store serves the whole grid from cache: the study
        # command recomputes nothing and reports every run as cached.
        assert main(["study", *self.GRID, "--cache-dir", merged]) == 0
        out = capsys.readouterr().out
        assert "study: 2 runs" in out
        assert out.count("cache") >= 2

    def test_shard_rejects_malformed_slice(self, capsys):
        code = main(["study", "shard", "--store", "ignored",
                     "--slice", "2of2"])
        assert code == 2
        assert "I/N" in capsys.readouterr().err

    def test_shard_rejects_out_of_range_slice(self, capsys):
        code = main(["study", "shard", "--store", "ignored",
                     "--slice", "2/2"])
        assert code == 2
        assert "0 <= I < N" in capsys.readouterr().err

    def test_status_without_grid_flags_reports_store_only(
        self, capsys, tmp_path
    ):
        store = str(tmp_path / "store")
        assert main(["study", "shard", *self.GRID, "--store", store,
                     "--slice", "0/1"]) == 0
        capsys.readouterr()
        assert main(["study", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 done" in out and "pending" not in out

    def test_resume_completes_a_partial_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        # First worker executes only its slice, leaving the grid half done.
        assert main(["study", "shard", *self.GRID, "--store", store,
                     "--slice", "0/2"]) == 0
        capsys.readouterr()
        assert main(["study", *self.GRID, "--cache-dir", store,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "study: 2 runs" in out
        assert main(["study", "status", *self.GRID, "--store", store]) == 0
        assert "0 pending" in capsys.readouterr().out
