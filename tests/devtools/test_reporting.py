"""The shared finding/exit-code conventions every checker reports through."""

import io

from repro.devtools.reporting import Finding, exit_code, print_findings, report


class TestFinding:
    def test_format_is_file_line_rule_message(self):
        f = Finding(file="src/a.py", line=7, rule="no-wallclock", message="boom")
        assert f.format() == "src/a.py:7: [no-wallclock] boom"

    def test_line_zero_means_whole_file(self):
        f = Finding(file="out.json", line=0, rule="bench-schema", message="bad")
        assert f.format() == "out.json: [bench-schema] bad"

    def test_warning_severity_is_tagged(self):
        f = Finding("a.py", 1, "r", "m", severity="warning")
        assert "[r!]" in f.format()

    def test_findings_sort_by_file_then_line(self):
        early = Finding("a.py", 1, "r", "m")
        late = Finding("b.py", 1, "r", "m")
        mid = Finding("a.py", 9, "r", "m")
        assert sorted([late, mid, early]) == [early, mid, late]


class TestExitCode:
    def test_clean_is_zero(self):
        assert exit_code([]) == 0

    def test_any_error_is_one(self):
        assert exit_code([Finding("a", 1, "r", "m")]) == 1

    def test_warnings_alone_stay_zero(self):
        assert exit_code([Finding("a", 1, "r", "m", severity="warning")]) == 0


class TestReport:
    def test_clean_report_prints_ok(self, capsys):
        assert report("tool", [], ok_detail="3 files") == 0
        assert "tool: ok (3 files)" in capsys.readouterr().out

    def test_failing_report_prints_findings_and_summary(self):
        stream = io.StringIO()
        findings = [Finding("a.py", 2, "r", "broken")]
        assert report("tool", findings, stream=stream) == 1
        text = stream.getvalue()
        assert "a.py:2: [r] broken" in text
        assert "tool: 1 error(s)" in text

    def test_print_findings_is_sorted(self):
        stream = io.StringIO()
        print_findings(
            [Finding("b.py", 1, "r", "m"), Finding("a.py", 1, "r", "m")],
            stream=stream,
        )
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("a.py") and lines[1].startswith("b.py")
