"""The hash-exclusion allowlist behaves as documented, not just as linted.

The detlint ``config-hash-drift`` rule pins the *static* agreement
between ``HASH_EXCLUDED_FIELDS`` and ``config_hash``; these tests pin
the *dynamic* claim each rationale makes — excluded fields really do
not move the hash, and every other field really does.
"""

import dataclasses

from repro.orchestration.runspec import HASH_EXCLUDED_FIELDS, config_hash
from repro.simulation.config import SimulationConfig


def small_config() -> SimulationConfig:
    return SimulationConfig().scaled(0.002)


class TestAllowlist:
    def test_excluded_fields_are_real_config_fields(self):
        names = {f.name for f in dataclasses.fields(SimulationConfig)}
        assert set(HASH_EXCLUDED_FIELDS) <= names

    def test_every_exclusion_has_a_written_rationale(self):
        for name, rationale in HASH_EXCLUDED_FIELDS.items():
            assert rationale.strip(), f"{name} has no rationale"

    def test_the_documented_exclusions_are_kernel_and_engine(self):
        assert set(HASH_EXCLUDED_FIELDS) == {"kernel", "engine"}


class TestHashBehavior:
    def test_excluded_fields_do_not_move_the_hash(self):
        base = small_config()
        assert config_hash(base) == config_hash(
            base.replace(kernel="calendar")
        )
        assert config_hash(base) == config_hash(base.replace(engine="array"))

    def test_hashed_fields_move_the_hash(self):
        base = small_config()
        assert config_hash(base) != config_hash(
            base.replace(master_seed=base.master_seed + 1)
        )
        assert config_hash(base) != config_hash(base.replace(protocol="ndac"))

    def test_hash_is_stable_across_equal_configs(self):
        assert config_hash(small_config()) == config_hash(small_config())
