"""The benchmark/study JSON validators behind the ``scripts/`` shims."""

import json

from repro.devtools import benchcheck, studycheck

KERNEL_EXPORT = {
    "schema": "repro.bench_kernel_scaling.v1",
    "version": "1.0",
    "scenario": "metropolis_100k",
    "runs": [{
        "scale": 0.1, "peers": 10000, "mode": "fast", "engine": "object",
        "kernel": "calendar", "events": 1000, "wall_seconds": 1.0,
        "events_per_sec": 1000.0, "probes": ["capacity"],
    }],
    "speedups": [{
        "scale": 0.1, "peers": 10000, "fast_kernel": "calendar",
        "events_per_sec": 1000.0, "speedup_vs_full_heap": 2.0,
        "speedup_vs_pre_refactor": None,
    }],
}

STUDY_EXPORT = {
    "schema": "repro.study.v1",
    "version": "1.0",
    "count": 1,
    "records": [{
        "spec_hash": "0" * 64,
        "config": {"protocol": "dac", "master_seed": 1,
                   "arrival_pattern": 2},
        "scalars": {"final_capacity": 10.0, "max_capacity": 20.0,
                    "capacity_fraction_of_max": 0.5},
        "metrics": {"capacity_series": [[0.0, 1.0]],
                    "overall_admission_rate_series": [[0.0, 0.5]]},
        "events_processed": 100,
        "wall_seconds": 0.5,
        "version": "1.0",
        "axes": [],
    }],
}


def write_json(tmp_path, payload):
    path = tmp_path / "export.json"
    path.write_text(json.dumps(payload))
    return path


class TestBenchCheck:
    def test_valid_kernel_export_passes(self, tmp_path):
        findings, summary = benchcheck.check_file(
            write_json(tmp_path, KERNEL_EXPORT)
        )
        assert findings == []
        assert "1 runs" in summary

    def test_unknown_schema_is_a_finding(self, tmp_path):
        payload = dict(KERNEL_EXPORT, schema="repro.other.v9")
        findings, _ = benchcheck.check_file(write_json(tmp_path, payload))
        assert findings and findings[0].rule == "bench-schema"

    def test_missing_run_field_is_a_finding(self, tmp_path):
        payload = json.loads(json.dumps(KERNEL_EXPORT))
        del payload["runs"][0]["events_per_sec"]
        findings, _ = benchcheck.check_file(write_json(tmp_path, payload))
        assert any("events_per_sec" in f.message for f in findings)

    def test_invalid_json_is_a_finding(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        findings, _ = benchcheck.check_file(path)
        assert findings and "cannot read" in findings[0].message

    def test_main_usage_error_is_two(self, capsys):
        assert benchcheck.main(["check_bench_json.py"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_main_reports_through_the_shared_conventions(
        self, tmp_path, capsys
    ):
        path = write_json(tmp_path, KERNEL_EXPORT)
        assert benchcheck.main(["check_bench_json.py", str(path)]) == 0
        assert "check_bench_json: ok" in capsys.readouterr().out


class TestStudyCheck:
    def test_valid_study_export_passes(self, tmp_path):
        findings, summary = studycheck.check_file(
            write_json(tmp_path, STUDY_EXPORT)
        )
        assert findings == []
        assert "1 record(s)" in summary

    def test_bad_spec_hash_is_a_finding(self, tmp_path):
        payload = json.loads(json.dumps(STUDY_EXPORT))
        payload["records"][0]["spec_hash"] = "nothex"
        findings, _ = studycheck.check_file(write_json(tmp_path, payload))
        assert any("spec_hash" in f.message for f in findings)

    def test_count_mismatch_is_a_finding(self, tmp_path):
        payload = dict(STUDY_EXPORT, count=7)
        findings, _ = studycheck.check_file(write_json(tmp_path, payload))
        assert any("count" in f.message for f in findings)

    def test_missing_metric_series_is_a_finding(self, tmp_path):
        payload = json.loads(json.dumps(STUDY_EXPORT))
        del payload["records"][0]["metrics"]["capacity_series"]
        findings, _ = studycheck.check_file(write_json(tmp_path, payload))
        assert any("capacity_series" in f.message for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        path = write_json(tmp_path, STUDY_EXPORT)
        assert studycheck.main(["check_study_json.py", str(path)]) == 0
        capsys.readouterr()
        assert studycheck.main(["check_study_json.py"]) == 2


class TestStudyEquality:
    """``check_study_json.py A --equal B`` — the shard-merge parity gate."""

    def write_pair(self, tmp_path, mutate=None):
        first = tmp_path / "serial.json"
        first.write_text(json.dumps(STUDY_EXPORT))
        payload = json.loads(json.dumps(STUDY_EXPORT))
        if mutate is not None:
            mutate(payload)
        second = tmp_path / "merged.json"
        second.write_text(json.dumps(payload))
        return first, second

    def test_identical_exports_are_equal(self, tmp_path):
        first, second = self.write_pair(tmp_path)
        findings, summary = studycheck.compare_files(first, second)
        assert findings == []
        assert "bit-identical" in summary

    def test_wall_time_differences_are_ignored(self, tmp_path):
        def slow_down(payload):
            payload["records"][0]["wall_seconds"] = 99.0

        first, second = self.write_pair(tmp_path, slow_down)
        findings, _ = studycheck.compare_files(first, second)
        assert findings == []

    def test_payload_differences_are_a_finding(self, tmp_path):
        def tamper(payload):
            payload["records"][0]["scalars"]["final_capacity"] = -1.0

        first, second = self.write_pair(tmp_path, tamper)
        findings, _ = studycheck.compare_files(first, second)
        assert any("not bit-identical" in f.message for f in findings)

    def test_record_count_mismatch_is_a_finding(self, tmp_path):
        def double(payload):
            payload["records"].append(json.loads(
                json.dumps(payload["records"][0])
            ))
            payload["records"][1]["spec_hash"] = "1" * 64
            payload["count"] = 2

        first, second = self.write_pair(tmp_path, double)
        findings, _ = studycheck.compare_files(first, second)
        assert any("records" in f.message for f in findings)

    def test_main_equal_mode(self, tmp_path, capsys):
        first, second = self.write_pair(tmp_path)
        code = studycheck.main(
            ["check_study_json.py", str(first), "--equal", str(second)]
        )
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out
