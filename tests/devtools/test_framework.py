"""The detlint harness: scoping, suppressions, baselines, the walk."""

import ast
from pathlib import Path

import pytest

from repro.devtools.reporting import Finding
from repro.devtools.staticcheck.framework import (
    ModuleSource,
    RuleScope,
    iter_python_files,
    load_baseline,
    load_module,
    parse_suppressions,
    run_detlint,
    write_baseline,
)
from repro.devtools.staticcheck.rules import NoWallclock, all_checkers


class TestRuleScope:
    def test_default_scope_matches_everything(self):
        assert RuleScope().applies("anything/at/all.py")

    def test_include_prefix(self):
        scope = RuleScope(include=("src/repro/simulation/",))
        assert scope.applies("src/repro/simulation/engine.py")
        assert not scope.applies("benchmarks/bench_x.py")

    def test_exclude_wins_over_include(self):
        scope = RuleScope(include=("src/",), exclude=("src/repro/devtools/",))
        assert scope.applies("src/repro/cli.py")
        assert not scope.applies("src/repro/devtools/reporting.py")


class TestSuppressions:
    def test_bare_ignore_silences_every_rule(self):
        table = parse_suppressions("x = 1  # detlint: ignore\n")
        assert table == {1: None}

    def test_rule_list_is_parsed(self):
        table = parse_suppressions(
            "a\nb  # detlint: ignore[no-wallclock, no-global-rng]\n"
        )
        assert table[2] == frozenset({"no-wallclock", "no-global-rng"})

    def test_unrelated_comments_are_not_suppressions(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}

    def test_module_source_suppressed(self):
        text = "import time\nt = time.time()  # detlint: ignore[no-wallclock]\n"
        module = ModuleSource(
            path=Path("m.py"), relpath="m.py", text=text,
            tree=ast.parse(text), suppressions=parse_suppressions(text),
        )
        assert module.suppressed(2, "no-wallclock")
        assert not module.suppressed(2, "no-global-rng")
        assert not module.suppressed(1, "no-wallclock")


class TestLoadModule:
    def test_parse_error_becomes_a_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        loaded = load_module(tmp_path, bad)
        assert isinstance(loaded, Finding)
        assert loaded.rule == "parse-error"
        assert loaded.file == "bad.py"

    def test_good_module_carries_suppressions(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1  # detlint: ignore\n")
        loaded = load_module(tmp_path, good)
        assert isinstance(loaded, ModuleSource)
        assert loaded.suppressions == {1: None}


class TestIterPythonFiles:
    def test_skips_generated_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "output").mkdir()
        (tmp_path / "pkg" / "output" / "gen.py").write_text("x = 1\n")
        files = iter_python_files(tmp_path, ["pkg"])
        assert [f.name for f in files] == ["mod.py"]

    def test_single_file_selector_and_dedup(self, tmp_path):
        (tmp_path / "one.py").write_text("x = 1\n")
        files = iter_python_files(tmp_path, ["one.py", "one.py", "missing"])
        assert [f.name for f in files] == ["one.py"]


class TestBaseline:
    def test_roundtrip_filters_known_findings(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text("import time\nt = time.perf_counter()\n")
        checker = NoWallclock(scope=RuleScope(include=("src/",)))
        first = run_detlint(tmp_path, paths=["src"], checkers=[checker])
        assert len(first) == 1
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first)
        known = load_baseline(baseline_file)
        assert run_detlint(
            tmp_path, paths=["src"], checkers=[checker], baseline=known
        ) == []

    def test_new_findings_survive_the_baseline(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text("import time\nt = time.perf_counter()\n")
        checker = NoWallclock(scope=RuleScope(include=("src/",)))
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, run_detlint(
            tmp_path, paths=["src"], checkers=[checker]
        ))
        (src / "mod.py").write_text(
            "import time\nt = time.perf_counter()\nu = time.monotonic()\n"
        )
        survivors = run_detlint(
            tmp_path, paths=["src"], checkers=[checker],
            baseline=load_baseline(baseline_file),
        )
        assert [f.line for f in survivors] == [3]

    def test_wrong_schema_is_rejected(self, tmp_path):
        bogus = tmp_path / "b.json"
        bogus.write_text('{"schema": "something.else", "findings": []}')
        with pytest.raises(ValueError, match="not a detlint baseline"):
            load_baseline(bogus)


class TestRunDetlint:
    def test_inline_suppression_silences_a_module_finding(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            "import time\n"
            "t = time.perf_counter()  # detlint: ignore[no-wallclock]\n"
        )
        checker = NoWallclock(scope=RuleScope(include=("src/",)))
        assert run_detlint(tmp_path, paths=["src"], checkers=[checker]) == []

    def test_out_of_scope_modules_are_not_checked(self, tmp_path):
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bench_x.py").write_text("import time\nt = time.time()\n")
        checker = NoWallclock(scope=RuleScope(include=("src/",)))
        assert run_detlint(
            tmp_path, paths=["benchmarks"], checkers=[checker]
        ) == []

    def test_unparseable_file_fails_the_run(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "bad.py").write_text("def broken(:\n")
        findings = run_detlint(tmp_path, paths=["src"], checkers=[])
        assert [f.rule for f in findings] == ["parse-error"]


class TestRuleSelection:
    def test_all_checkers_covers_the_six_rules(self):
        names = {c.rule for c in all_checkers()}
        assert names == {
            "no-global-rng", "no-wallclock", "no-unordered-iteration",
            "config-hash-drift", "slots-hotpath", "export-sync",
        }

    def test_filtering_preserves_request_order(self):
        selected = all_checkers(["no-wallclock", "export-sync"])
        assert [c.rule for c in selected] == ["no-wallclock", "export-sync"]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown detlint rule"):
            all_checkers(["no-such-rule"])
