"""The detlint command line, and the acceptance gate: the tree is clean.

``test_live_tree_is_clean`` is the contract the whole PR rests on — the
default lint surface (``src``, ``benchmarks``, ``examples``) must stay
free of unsuppressed findings, so any future violation of a determinism
rule fails the tier-1 suite, not just CI's lint job.
"""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.devtools.staticcheck.cli import DEFAULT_PATHS, build_parser, run
from repro.devtools.staticcheck.framework import run_detlint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

BAD_TREE = {
    "src/repro/simulation/leaky.py": (
        '"""fixture"""\n'
        "import random\n"
        "import time\n"
        "def jitter():\n"
        "    return random.random() + time.time()\n"
    ),
}


def write_tree(root: Path, files: dict[str, str]) -> None:
    for relpath, text in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)


class TestLiveTree:
    def test_live_tree_is_clean(self):
        assert run_detlint(REPO_ROOT, paths=list(DEFAULT_PATHS)) == []

    def test_run_exits_zero_on_the_live_tree(self, capsys):
        assert run(root=str(REPO_ROOT)) == 0
        assert "detlint: ok" in capsys.readouterr().out


class TestRunFunction:
    def test_violations_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_TREE)
        assert run(["src"], root=str(tmp_path)) == 1
        err = capsys.readouterr().err
        assert "[no-global-rng]" in err
        assert "[no-wallclock]" in err

    def test_rule_filter_narrows_the_findings(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_TREE)
        assert run(["src"], root=str(tmp_path), rules=["no-wallclock"]) == 1
        err = capsys.readouterr().err
        assert "[no-wallclock]" in err and "[no-global-rng]" not in err

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert run(rules=["no-such-rule"]) == 2
        assert "unknown detlint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert run(list_rules=True) == 0
        out = capsys.readouterr().out
        for rule in ("no-global-rng", "no-wallclock", "no-unordered-iteration",
                     "config-hash-drift", "slots-hotpath", "export-sync"):
            assert f"{rule}:" in out

    def test_json_format(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_TREE)
        assert run(
            ["src"], root=str(tmp_path), rules=["no-wallclock"],
            output_format="json",
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload and payload[0]["rule"] == "no-wallclock"
        assert set(payload[0]) == {"file", "line", "rule", "message",
                                   "severity"}

    def test_baseline_write_then_tolerate(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_TREE)
        baseline = tmp_path / "baseline.json"
        assert run(
            ["src"], root=str(tmp_path), write_baseline_path=str(baseline)
        ) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert run(["src"], root=str(tmp_path), baseline=str(baseline)) == 0

    def test_missing_baseline_is_a_usage_error(self, tmp_path, capsys):
        assert run(
            ["src"], root=str(tmp_path), baseline=str(tmp_path / "nope.json")
        ) == 2
        assert "error" in capsys.readouterr().err


class TestArgumentParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.paths == [] or args.paths is None
        assert args.root == "."
        assert args.format == "text"
        assert args.rules is None

    def test_rules_and_format(self):
        args = build_parser().parse_args(
            ["src", "--rules", "no-wallclock", "--format", "json"]
        )
        assert args.paths == ["src"]
        assert args.rules == ["no-wallclock"]
        assert args.format == "json"


class TestReproLintCommand:
    def test_lint_subcommand_runs_clean_on_the_tree(self, capsys):
        assert repro_main(["lint", "--root", str(REPO_ROOT)]) == 0
        assert "detlint: ok" in capsys.readouterr().out

    def test_lint_subcommand_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        assert "config-hash-drift:" in capsys.readouterr().out

    def test_lint_subcommand_reports_violations(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_TREE)
        assert repro_main(["lint", "src", "--root", str(tmp_path)]) == 1
        assert "[no-global-rng]" in capsys.readouterr().err
