"""Every detlint rule: at least one flagging and one passing fixture.

Module rules get parsed source snippets; project rules get miniature
fixture trees under ``tmp_path`` built to the same shape as the real
repository (the rules are parameterized over their anchor paths exactly
so this suite can exercise them without touching the live tree).
"""

import ast
from pathlib import Path

import pytest

from repro.devtools.staticcheck.framework import ModuleSource, parse_suppressions
from repro.devtools.staticcheck.rules import (
    ConfigHashDrift,
    ExportSync,
    NoGlobalRng,
    NoUnorderedIteration,
    NoWallclock,
    SlotsHotpath,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def module(text: str, relpath: str = "src/repro/simulation/demo.py"):
    """A ModuleSource for an inline source snippet."""
    return ModuleSource(
        path=Path(relpath), relpath=relpath, text=text,
        tree=ast.parse(text), suppressions=parse_suppressions(text),
    )


class TestNoGlobalRng:
    def check(self, text):
        return list(NoGlobalRng().check_module(module(text)))

    def test_module_level_random_call_is_flagged(self):
        findings = self.check("import random\nx = random.random()\n")
        assert [f.line for f in findings] == [2]
        assert findings[0].rule == "no-global-rng"

    def test_from_random_import_is_flagged(self):
        assert self.check("from random import randint\n")

    def test_numpy_global_rng_is_flagged(self):
        assert self.check("import numpy as np\nx = np.random.rand(3)\n")

    def test_injected_random_stream_passes(self):
        assert self.check(
            "import random\n"
            "def draw(rng: random.Random):\n"
            "    return rng.random()\n"
        ) == []

    def test_seeded_constructors_pass(self):
        assert self.check("import random\nrng = random.Random(7)\n") == []
        assert self.check(
            "import numpy as np\nrng = np.random.default_rng(7)\n"
        ) == []

    def test_default_scope_is_the_package(self):
        assert NoGlobalRng().scope.applies("src/repro/core/model.py")
        assert not NoGlobalRng().scope.applies("benchmarks/bench_x.py")


class TestNoWallclock:
    def check(self, text):
        return list(NoWallclock().check_module(module(text)))

    def test_time_time_is_flagged(self):
        findings = self.check("import time\nt = time.time()\n")
        assert [f.rule for f in findings] == ["no-wallclock"]

    def test_perf_counter_and_from_import_are_flagged(self):
        assert self.check("import time\nt = time.perf_counter()\n")
        assert self.check("from time import monotonic\n")

    def test_datetime_now_is_flagged(self):
        assert self.check(
            "from datetime import datetime\nstamp = datetime.now()\n"
        )
        assert self.check("import datetime\ns = datetime.datetime.now()\n")

    def test_pure_duration_arithmetic_passes(self):
        assert self.check(
            "import time\ndef wait(t):\n    time.sleep(t)\n"
        ) == []

    def test_simulated_clock_passes(self):
        assert self.check(
            "class Simulator:\n"
            "    def __init__(self):\n"
            "        self.now = 0.0\n"
        ) == []

    def test_scope_allows_benchmarks_and_cli(self):
        scope = NoWallclock().scope
        assert scope.applies("src/repro/simulation/runner.py")
        assert scope.applies("src/repro/protocols/dac.py")
        assert not scope.applies("benchmarks/bench_kernel_scaling.py")
        assert not scope.applies("src/repro/cli.py")


class TestNoUnorderedIteration:
    def check(self, text):
        return list(NoUnorderedIteration().check_module(module(text)))

    def test_for_over_set_literal_is_flagged(self):
        findings = self.check("for x in {1, 2, 3}:\n    pass\n")
        assert [f.rule for f in findings] == ["no-unordered-iteration"]

    def test_for_over_set_call_and_listdir_are_flagged(self):
        assert self.check("for x in set(items):\n    pass\n")
        assert self.check("import os\nfor f in os.listdir('.'):\n    pass\n")
        assert self.check("for p in path.glob('*.json'):\n    pass\n")

    def test_transparent_wrappers_do_not_hide_the_set(self):
        assert self.check("for i, x in enumerate(set(items)):\n    pass\n")

    def test_sorted_iteration_passes(self):
        assert self.check("for x in sorted({1, 2, 3}):\n    pass\n") == []
        assert self.check(
            "names = sorted(p.stem for p in root.glob('*.json'))\n"
        ) == []

    def test_order_insensitive_consumers_pass(self):
        assert self.check("n = max(len(x) for x in set(items))\n") == []

    def test_sum_over_a_set_source_is_still_flagged(self):
        # float addition is order-sensitive; ``sum`` is deliberately not
        # on the order-insensitive exemption list
        assert self.check("t = sum(x for x in set(values))\n")


def write_tree(root: Path, files: dict[str, str]) -> None:
    for relpath, text in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)


SLOTTED = (
    "class Fast:\n"
    "    __slots__ = ('a', 'b')\n"
)
UNSLOTTED = (
    "class Fast:\n"
    "    def __init__(self):\n"
    "        self.a = 1\n"
)
DATACLASS_SLOTS = (
    "from dataclasses import dataclass\n"
    "@dataclass(slots=True)\n"
    "class Fast:\n"
    "    a: int\n"
)


class TestSlotsHotpath:
    def run(self, tmp_path, source, classes=("Fast",)):
        write_tree(tmp_path, {"src/hot.py": source})
        checker = SlotsHotpath(registry={"src/hot.py": classes})
        return list(checker.check_project(tmp_path))

    def test_unslotted_hotpath_class_is_flagged(self, tmp_path):
        findings = self.run(tmp_path, UNSLOTTED)
        assert [f.rule for f in findings] == ["slots-hotpath"]
        assert "Fast" in findings[0].message

    def test_slots_declaration_passes(self, tmp_path):
        assert self.run(tmp_path, SLOTTED) == []

    def test_dataclass_slots_true_passes(self, tmp_path):
        assert self.run(tmp_path, DATACLASS_SLOTS) == []

    def test_stale_registry_entry_is_flagged(self, tmp_path):
        findings = self.run(tmp_path, SLOTTED, classes=("Fast", "Gone"))
        assert any("stale registry" in f.message for f in findings)

    def test_live_registry_is_clean(self):
        assert list(SlotsHotpath().check_project(REPO_ROOT)) == []


CONFIG_FIXTURE = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class SimulationConfig:\n"
    "    seed: int = 1\n"
    "    kernel: str = 'heap'\n"
    "    engine: str = 'object'\n"
)


def runspec_fixture(allowlist: str, pops: str) -> str:
    return (
        f"HASH_EXCLUDED_FIELDS: dict[str, str] = {{{allowlist}}}\n"
        "def config_hash(config):\n"
        "    data = dict(config)\n"
        f"{pops}"
        "    return hash(frozenset(data))\n"
    )


IN_SYNC = runspec_fixture(
    "'kernel': 'order-identical by contract', "
    "'engine': 'parity-pinned against the object engine'",
    "    data.pop('kernel', None)\n    data.pop('engine', None)\n",
)


class TestConfigHashDrift:
    def run(self, tmp_path, files):
        write_tree(tmp_path, files)
        checker = ConfigHashDrift(
            config_path="src/config.py", runspec_path="src/runspec.py"
        )
        return list(checker.check_project(tmp_path))

    def test_in_sync_fixture_passes(self, tmp_path):
        assert self.run(tmp_path, {
            "src/config.py": CONFIG_FIXTURE, "src/runspec.py": IN_SYNC,
        }) == []

    def test_deleting_an_allowlist_entry_fails(self, tmp_path):
        # the acceptance scenario: ``engine`` dropped from the constant
        # while config_hash still pops it
        missing_engine = runspec_fixture(
            "'kernel': 'order-identical by contract'",
            "    data.pop('kernel', None)\n    data.pop('engine', None)\n",
        )
        findings = self.run(tmp_path, {
            "src/config.py": CONFIG_FIXTURE, "src/runspec.py": missing_engine,
        })
        assert any(
            "'engine'" in f.message and "does not list it" in f.message
            for f in findings
        )

    def test_new_unhashed_field_fails(self, tmp_path):
        # the other acceptance scenario: a pop with no documented rationale
        extra_pop = runspec_fixture(
            "'kernel': 'order-identical by contract', "
            "'engine': 'parity-pinned against the object engine'",
            "    data.pop('kernel', None)\n    data.pop('engine', None)\n"
            "    data.pop('seed', None)\n",
        )
        findings = self.run(tmp_path, {
            "src/config.py": CONFIG_FIXTURE, "src/runspec.py": extra_pop,
        })
        assert any("'seed'" in f.message for f in findings)

    def test_allowlist_entry_without_pop_fails(self, tmp_path):
        no_engine_pop = runspec_fixture(
            "'kernel': 'order-identical by contract', "
            "'engine': 'parity-pinned against the object engine'",
            "    data.pop('kernel', None)\n",
        )
        findings = self.run(tmp_path, {
            "src/config.py": CONFIG_FIXTURE, "src/runspec.py": no_engine_pop,
        })
        assert any("still hashes it" in f.message for f in findings)

    def test_stale_exclusion_of_a_nonfield_fails(self, tmp_path):
        stale = runspec_fixture(
            "'kernel': 'order-identical by contract', "
            "'engine': 'parity-pinned against the object engine', "
            "'warp': 'no such field'",
            "    data.pop('kernel', None)\n    data.pop('engine', None)\n"
            "    data.pop('warp', None)\n",
        )
        findings = self.run(tmp_path, {
            "src/config.py": CONFIG_FIXTURE, "src/runspec.py": stale,
        })
        assert any("stale exclusion" in f.message for f in findings)

    def test_empty_rationale_fails(self, tmp_path):
        blank = runspec_fixture(
            "'kernel': '', "
            "'engine': 'parity-pinned against the object engine'",
            "    data.pop('kernel', None)\n    data.pop('engine', None)\n",
        )
        findings = self.run(tmp_path, {
            "src/config.py": CONFIG_FIXTURE, "src/runspec.py": blank,
        })
        assert any("empty rationale" in f.message for f in findings)

    def test_non_literal_pop_fails(self, tmp_path):
        dynamic = runspec_fixture(
            "'kernel': 'order-identical by contract', "
            "'engine': 'parity-pinned against the object engine'",
            "    for name in ('kernel', 'engine'):\n"
            "        data.pop(name, None)\n",
        )
        findings = self.run(tmp_path, {
            "src/config.py": CONFIG_FIXTURE, "src/runspec.py": dynamic,
        })
        assert any("non-literal" in f.message for f in findings)

    def test_live_tree_is_in_sync(self):
        assert list(ConfigHashDrift().check_project(REPO_ROOT)) == []


INIT_FIXTURE = (
    '"""pkg"""\n'
    "from pkg._version import __version__\n"
    "from pkg.mod import thing\n"
    "__all__ = ['__version__', 'thing']\n"
)
VERSION_FIXTURE = '"""version"""\n__version__ = "1.0.0"\n'
PYPROJECT_FIXTURE = '[project]\nname = "pkg"\nversion = "1.0.0"\n'


class TestExportSync:
    def run(self, tmp_path, files):
        write_tree(tmp_path, files)
        checker = ExportSync(
            init_path="src/pkg/__init__.py",
            version_path="src/pkg/_version.py",
            pyproject_path="pyproject.toml",
            version_module="pkg._version",
        )
        return list(checker.check_project(tmp_path))

    def fixture(self, **overrides):
        files = {
            "src/pkg/__init__.py": INIT_FIXTURE,
            "src/pkg/_version.py": VERSION_FIXTURE,
            "pyproject.toml": PYPROJECT_FIXTURE,
        }
        files.update(overrides)
        return files

    def test_consistent_fixture_passes(self, tmp_path):
        assert self.run(tmp_path, self.fixture()) == []

    def test_unbound_export_is_flagged(self, tmp_path):
        init = INIT_FIXTURE.replace(
            "__all__ = ['__version__', 'thing']",
            "__all__ = ['__version__', 'thing', 'ghost']",
        )
        findings = self.run(
            tmp_path, self.fixture(**{"src/pkg/__init__.py": init})
        )
        assert any("'ghost'" in f.message for f in findings)

    def test_bound_but_unexported_name_is_flagged(self, tmp_path):
        init = INIT_FIXTURE.replace(
            "__all__ = ['__version__', 'thing']",
            "__all__ = ['__version__']",
        )
        findings = self.run(
            tmp_path, self.fixture(**{"src/pkg/__init__.py": init})
        )
        assert any("missing from" in f.message for f in findings)

    def test_version_mismatch_with_pyproject_is_flagged(self, tmp_path):
        pyproject = PYPROJECT_FIXTURE.replace("1.0.0", "2.0.0")
        findings = self.run(
            tmp_path, self.fixture(**{"pyproject.toml": pyproject})
        )
        assert any("bump both together" in f.message for f in findings)

    def test_wrong_version_source_is_flagged(self, tmp_path):
        init = INIT_FIXTURE.replace(
            "from pkg._version import __version__",
            "from pkg.legacy import __version__",
        )
        findings = self.run(
            tmp_path, self.fixture(**{"src/pkg/__init__.py": init})
        )
        assert any("pkg._version" in f.message for f in findings)

    def test_duplicate_export_is_flagged(self, tmp_path):
        init = INIT_FIXTURE.replace(
            "__all__ = ['__version__', 'thing']",
            "__all__ = ['__version__', 'thing', 'thing']",
        )
        findings = self.run(
            tmp_path, self.fixture(**{"src/pkg/__init__.py": init})
        )
        assert any("twice" in f.message for f in findings)

    def test_live_export_surface_is_in_sync(self):
        assert list(ExportSync().check_project(REPO_ROOT)) == []


@pytest.mark.parametrize("checker_cls", [NoGlobalRng, NoWallclock,
                                         NoUnorderedIteration])
def test_module_rules_carry_scope_and_description(checker_cls):
    checker = checker_cls()
    assert checker.rule and checker.description
    assert checker.scope.include
