"""Shared fixtures and helpers for the whole test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.model import ClassLadder, SupplierOffer
from repro.simulation.config import SimulationConfig


@pytest.fixture
def ladder() -> ClassLadder:
    """The paper's four-class bandwidth ladder."""
    return ClassLadder(4)


@pytest.fixture
def rng() -> random.Random:
    """A seeded RNG for deterministic randomized tests."""
    return random.Random(12345)


def offers_from_classes(classes, ladder=None) -> list[SupplierOffer]:
    """Build supplier offers with ids 1..n from a list of class indices."""
    ladder = ladder or ClassLadder(4)
    return [
        SupplierOffer(peer_id=i + 1, peer_class=c, units=ladder.offer_units(c))
        for i, c in enumerate(classes)
    ]


def random_feasible_classes(rng: random.Random, ladder: ClassLadder) -> list[int]:
    """Random multiset of classes whose offers sum to exactly R0.

    Draws greedily: while deficit remains, pick a random class whose offer
    still fits (always possible on the power-of-two ladder).
    """
    deficit = ladder.full_rate_units
    classes: list[int] = []
    while deficit > 0:
        feasible = [c for c in ladder.classes if ladder.offer_units(c) <= deficit]
        chosen = rng.choice(feasible)
        classes.append(chosen)
        deficit -= ladder.offer_units(chosen)
    return classes


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A fast-to-run configuration exercising all four classes."""
    return SimulationConfig(
        seed_suppliers={1: 4},
        requesting_peers={1: 30, 2: 30, 3: 120, 4: 120},
        horizon_seconds=144 * 3600.0,
    )
