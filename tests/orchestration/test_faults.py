"""Fault-injection tests: SIGKILLed workers, lease expiry, contention.

These tests exercise the crash-safety contract with *real* worker
subprocesses (see :mod:`tests.orchestration.faults`): a killed worker's
claims expire and a resumed run completes the grid without recomputing
finished specs, producing a result set bit-identical (up to wall time)
to the serial oracle; concurrent workers over one store execute every
spec exactly once.
"""

import time

import pytest

import repro.orchestration.batch as batch
from repro.orchestration.shard import store_status
from repro.orchestration.store import ResultStore
from repro.orchestration.study import Study

from faults import (
    drain,
    executed_hashes,
    sigkill,
    spawn_worker,
    tiny_study_params,
    wait_for,
)

SEEDS = 4


def tiny_study():
    """The subprocess workers' grid, rebuilt fresh (builders mutate)."""
    return Study.from_scenario("quickstart", scale=0.02).seeds(SEEDS)


@pytest.fixture(scope="module")
def oracle_fingerprints():
    """Serial in-process execution — the byte-equality oracle."""
    return [record.fingerprint() for record in tiny_study().run()]


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.time() + timeout
    while not predicate():
        if time.time() > deadline:
            raise TimeoutError("condition never became true")
        time.sleep(interval)


class TestCrashRecovery:
    def test_sigkilled_holder_expires_and_resume_completes(
        self, tmp_path, monkeypatch, oracle_fingerprints
    ):
        store = ResultStore(tmp_path / "store")
        # Pre-seed one finished spec so "no recomputation" is observable.
        first_spec = tiny_study().specs()[0]
        Study.from_config(first_spec.config).run(store=store)
        assert len(store) == 1

        worker = spawn_worker(tiny_study_params(
            store.root, owner="doomed", mode="hold", seeds=SEEDS, lease=1.0
        ))
        try:
            wait_for(store.root / "ready-doomed")
            sigkill(worker)
        finally:
            if worker.poll() is None:
                worker.kill()
        # The kill leaves live claims behind; they must surface as
        # orphaned once the lease lapses (the pre-seeded spec has a
        # record, so it never counts as orphaned).
        wait_until(lambda: store_status(store).orphaned == SEEDS - 1)
        assert store_status(store).claimed == 0

        executed = []
        original = batch.run_simulation

        def counting(config):
            executed.append(config.master_seed)
            return original(config)

        monkeypatch.setattr(batch, "run_simulation", counting)
        resumed = tiny_study().run(store=store, resume=True, owner="medic")
        assert [r.fingerprint() for r in resumed] == oracle_fingerprints
        # Only the orphaned specs were recomputed, never the cached one.
        assert len(executed) == SEEDS - 1
        assert first_spec.config.master_seed not in executed
        status = store_status(store, tiny_study())
        assert (status.done, status.claimed, status.orphaned, status.pending) \
            == (SEEDS, 0, 0, 0)

    def test_worker_killed_mid_execution_loses_nothing(
        self, tmp_path, monkeypatch, oracle_fingerprints
    ):
        store = ResultStore(tmp_path / "store")
        params = tiny_study_params(
            store.root, owner="victim", mode="run", seeds=SEEDS, lease=1.0
        )
        worker = spawn_worker(params)
        log = store.root / "exec-log-victim.txt"
        try:
            # Kill while the worker is actually executing the grid: at
            # least one spec done, the rest in flight or unclaimed.
            wait_for(log)
            sigkill(worker)
        finally:
            if worker.poll() is None:
                worker.kill()
        survived = executed_hashes(log)
        assert survived  # the log marker implied at least one completion
        # Wait out any lease the victim still held, then resume.
        wait_until(lambda: store_status(store).claimed == 0)

        executed = []
        original = batch.run_simulation

        def counting(config):
            executed.append(config)
            return original(config)

        monkeypatch.setattr(batch, "run_simulation", counting)
        resumed = tiny_study().run(store=store, resume=True, owner="medic")
        assert [r.fingerprint() for r in resumed] == oracle_fingerprints
        # Specs the victim completed (logged => stored) were not rerun.
        spec_hash_by_config = {
            spec.spec_hash: spec.config for spec in tiny_study().specs()
        }
        recomputed = {
            spec_hash for spec_hash, config in spec_hash_by_config.items()
            if config in executed
        }
        assert recomputed.isdisjoint(survived)


class TestClaimContention:
    def test_two_workers_execute_every_spec_exactly_once(
        self, tmp_path, oracle_fingerprints
    ):
        store = ResultStore(tmp_path / "store")
        barrier = tmp_path / "start"
        workers = [
            spawn_worker(tiny_study_params(
                store.root, owner=owner, mode="run", seeds=SEEDS,
                lease=60.0, start_barrier=barrier,
            ))
            for owner in ("alpha", "beta")
        ]
        try:
            barrier.write_text("", encoding="utf-8")
            for worker in workers:
                drain(worker)
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()
        logs = [
            executed_hashes(store.root / f"exec-log-{owner}.txt")
            for owner in ("alpha", "beta")
        ]
        combined = logs[0] + logs[1]
        expected = {spec.spec_hash for spec in tiny_study().specs()}
        # No spec executed twice, none dropped.
        assert len(combined) == len(set(combined))
        assert set(combined) == expected
        # And the cooperative result is byte-identical to the oracle.
        collected = tiny_study().collect(store)
        assert [r.fingerprint() for r in collected] == oracle_fingerprints
