"""Tests for the declarative Study builder and its result sets."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.orchestration.runspec import RunSpec, config_from_dict, config_to_dict
from repro.orchestration.store import ResultStore
from repro.orchestration.study import RunRecord, Study
from repro.simulation.config import SimulationConfig


def small_config(**overrides):
    defaults = dict(
        seed_suppliers={1: 4},
        requesting_peers={1: 5, 2: 5, 3: 20, 4: 20},
        arrival_pattern=1,
        master_seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


TINY_POPULATION = dict(
    seed_suppliers={1: 2},
    requesting_peers={1: 2, 2: 2, 3: 8, 4: 8},
)


class TestRunSpec:
    def test_hash_is_stable_and_content_sensitive(self):
        config = small_config()
        assert RunSpec(config).spec_hash == RunSpec(config).spec_hash
        changed = RunSpec(config.replace(master_seed=12))
        assert RunSpec(config).spec_hash != changed.spec_hash
        assert len(RunSpec(config).spec_hash) == 64

    def test_hash_ignores_provenance(self):
        config = small_config()
        plain = RunSpec(config)
        labeled = RunSpec(config, scenario="x", axes=(("protocol", "dac"),))
        assert plain.spec_hash == labeled.spec_hash

    def test_config_dict_round_trip(self):
        config = small_config(protocol="ndac", probe_candidates=4)
        assert config_from_dict(config_to_dict(config)) == config


class TestStudyExpansion:
    def test_grid_order_protocols_outer_seeds_inner(self):
        specs = (
            Study.from_config(small_config())
            .protocols("dac", "ndac")
            .seeds(2)
            .specs()
        )
        assert [(s.protocol, s.seed) for s in specs] == [
            ("dac", 11), ("dac", 12), ("ndac", 11), ("ndac", 12),
        ]

    def test_sweep_axis_values_recorded(self):
        specs = (
            Study.from_config(small_config())
            .sweep("probe_candidates", [4, 8])
            .specs()
        )
        assert [dict(s.axes)["probe_candidates"] for s in specs] == [4, 8]
        assert [s.config.probe_candidates for s in specs] == [4, 8]

    def test_scenario_axis(self):
        specs = (
            Study.from_scenarios(["paper_default", "flash_crowd"], scale=0.004)
            .specs()
        )
        assert [s.scenario for s in specs] == ["paper_default", "flash_crowd"]
        assert specs[1].config.arrival_pattern == 3

    def test_override_applies_before_axes(self):
        specs = (
            Study.from_scenario("paper_default", scale=0.1)
            .override(**TINY_POPULATION)
            .protocols("dac")
            .specs()
        )
        assert specs[0].config.requesting_peers == TINY_POPULATION["requesting_peers"]

    def test_explicit_seed_list(self):
        specs = Study.from_config(small_config()).seeds([3, 9]).specs()
        assert [s.seed for s in specs] == [3, 9]

    def test_seed_stride(self):
        specs = Study.from_config(small_config()).seeds(2, stride=10).specs()
        assert [s.seed for s in specs] == [11, 21]


class TestStudyValidation:
    def test_duplicate_protocols_rejected(self):
        with pytest.raises(ConfigurationError):
            Study.from_config(small_config()).protocols("dac", "dac")

    def test_duplicate_sweep_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Study.from_config(small_config()).sweep("probe_candidates", [4, 4])

    def test_unknown_sweep_parameter_lists_valid_fields(self):
        with pytest.raises(ConfigurationError) as excinfo:
            Study.from_config(small_config()).sweep("probe_cadidates", [4])
        assert "probe_candidates" in str(excinfo.value)
        assert "t_out_seconds" in str(excinfo.value)

    def test_master_seed_sweep_redirected_to_seeds(self):
        with pytest.raises(ConfigurationError):
            Study.from_config(small_config()).sweep("master_seed", [1, 2])

    def test_duplicate_axis_rejected(self):
        study = Study.from_config(small_config()).sweep("e_bkf", [1.0])
        with pytest.raises(ConfigurationError):
            study.sweep("e_bkf", [2.0])

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            Study.from_scenarios(["constant", "constant"])

    def test_zero_seeds_rejected(self):
        with pytest.raises(ValueError):
            Study.from_config(small_config()).seeds(0)

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            Study.from_config(small_config()).override(nonexistent_knob=9)


class TestStudyRun:
    def test_records_carry_live_results_and_provenance(self):
        result_set = Study.from_config(small_config()).protocols("dac").run()
        record = result_set[0]
        assert record.result is not None
        assert record.protocol == "dac"
        assert record.config == small_config()
        assert record.version.count(".") == 2
        assert record.spec_hash == RunSpec(small_config()).spec_hash

    def test_parallel_records_match_serial_up_to_wall_time(self):
        study = Study.from_config(small_config()).protocols("dac", "ndac")
        serial = study.run(jobs=1)
        parallel = study.run(jobs=2)
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in parallel
        ]

    def test_metrics_view_matches_live_collector(self):
        record = Study.from_config(small_config()).run()[0]
        live = record.result.metrics
        view = record.metrics
        assert view.final_capacity() == live.final_capacity()
        assert view.admitted == live.admitted
        assert (
            view.mean_rejections_before_admission()
            == live.mean_rejections_before_admission()
        )
        assert [
            (p.hour, p.value) for p in view.capacity_series
        ] == [(p.hour, p.value) for p in live.capacity_series]


class TestRunRecordRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        record = Study.from_config(small_config()).run()[0]
        rebuilt = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt.fingerprint() == record.fingerprint()
        assert rebuilt.config == record.config
        assert rebuilt.seed == record.seed
        assert rebuilt.scalars == record.scalars
        assert rebuilt.message_stats == record.message_stats
        assert rebuilt.wall_seconds == record.wall_seconds
        assert rebuilt.result is None

    def test_round_trip_restores_class_keys_as_ints(self):
        record = Study.from_config(small_config()).run()[0]
        rebuilt = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert sorted(rebuilt.metrics.admitted) == [1, 2, 3, 4]
        assert sorted(rebuilt.metrics.admission_rate_series) == [1, 2, 3, 4]

    def test_fingerprint_ignores_wall_time_only(self):
        record = Study.from_config(small_config()).run()[0]
        import dataclasses

        rewalled = dataclasses.replace(record, wall_seconds=1e9)
        assert rewalled.fingerprint() == record.fingerprint()
        reseeded = dataclasses.replace(
            record, config_data={**record.config_data, "master_seed": 0}
        )
        assert reseeded.fingerprint() != record.fingerprint()


class TestResultSetOperations:
    @pytest.fixture(scope="class")
    def result_set(self):
        return (
            Study.from_config(small_config())
            .protocols("dac", "ndac")
            .seeds(2)
            .run()
        )

    def test_filter_by_axis(self, result_set):
        dac = result_set.filter(protocol="dac")
        assert len(dac) == 2
        assert all(r.protocol == "dac" for r in dac)
        assert len(result_set.filter(protocol="dac", seed=12)) == 1

    def test_filter_by_predicate(self, result_set):
        odd = result_set.filter(lambda r: r.seed % 2 == 1)
        assert all(r.seed % 2 == 1 for r in odd)

    def test_aggregate_collapses_seeds(self, result_set):
        aggregates = result_set.aggregate("final_capacity")
        assert len(aggregates) == 2
        for key, aggregate in aggregates.items():
            assert len(aggregate.samples) == 2
            assert not math.isnan(aggregate.mean)
            assert "±" in str(aggregate)

    def test_aggregate_with_callable_and_by(self, result_set):
        aggregates = result_set.aggregate(
            lambda r: r.metrics.mean_rejections_before_admission()[4],
            by=["protocol"],
        )
        assert set(aggregates) == {
            (("protocol", "dac"),), (("protocol", "ndac"),),
        }

    def test_to_rows_flat_and_labeled(self, result_set):
        rows = result_set.to_rows()
        assert len(rows) == 4
        row = rows[0]
        assert row["protocol"] == "dac"
        assert "final_capacity" in row
        assert "rejections_class_4" in row
        assert "admission_rate_class_1" in row

    def test_to_json_schema(self, result_set, tmp_path):
        path = tmp_path / "out.json"
        text = result_set.to_json(path)
        payload = json.loads(text)
        assert payload["schema"] == "repro.study.v1"
        assert payload["count"] == 4
        assert len(payload["records"]) == 4
        assert path.read_text().strip() == text.strip()

    def test_to_csv_has_header_and_rows(self, result_set, tmp_path):
        path = tmp_path / "out.csv"
        text = result_set.to_csv(path)
        lines = text.strip().splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("spec_hash,scenario,protocol,seed")
        assert path.exists()


class TestAcceptanceGrid:
    """The issue's acceptance criterion, end to end."""

    def test_protocols_by_scenarios_by_seeds_with_cache(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "cache")
        study = (
            Study.from_scenarios(["paper_default", "flash_crowd"], scale=0.1)
            .override(**TINY_POPULATION)
            .protocols("dac", "ndac")
            .seeds(3)
        )
        first = study.run(jobs=2, store=store)
        assert len(first) == 12
        assert len(store) == 12

        json_path = tmp_path / "study.json"
        csv_path = tmp_path / "study.csv"
        first.to_json(json_path)
        first.to_csv(csv_path)
        assert json.loads(json_path.read_text())["count"] == 12
        assert len(csv_path.read_text().strip().splitlines()) == 13

        # Second invocation: served entirely from the store — zero
        # simulation calls — and bit-identical to the first records.
        import repro.orchestration.batch as batch

        def explode(config):
            raise AssertionError("cache miss: simulation executed")

        monkeypatch.setattr(batch, "run_simulation", explode)
        second = study.run(jobs=2, store=store)
        assert second.to_json() == first.to_json()
        assert all(record.result is None for record in second)
