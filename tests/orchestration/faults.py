"""Fault-injection helpers: real worker subprocesses you can SIGKILL.

The crash-safety contract of :mod:`repro.orchestration.shard` is about
*processes dying*, so these helpers spawn genuine ``sys.executable``
subprocesses running the real claim-and-execute path against a shared
store, with hooks to freeze them at precise points (so a SIGKILL lands
deterministically mid-run) and to log every executed spec (so tests can
assert exactly-once execution).

The worker body is a generated script, parameterized by a JSON blob, so
subprocesses need nothing importable beyond ``repro`` itself.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

#: the subprocess body; parameters arrive as one JSON argv entry
_WORKER_SCRIPT = """
import json, sys, time
from pathlib import Path

params = json.loads(sys.argv[1])
from repro.orchestration.shard import ClaimRegistry, shard_run
from repro.orchestration.store import ResultStore
from repro.orchestration.study import RunRecord, Study
from repro.orchestration.batch import run_batch

study = Study.from_scenario(
    params["scenario"], scale=params["scale"]
).seeds(params["seeds"])
store = ResultStore(params["store"])

def touch(name):
    Path(params["store"], name).write_text("", encoding="utf-8")

if params["mode"] == "hold":
    # Claim every spec, signal readiness, then freeze: the parent
    # SIGKILLs us while the leases are live, exactly as an OOM kill
    # would land on a worker mid-simulation.
    claims = ClaimRegistry.for_store(
        store, owner=params["owner"], lease_seconds=params["lease"]
    )
    for spec in study.specs():
        claims.try_claim(spec.spec_hash)
    touch(f"ready-{params['owner']}")
    time.sleep(600)
elif params["mode"] == "run":
    # The real cooperative path: claim-batch 1 so concurrent workers
    # interleave spec by spec instead of one grabbing the whole grid.
    if params.get("start_barrier"):
        deadline = time.time() + 30
        while not Path(params["start_barrier"]).exists():
            if time.time() > deadline:
                raise SystemExit("start barrier never appeared")
            time.sleep(0.005)
    report = shard_run(
        study, store,
        owner=params["owner"],
        lease_seconds=params["lease"],
        claim_batch=1,
        executed_log=params["executed_log"],
    )
    touch(f"done-{params['owner']}")
else:
    raise SystemExit(f"unknown mode {params['mode']!r}")
"""


def tiny_study_params(
    store: Path,
    owner: str,
    mode: str = "run",
    seeds: int = 4,
    lease: float = 60.0,
    start_barrier: Path | None = None,
) -> dict:
    """Parameter blob for a small (~0.2 s/spec) quickstart-grid worker."""
    return {
        "scenario": "quickstart",
        "scale": 0.02,
        "seeds": seeds,
        "store": str(store),
        "owner": owner,
        "mode": mode,
        "lease": lease,
        "executed_log": str(store / f"exec-log-{owner}.txt"),
        "start_barrier": str(start_barrier) if start_barrier else None,
    }


def spawn_worker(params: dict) -> subprocess.Popen:
    """Launch one real worker subprocess against the shared store."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH") else str(SRC)
    )
    return subprocess.Popen(
        [sys.executable, "-c", _WORKER_SCRIPT, json.dumps(params)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def sigkill(worker: subprocess.Popen) -> None:
    """SIGKILL a worker — no cleanup handlers run, like a real crash."""
    worker.send_signal(signal.SIGKILL)
    worker.wait(timeout=30)


def wait_for(path: Path, timeout: float = 30.0) -> None:
    """Block until a marker file appears (worker-side progress signals)."""
    deadline = time.time() + timeout
    while not path.exists():
        if time.time() > deadline:
            raise TimeoutError(f"marker {path} never appeared")
        time.sleep(0.01)


def drain(worker: subprocess.Popen, timeout: float = 120.0) -> str:
    """Wait for a worker to exit cleanly; returns stderr for diagnostics."""
    _, stderr = worker.communicate(timeout=timeout)
    text = stderr.decode(errors="replace")
    assert worker.returncode == 0, (
        f"worker exited {worker.returncode}:\n{text}"
    )
    return text


def executed_hashes(log: Path) -> list[str]:
    """Spec hashes from an executed-spec log, in append order."""
    if not log.exists():
        return []
    return [
        line.split()[1]
        for line in log.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
