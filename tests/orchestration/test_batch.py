"""Tests for the batch executor and the ``jobs`` plumbing above it."""

import json

import pytest

from repro.analysis.replication import replicate
from repro.errors import ConfigurationError
from repro.orchestration import run_batch
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import (
    compare_protocols,
    run_simulation,
    sweep_parameter,
)


def small_config(**overrides):
    defaults = dict(
        seed_suppliers={1: 4},
        requesting_peers={1: 5, 2: 5, 3: 20, 4: 20},
        arrival_pattern=1,
        master_seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def fingerprint(results):
    """Order-sensitive, NaN-safe digest of a result list."""
    return json.dumps(
        [
            (r.config.master_seed, r.config.protocol, r.metrics.to_dict())
            for r in results
        ],
        sort_keys=True,
    )


class TestRunBatch:
    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_batch([small_config()], jobs=0)

    def test_serial_matches_plain_loop(self):
        configs = [small_config(master_seed=s) for s in (1, 2, 3)]
        batch = run_batch(configs, jobs=1)
        loop = [run_simulation(c) for c in configs]
        assert fingerprint(batch) == fingerprint(loop)

    def test_parallel_matches_serial_in_order_and_content(self):
        configs = [small_config(master_seed=s) for s in (1, 2, 3)]
        serial = run_batch(configs, jobs=1)
        parallel = run_batch(configs, jobs=2)
        assert fingerprint(serial) == fingerprint(parallel)

    def test_results_keep_config_order(self):
        configs = [small_config(master_seed=s) for s in (9, 4, 7)]
        results = run_batch(configs, jobs=2)
        assert [r.config.master_seed for r in results] == [9, 4, 7]

    def test_chunked_dispatch_keeps_order_and_content(self):
        # More configs than workers exercises chunksize > 1 (derived from
        # len(configs) // workers); order and results must be unaffected.
        seeds = list(range(1, 8))
        configs = [small_config(master_seed=s) for s in seeds]
        serial = run_batch(configs, jobs=1)
        chunked = run_batch(configs, jobs=2)
        assert [r.config.master_seed for r in chunked] == seeds
        assert fingerprint(serial) == fingerprint(chunked)


class TestJobsPlumbing:
    def test_compare_protocols_parallel_parity(self):
        config = small_config()
        serial = compare_protocols(config, jobs=1)
        parallel = compare_protocols(config, jobs=2)
        assert list(serial) == list(parallel) == ["dac", "ndac"]
        assert fingerprint(serial.values()) == fingerprint(parallel.values())

    def test_sweep_parameter_parallel_parity(self):
        config = small_config()
        serial = sweep_parameter(config, "probe_candidates", [4, 8], jobs=1)
        parallel = sweep_parameter(config, "probe_candidates", [4, 8], jobs=2)
        assert list(serial) == list(parallel) == [4, 8]
        assert fingerprint(serial.values()) == fingerprint(parallel.values())

    def test_replicate_parallel_parity_and_seed_pairing(self):
        config = small_config()
        serial = replicate(config, replications=3, jobs=1)
        parallel = replicate(config, replications=3, jobs=2)
        assert serial.seeds == parallel.seeds == (11, 12, 13)
        assert fingerprint(serial.results) == fingerprint(parallel.results)


class TestShimValidation:
    """The legacy helpers no longer silently collapse duplicate grid keys."""

    def test_compare_rejects_duplicate_protocols(self):
        with pytest.raises(ConfigurationError):
            compare_protocols(small_config(), protocols=("dac", "dac"))

    def test_sweep_rejects_duplicate_values(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter(small_config(), "probe_candidates", [8, 8])

    def test_sweep_rejects_unknown_parameter_naming_valid_fields(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweep_parameter(small_config(), "probe_count", [4])
        message = str(excinfo.value)
        assert "probe_count" in message
        assert "probe_candidates" in message
        assert "e_bkf" in message
