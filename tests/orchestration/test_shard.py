"""Unit and integration tests for crash-safe sharded execution.

Covers the claim-lease state machine (with an injectable clock, so no
test sleeps), slice partitioning, the shard → merge → collect pipeline
against the serial oracle, the status census, and the batch executor's
failure labeling.
"""

import dataclasses
import os

import pytest

import repro.orchestration.batch as batch
from repro.errors import (
    BatchWorkerError,
    ClaimError,
    ConfigurationError,
    StoreMergeError,
)
from repro.orchestration.batch import run_batch
from repro.orchestration.shard import (
    ClaimRegistry,
    _slice_specs,
    merge_stores,
    shard_run,
    store_status,
)
from repro.orchestration.store import ResultStore
from repro.orchestration.study import Study
from repro.simulation.config import SimulationConfig


def small_config(**overrides):
    defaults = dict(
        seed_suppliers={1: 2},
        requesting_peers={1: 2, 2: 2, 3: 8, 4: 8},
        arrival_pattern=1,
        master_seed=31,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def small_study(seeds=4):
    return Study.from_config(small_config()).seeds(seeds)


class FakeClock:
    """A controllable wall clock for lease state-machine tests."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


HASH = "a" * 64


@pytest.fixture()
def registry_pair(tmp_path):
    """Two workers' views of one claim directory, sharing a fake clock."""
    clock = FakeClock()
    make = lambda owner: ClaimRegistry(  # noqa: E731
        tmp_path / "claims", owner=owner, lease_seconds=10.0, clock=clock
    )
    return make("alice"), make("bob"), clock


class TestClaimStateMachine:
    def test_fresh_claim_succeeds_once(self, registry_pair):
        alice, bob, _ = registry_pair
        assert alice.try_claim(HASH)
        assert not bob.try_claim(HASH)
        assert alice.holder(HASH) == "alice"

    def test_same_owner_reclaim_renews(self, registry_pair):
        alice, _, clock = registry_pair
        assert alice.try_claim(HASH)
        first_deadline = alice.get(HASH).deadline
        clock.advance(5.0)
        assert alice.try_claim(HASH)  # idempotent: renews, still held
        assert alice.get(HASH).deadline > first_deadline

    def test_expiry_makes_the_claim_reclaimable(self, registry_pair):
        alice, bob, clock = registry_pair
        assert alice.try_claim(HASH)
        clock.advance(9.9)
        assert not bob.try_claim(HASH)  # still leased
        clock.advance(0.2)  # past the 10 s lease
        assert alice.holder(HASH) is None
        assert bob.try_claim(HASH)
        assert bob.holder(HASH) == "bob"

    def test_complete_is_terminal(self, registry_pair):
        alice, bob, clock = registry_pair
        assert alice.try_claim(HASH)
        assert alice.complete(HASH)
        assert alice.get(HASH).state == "completed"
        clock.advance(100.0)  # completed markers never expire
        assert not bob.try_claim(HASH)
        assert not alice.try_claim(HASH)
        assert bob.holder(HASH) is None

    def test_full_cycle_claim_expire_reclaim_complete(self, registry_pair):
        alice, bob, clock = registry_pair
        assert alice.try_claim(HASH)  # claim
        clock.advance(11.0)  # expire
        assert bob.try_claim(HASH)  # reclaim
        assert bob.complete(HASH)  # complete
        # The original owner's late completion attempt is refused: the
        # marker already records bob's completion.
        assert not alice.complete(HASH)
        assert alice.get(HASH).owner == "bob"

    def test_late_complete_defers_to_live_reclaimer(self, registry_pair):
        alice, bob, clock = registry_pair
        assert alice.try_claim(HASH)
        clock.advance(11.0)
        assert bob.try_claim(HASH)
        # alice finishes her (now orphaned) computation late: she must
        # not stomp bob's live claim.
        assert not alice.complete(HASH)
        assert bob.holder(HASH) == "bob"

    def test_renew_requires_ownership(self, registry_pair):
        alice, bob, _ = registry_pair
        assert alice.try_claim(HASH)
        with pytest.raises(ClaimError):
            bob.renew(HASH)

    def test_release_drops_the_claim(self, registry_pair):
        alice, bob, _ = registry_pair
        assert alice.try_claim(HASH)
        alice.release(HASH)
        assert bob.try_claim(HASH)

    def test_release_requires_ownership(self, registry_pair):
        alice, bob, _ = registry_pair
        assert alice.try_claim(HASH)
        with pytest.raises(ClaimError):
            bob.release(HASH)

    def test_corrupt_claim_reads_as_unclaimed(self, registry_pair):
        alice, bob, _ = registry_pair
        assert alice.try_claim(HASH)
        alice.path_for(HASH).write_text("{not json", encoding="utf-8")
        assert bob.get(HASH) is None
        assert bob.try_claim(HASH)

    def test_lease_must_be_positive(self, tmp_path):
        with pytest.raises(ClaimError):
            ClaimRegistry(tmp_path, owner="x", lease_seconds=0.0)


class TestSlices:
    def test_slices_partition_the_spec_list(self):
        specs = small_study(seeds=5).specs()
        parts = [_slice_specs(specs, i, 2) for i in range(2)]
        assert [s.spec_hash for s in parts[0]] + \
            [s.spec_hash for s in parts[1]] != []
        recombined = sorted(
            s.spec_hash for part in parts for s in part
        )
        assert recombined == sorted(s.spec_hash for s in specs)
        assert len(parts[0]) == 3 and len(parts[1]) == 2

    def test_invalid_slices_rejected(self):
        specs = small_study().specs()
        with pytest.raises(ClaimError):
            _slice_specs(specs, 2, 2)
        with pytest.raises(ClaimError):
            _slice_specs(specs, 0, 0)


class TestShardMergeCollect:
    def test_two_shards_merge_to_the_serial_oracle(self, tmp_path):
        oracle = [r.fingerprint() for r in small_study().run()]
        stores = [ResultStore(tmp_path / name) for name in ("a", "b")]
        for index, store in enumerate(stores):
            report = shard_run(
                small_study(), store,
                owner=f"host{index}", slice_index=index, slice_count=2,
            )
            assert report.executed == 2
            assert report.cached == report.claimed_elsewhere == 0
        merged = ResultStore(tmp_path / "merged")
        report = merge_stores(merged, stores)
        assert report.copied == 4 and report.total == 4
        collected = small_study().collect(merged)
        assert [r.fingerprint() for r in collected] == oracle

    def test_shared_store_shards_cooperate(self, tmp_path):
        store = ResultStore(tmp_path / "shared")
        first = shard_run(small_study(), store, owner="w0")
        second = shard_run(small_study(), store, owner="w1")
        assert first.executed == 4
        assert second.executed == 0 and second.cached == 4
        assert len(store) == 4

    def test_live_foreign_claims_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "shared")
        specs = small_study().specs()
        claims = ClaimRegistry.for_store(store, owner="other")
        claims.try_claim(specs[0].spec_hash)
        report = shard_run(small_study(), store, owner="me")
        assert report.claimed_elsewhere == 1
        assert report.executed == len(specs) - 1

    def test_expired_claims_are_reclaimed(self, tmp_path):
        clock = FakeClock()
        store = ResultStore(tmp_path / "shared")
        specs = small_study().specs()
        dead = ClaimRegistry.for_store(
            store, owner="dead", lease_seconds=5.0, clock=clock
        )
        for spec in specs:
            dead.try_claim(spec.spec_hash)
        clock.advance(6.0)
        report = shard_run(
            small_study(), store, owner="medic", clock=clock,
            lease_seconds=5.0,
        )
        assert report.executed == len(specs)
        assert report.reclaimed == len(specs)

    def test_merge_is_idempotent(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        shard_run(small_study(seeds=2), source, owner="w")
        merged = ResultStore(tmp_path / "merged")
        merge_stores(merged, [source])
        before = {
            h: merged.path_for(h).read_bytes() for h in merged.spec_hashes()
        }
        report = merge_stores(merged, [source])
        assert report.copied == 0 and report.identical == 2
        after = {
            h: merged.path_for(h).read_bytes() for h in merged.spec_hashes()
        }
        assert before == after

    def test_merge_refuses_disagreeing_records(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        record = Study.from_config(small_config()).run(store=source)[0]
        tampered = ResultStore(tmp_path / "tampered")
        tampered.put(dataclasses.replace(
            record, scalars={**record.scalars, "final_capacity": -1.0}
        ))
        merged = ResultStore(tmp_path / "merged")
        merge_stores(merged, [source])
        with pytest.raises(StoreMergeError):
            merge_stores(merged, [tampered])

    def test_collect_raises_on_gaps_unless_allowed(self, tmp_path):
        store = ResultStore(tmp_path / "partial")
        shard_run(
            small_study(), store, owner="w", slice_index=0, slice_count=2
        )
        with pytest.raises(ConfigurationError):
            small_study().collect(store)
        partial = small_study().collect(store, allow_missing=True)
        assert len(partial) == 2

    def test_status_counts_all_states(self, tmp_path):
        clock = FakeClock()
        store = ResultStore(tmp_path / "store")
        specs = small_study().specs()
        # one done
        Study.from_config(specs[0].config).run(store=store)
        claims = ClaimRegistry.for_store(
            store, owner="w", lease_seconds=10.0, clock=clock
        )
        claims.try_claim(specs[1].spec_hash)  # one live claim
        stale = ClaimRegistry.for_store(
            store, owner="gone", lease_seconds=1.0, clock=clock
        )
        stale.try_claim(specs[2].spec_hash)
        clock.advance(2.0)  # ... which expires -> orphaned
        status = store_status(store, small_study(), clock=clock)
        assert status.done == 1
        assert status.claimed == 1
        assert status.orphaned == 1
        assert status.pending == 2  # the orphan plus the never-touched spec
        assert status.total_specs == 4
        assert "1 done" in status.summary()

    def test_resume_requires_a_store(self):
        with pytest.raises(ConfigurationError):
            small_study().run(resume=True)


class TestBatchFailureLabeling:
    def test_serial_failure_names_the_config(self, monkeypatch):
        configs = [small_config(master_seed=s) for s in (1, 2)]

        def explode(config):
            if config.master_seed == 2:
                raise RuntimeError("boom")
            return object()

        monkeypatch.setattr(batch, "run_simulation", explode)
        with pytest.raises(BatchWorkerError) as excinfo:
            run_batch(configs, labels=["first", "second"])
        assert excinfo.value.index == 1
        assert "second" in str(excinfo.value)
        assert "boom" in str(excinfo.value)

    def test_default_label_sketches_protocol_and_seed(self, monkeypatch):
        def explode(config):
            raise RuntimeError("boom")

        monkeypatch.setattr(batch, "run_simulation", explode)
        with pytest.raises(BatchWorkerError) as excinfo:
            run_batch([small_config(master_seed=7)])
        assert "seed=7" in str(excinfo.value)

    def test_retries_must_be_positive(self):
        with pytest.raises(ValueError):
            run_batch([small_config()], retries=0)


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="worker-death tests need fork workers"
)
class TestWorkerDeath:
    """Pool workers dying (os._exit — no exception, no cleanup).

    With the ``fork`` start method the children inherit the parent's
    monkeypatched ``batch.run_simulation``, so the kill switch can live
    in the test.
    """

    def test_pool_survives_a_worker_death(self, tmp_path, monkeypatch):
        configs = [small_config(master_seed=s) for s in (1, 2, 3, 4)]
        sentinel = tmp_path / "already-died"
        original = batch.run_simulation

        def die_once(config):
            if config.master_seed == 3 and not sentinel.exists():
                sentinel.write_text("", encoding="utf-8")
                os._exit(17)
            return original(config)

        monkeypatch.setattr(batch, "run_simulation", die_once)
        results = run_batch(configs, jobs=2)
        assert len(results) == len(configs)
        assert all(result is not None for result in results)
        assert sentinel.exists()  # the death actually happened

    def test_persistent_worker_death_names_the_culprit(self, monkeypatch):
        configs = [small_config(master_seed=s) for s in (1, 2, 3)]

        def always_die(config):
            if config.master_seed == 2:
                os._exit(17)
            return object()

        monkeypatch.setattr(batch, "run_simulation", always_die)
        with pytest.raises(BatchWorkerError) as excinfo:
            run_batch(configs, jobs=2, labels=["a", "culprit", "c"])
        assert excinfo.value.index == 1
        assert "culprit" in str(excinfo.value)
