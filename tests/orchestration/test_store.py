"""Tests for the on-disk result store (cache hit/miss semantics)."""

import dataclasses
import json

import pytest

import repro.orchestration.batch as batch
from repro.orchestration.store import ResultStore
from repro.orchestration.study import Study
from repro.simulation.config import SimulationConfig


def small_config(**overrides):
    defaults = dict(
        seed_suppliers={1: 2},
        requesting_peers={1: 2, 2: 2, 3: 8, 4: 8},
        arrival_pattern=1,
        master_seed=21,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestStoreBasics:
    def test_round_trip(self, store):
        record = Study.from_config(small_config()).run(store=store)[0]
        loaded = store.get(record.spec_hash)
        assert loaded is not None
        assert loaded.fingerprint() == record.fingerprint()
        assert loaded.wall_seconds == record.wall_seconds
        assert loaded.result is None

    def test_missing_hash_is_a_miss(self, store):
        assert store.get("0" * 64) is None
        assert "0" * 64 not in store

    def test_corrupt_file_is_a_miss(self, store):
        record = Study.from_config(small_config()).run(store=store)[0]
        store.path_for(record.spec_hash).write_text("{not json", encoding="utf-8")
        assert store.get(record.spec_hash) is None

    def test_malformed_record_payload_is_a_miss(self, store):
        # Valid JSON, valid schema tag, wrong inner types: still a miss.
        record = Study.from_config(small_config()).run(store=store)[0]
        path = store.path_for(record.spec_hash)
        payload = json.loads(path.read_text())
        payload["record"]["scalars"] = [1, 2]
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(record.spec_hash) is None

    def test_schema_mismatch_is_a_miss(self, store):
        record = Study.from_config(small_config()).run(store=store)[0]
        path = store.path_for(record.spec_hash)
        payload = json.loads(path.read_text())
        payload["store_schema"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(record.spec_hash) is None

    def test_version_mismatch_is_a_miss(self, store):
        record = Study.from_config(small_config()).run(store=store)[0]
        path = store.path_for(record.spec_hash)
        payload = json.loads(path.read_text())
        payload["record"]["version"] = "0.0.0"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(record.spec_hash) is None
        permissive = ResultStore(store.root, require_version=None)
        assert permissive.get(record.spec_hash) is not None

    def test_len_contains_clear(self, store):
        result_set = Study.from_config(small_config()).seeds(2).run(store=store)
        assert len(store) == 2
        assert all(record.spec_hash in store for record in result_set)
        assert store.spec_hashes() == sorted(
            record.spec_hash for record in result_set
        )
        assert store.clear() == 2
        assert len(store) == 0


class TestCacheSemantics:
    def test_second_run_is_simulation_free(self, store, monkeypatch):
        study = Study.from_config(small_config()).protocols("dac", "ndac")
        first = study.run(store=store)

        def explode(config):
            raise AssertionError("cache miss: simulation executed")

        monkeypatch.setattr(batch, "run_simulation", explode)
        second = study.run(store=store)
        assert [r.fingerprint() for r in second] == [
            r.fingerprint() for r in first
        ]

    def test_partial_hit_runs_only_the_gap(self, store):
        Study.from_config(small_config()).protocols("dac").run(store=store)
        assert len(store) == 1
        calls = []
        original = batch.run_simulation

        def counting(config):
            calls.append(config.protocol)
            return original(config)

        batch.run_simulation = counting
        try:
            Study.from_config(small_config()).protocols("dac", "ndac").run(
                store=store
            )
        finally:
            batch.run_simulation = original
        assert calls == ["ndac"]
        assert len(store) == 2

    def test_no_cache_bypasses_reads_but_still_writes(self, store):
        study = Study.from_config(small_config())
        study.run(store=store)
        calls = []
        original = batch.run_simulation

        def counting(config):
            calls.append(config.master_seed)
            return original(config)

        batch.run_simulation = counting
        try:
            result_set = study.run(store=store, cache=False)
        finally:
            batch.run_simulation = original
        assert calls == [21]
        assert result_set[0].result is not None

    def test_cached_record_rebinds_to_new_study_axes(self, store):
        Study.from_config(small_config()).run(store=store)
        result_set = (
            Study.from_config(small_config()).protocols("dac").run(store=store)
        )
        record = result_set[0]
        assert record.result is None  # served from cache
        assert record.axes == (("protocol", "dac"),)

    def test_identical_configs_share_cache_entries(self, store):
        config = small_config()
        Study.from_config(config).run(store=store)
        relabeled = dataclasses.replace(config)  # equal content, new object
        cached = Study.from_config(relabeled).run(store=store)[0]
        assert cached.result is None
