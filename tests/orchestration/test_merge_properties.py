"""Hypothesis properties of :func:`repro.orchestration.shard.merge_stores`.

The merge must be a *fold*: any partition of a study's records across
any number of stores, merged in any order — with agreeing duplicates
carrying different wall times — produces the same destination contents.
That is what makes multi-host sharding safe to coordinate loosely: the
merge step cannot depend on which host finished first.

Strategy note: plans place every record in at least one source store
(possibly several, with a distinct wall-time variant per copy), so every
draw is a valid sharded execution by construction.
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.orchestration.shard import merge_stores
from repro.orchestration.store import ResultStore
from repro.orchestration.study import Study
from repro.simulation.config import SimulationConfig

POOL_SIZE = 3
WALL_TIMES = (0.25, 1.0, 4.0)


@pytest.fixture(scope="module")
def record_pool():
    """A small grid of real records, executed once for the whole module."""
    config = SimulationConfig(
        seed_suppliers={1: 2},
        requesting_peers={1: 2, 2: 2, 3: 8, 4: 8},
        arrival_pattern=1,
        master_seed=31,
    )
    records = Study.from_config(config).seeds(POOL_SIZE).run()
    assert len(records) == POOL_SIZE
    return list(records)


@st.composite
def merge_plans(draw):
    """(store count, record placements, wall variants, merge order).

    ``placements[i]`` is the non-empty set of stores holding record
    ``i``; ``walls[i]`` maps each of those stores to a wall-time index,
    modelling the same deterministic result measured on hosts of
    different speeds.
    """
    n_stores = draw(st.integers(min_value=1, max_value=4))
    placements = [
        draw(st.sets(
            st.integers(min_value=0, max_value=n_stores - 1), min_size=1
        ))
        for _ in range(POOL_SIZE)
    ]
    walls = [
        {
            index: draw(st.integers(0, len(WALL_TIMES) - 1))
            for index in sorted(placement)
        }
        for placement in placements
    ]
    order = draw(st.permutations(range(n_stores)))
    return n_stores, placements, walls, order


def build_sources(root: Path, pool, n_stores, placements, walls):
    stores = [ResultStore(root / f"shard-{i}") for i in range(n_stores)]
    for record, placement, wall in zip(pool, placements, walls):
        for index in placement:
            stores[index].put(dataclasses.replace(
                record, wall_seconds=WALL_TIMES[wall[index]]
            ))
    return stores


def contents(store: ResultStore) -> dict[str, bytes]:
    return {
        spec_hash: store.path_for(spec_hash).read_bytes()
        for spec_hash in store.spec_hashes()
    }


class TestMergeProperties:
    @given(plan=merge_plans())
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes_over_source_order(self, record_pool, plan):
        n_stores, placements, walls, order = plan
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            sources = build_sources(
                root / "src", record_pool, n_stores, placements, walls
            )
            shuffled = ResultStore(root / "shuffled")
            for index in order:
                merge_stores(shuffled, [sources[index]])
            canonical = ResultStore(root / "canonical")
            merge_stores(canonical, sources)
            assert contents(shuffled) == contents(canonical)
            # Every record landed, and the winner among duplicates is
            # always the smallest wall time — order cannot matter.
            assert len(shuffled) == POOL_SIZE
            for record, wall in zip(record_pool, walls):
                merged = shuffled.get(record.spec_hash)
                assert merged is not None
                assert merged.wall_seconds == min(
                    WALL_TIMES[i] for i in wall.values()
                )

    @given(plan=merge_plans())
    @settings(max_examples=30, deadline=None)
    def test_merge_is_idempotent(self, record_pool, plan):
        n_stores, placements, walls, _ = plan
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            sources = build_sources(
                root / "src", record_pool, n_stores, placements, walls
            )
            merged = ResultStore(root / "merged")
            merge_stores(merged, sources)
            first = contents(merged)
            report = merge_stores(merged, sources)
            assert contents(merged) == first
            assert report.copied == report.replaced == 0
