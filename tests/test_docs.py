"""The documentation suite stays truthful: links, CLI refs, docstrings.

``repro.devtools.docscheck`` is the single source of the rules
(``scripts/check_docs.py`` is its CI shim, run next to the pdoc
API-reference build); these tests run the same checks in the tier-1
suite so a broken cross-reference fails before it ships, and pin that
the checker itself still detects each failure class.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = REPO_ROOT / "scripts"

sys.path.insert(0, str(SCRIPTS))

import check_docs  # noqa: E402


class TestRepositoryDocs:
    def test_docs_suite_passes_the_checker(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPTS / "check_docs.py"), str(REPO_ROOT)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr

    def test_expected_documents_exist(self):
        for name in ("README.md", "docs/ARCHITECTURE.md", "docs/EXPERIMENTS.md"):
            assert (REPO_ROOT / name).exists(), f"{name} is missing"

    def test_architecture_names_every_package(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for package in ("core", "streaming", "network", "protocols",
                        "simulation", "scenarios", "orchestration", "analysis"):
            assert f"{package}/" in text, f"ARCHITECTURE.md misses {package}/"
        # the PR seams and the lifecycle layer are called out
        for anchor in ("EventKernel", "MetricsPipeline", "Study",
                       "LifecycleDynamics", "lifecycle.py"):
            assert anchor in text

    def test_experiments_covers_every_cli_command_and_artifact(self):
        text = (REPO_ROOT / "docs" / "EXPERIMENTS.md").read_text()
        commands, _flags = check_docs.cli_vocabulary()
        for command in commands:
            assert f"`{command}`" in text, f"EXPERIMENTS.md misses {command!r}"
        for artifact in ("fig1", "fig4", "fig5", "fig6", "fig7",
                         "fig8a", "fig8b", "fig9", "table1"):
            assert artifact in text, f"EXPERIMENTS.md misses {artifact!r}"


class TestCheckerDetectsRot:
    """Each failure class still trips the checker (guards the guard)."""

    def write_readme(self, tmp_path, body: str) -> Path:
        (tmp_path / "README.md").write_text(body, encoding="utf-8")
        return tmp_path

    def test_broken_link_detected(self, tmp_path):
        root = self.write_readme(tmp_path, "[gone](docs/NOPE.md)\n")
        assert any("broken link" in p.message for p in check_docs.check_markdown(root))

    def test_missing_path_reference_detected(self, tmp_path):
        root = self.write_readme(tmp_path, "see `src/repro/not_there.py`\n")
        assert any(
            "does not exist" in p.message
            for p in check_docs.check_markdown(root)
        )

    def test_unimportable_dotted_reference_detected(self, tmp_path):
        root = self.write_readme(tmp_path, "see `repro.simulation.wormhole`\n")
        assert any(
            "does not import" in p.message
            for p in check_docs.check_markdown(root)
        )

    def test_resolvable_references_pass(self, tmp_path):
        root = self.write_readme(
            tmp_path,
            "see `repro.simulation.lifecycle` and `repro.orchestration.run_batch`\n",
        )
        assert check_docs.check_markdown(root) == []

    def test_unknown_flag_detected(self, tmp_path):
        root = self.write_readme(
            tmp_path, "```bash\npython -m repro run --warp 9\n```\n"
        )
        assert any(
            "--warp" in p.message for p in check_docs.check_cli_references(root)
        )

    def test_unknown_command_detected(self, tmp_path):
        root = self.write_readme(
            tmp_path, "```bash\npython -m repro teleport\n```\n"
        )
        assert any(
            "teleport" in p.message for p in check_docs.check_cli_references(root)
        )

    def test_prose_before_the_command_marker_is_ignored(self, tmp_path):
        root = self.write_readme(
            tmp_path,
            "the repro toolkit: python -m repro run --scenario quickstart\n",
        )
        assert check_docs.check_cli_references(root) == []

    def test_continuation_lines_are_joined(self, tmp_path):
        root = self.write_readme(
            tmp_path,
            "```bash\npython -m repro study --scale 0.02 \\\n"
            "    --bogus-flag 1\n```\n",
        )
        assert any(
            "--bogus-flag" in p.message
            for p in check_docs.check_cli_references(root)
        )

    def test_api_docstrings_are_complete(self):
        assert check_docs.check_api_docstrings() == []


@pytest.mark.parametrize("doc", ["docs/ARCHITECTURE.md", "docs/EXPERIMENTS.md"])
def test_docs_mention_the_lifecycle_extension(doc):
    """The PR-5 documentation actually documents PR 5."""
    text = (REPO_ROOT / doc).read_text()
    assert "lifecycle" in text
    assert "flash_departure" in text
