"""Unit tests for the slot-by-slot playback simulation."""

import pytest

from repro.core.assignment import contiguous_assignment, ots_assignment
from repro.core.schedule import min_start_delay_slots
from repro.errors import SchedulingError
from repro.streaming.media import MediaFile
from repro.streaming.playback import (
    empirical_min_delay_slots,
    simulate_playback,
)
from tests.conftest import offers_from_classes, random_feasible_classes


class TestSimulatePlayback:
    def test_continuous_at_analytic_delay(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)
        result = simulate_playback(assignment, start_delay_slots=4)
        assert result.continuous
        assert result.stalled_segments == ()

    def test_stalls_below_analytic_delay(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)
        result = simulate_playback(assignment, start_delay_slots=3)
        assert not result.continuous
        assert len(result.stalled_segments) > 0

    def test_buffered_at_start_counts_early_arrivals(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 1], ladder), ladder)
        result = simulate_playback(assignment, start_delay_slots=2, num_segments=2)
        assert result.buffered_at_start == 2  # both arrive exactly at slot 2

    def test_media_sets_default_horizon(self, ladder):
        media = MediaFile(show_seconds=200.0, segment_seconds=5.0)
        assignment = ots_assignment(offers_from_classes([1, 1], ladder), ladder)
        result = simulate_playback(assignment, 2, media=media)
        assert len(result.arrival_slots) == media.num_segments

    def test_negative_delay_rejected(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 1], ladder), ladder)
        with pytest.raises(SchedulingError):
            simulate_playback(assignment, start_delay_slots=-1)


class TestEmpiricalMinDelay:
    def test_matches_analytic_on_paper_example(self, ladder):
        offers = offers_from_classes([1, 2, 3, 3], ladder)
        for algorithm in (ots_assignment, contiguous_assignment):
            assignment = algorithm(offers, ladder)
            assert empirical_min_delay_slots(assignment) == min_start_delay_slots(
                assignment
            )

    def test_matches_analytic_on_random_sets(self, ladder, rng):
        for _ in range(20):
            classes = random_feasible_classes(rng, ladder)
            assignment = ots_assignment(offers_from_classes(classes, ladder), ladder)
            assert empirical_min_delay_slots(assignment) == min_start_delay_slots(
                assignment
            )
