"""Unit tests for receiver-buffer occupancy accounting."""

import pytest

from repro.core.assignment import contiguous_assignment, ots_assignment
from repro.core.schedule import min_start_delay_slots
from repro.errors import SchedulingError
from repro.streaming.buffer import occupancy_profile
from repro.streaming.media import MediaFile
from tests.conftest import offers_from_classes


class TestOccupancyProfile:
    def test_peak_positive_for_any_real_schedule(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)
        stats = occupancy_profile(assignment, start_delay_slots=4)
        assert stats.peak_segments >= 1
        assert 0 <= stats.peak_slot < len(stats.profile)
        assert stats.mean_segments > 0

    def test_profile_conserves_segments(self, ladder):
        # Sum over the profile equals the total segment-slots of residency.
        assignment = ots_assignment(offers_from_classes([1, 1], ladder), ladder)
        stats = occupancy_profile(assignment, start_delay_slots=2, num_segments=4)
        assert sum(stats.profile) == sum(
            # each segment resides from its arrival to its playback end
            max(0, (2 + s + 1) - arrival)
            for s, arrival in enumerate(
                [2, 2, 4, 4]  # arrivals of segments 0..3 for two class-1 peers
            )
        )

    def test_larger_delay_increases_peak(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)
        minimum = min_start_delay_slots(assignment)
        tight = occupancy_profile(assignment, minimum)
        loose = occupancy_profile(assignment, minimum + 8)
        assert loose.peak_segments >= tight.peak_segments

    def test_peak_bytes_scales_with_segment_size(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 1], ladder), ladder)
        stats = occupancy_profile(assignment, 2)
        small = MediaFile(playback_bps=1e6)
        large = MediaFile(playback_bps=2e6)
        assert stats.peak_bytes(large) == 2 * stats.peak_bytes(small)

    def test_negative_delay_rejected(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 1], ladder), ladder)
        with pytest.raises(SchedulingError):
            occupancy_profile(assignment, -1)
