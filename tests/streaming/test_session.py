"""Unit tests for multi-supplier streaming sessions."""

import pytest

from repro.core.assignment import contiguous_assignment
from repro.core.model import ClassLadder
from repro.errors import InfeasibleSessionError
from repro.streaming.media import MediaFile
from repro.streaming.session import plan_session
from tests.conftest import offers_from_classes


@pytest.fixture
def media():
    return MediaFile()


class TestPlanSession:
    def test_defaults_to_ots_with_theorem1_delay(self, ladder, media):
        offers = offers_from_classes([1, 2, 3, 3], ladder)
        session = plan_session(99, 2, offers, media, ladder)
        assert session.num_suppliers == 4
        assert session.buffering_delay_slots == 4
        assert session.buffering_delay_seconds == 4 * media.segment_seconds

    def test_transfer_takes_the_show_time(self, ladder, media):
        offers = offers_from_classes([1, 1], ladder)
        session = plan_session(1, 1, offers, media, ladder)
        assert session.transfer_seconds == media.show_seconds
        assert session.playback_end_seconds == pytest.approx(
            media.show_seconds + 2 * media.segment_seconds
        )

    def test_explicit_baseline_assignment(self, ladder, media):
        offers = offers_from_classes([1, 2, 3, 3], ladder)
        assignment = contiguous_assignment(offers, ladder)
        session = plan_session(1, 1, offers, media, ladder, assignment=assignment)
        assert session.buffering_delay_slots == 5  # Assignment I of Figure 1

    def test_infeasible_offer_set_rejected(self, ladder, media):
        with pytest.raises(InfeasibleSessionError):
            plan_session(1, 1, offers_from_classes([1, 2], ladder), media, ladder)

    def test_supplier_busy_time_equals_show_time(self, ladder, media):
        offers = offers_from_classes([2, 2, 2, 2], ladder)
        session = plan_session(1, 1, offers, media, ladder)
        for index in range(session.num_suppliers):
            assert session.supplier_busy_seconds(index) == media.show_seconds

    def test_supplier_index_bounds_checked(self, ladder, media):
        session = plan_session(
            1, 1, offers_from_classes([1, 1], ladder), media, ladder
        )
        with pytest.raises(InfeasibleSessionError):
            session.supplier_busy_seconds(2)

    def test_schedule_reachable_from_session(self, ladder, media):
        session = plan_session(
            1, 1, offers_from_classes([1, 2, 2], ladder), media, ladder
        )
        schedule = session.schedule()
        assert schedule.period_len == session.assignment.period_len

    def test_describe_mentions_delay_and_suppliers(self, ladder, media):
        session = plan_session(
            7, 3, offers_from_classes([1, 2, 2], ladder), media, ladder
        )
        text = session.describe()
        assert "peer 7" in text and "buffering delay: 3 slots" in text
