"""Unit tests for the CBR media-file model."""

import pytest

from repro.errors import ConfigurationError
from repro.streaming.media import MediaFile


class TestGeometry:
    def test_paper_defaults(self):
        media = MediaFile()
        assert media.show_seconds == 3600.0
        assert media.num_segments == 720  # 60 min / 5 s

    def test_num_segments_exact_division_required(self):
        with pytest.raises(ConfigurationError):
            MediaFile(show_seconds=100.0, segment_seconds=7.0)

    def test_segment_bits_is_rate_times_slot(self):
        media = MediaFile(playback_bps=2_000_000.0, segment_seconds=4.0,
                          show_seconds=3600.0)
        assert media.segment_bits == 8_000_000.0
        assert media.total_bits == media.segment_bits * media.num_segments

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MediaFile(show_seconds=0.0)
        with pytest.raises(ConfigurationError):
            MediaFile(segment_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            MediaFile(playback_bps=0.0)


class TestConversions:
    def test_slots_seconds_roundtrip(self):
        media = MediaFile(segment_seconds=5.0)
        assert media.slots_to_seconds(4) == 20.0
        assert media.seconds_to_slots(20.0) == 4.0

    def test_playback_deadline(self):
        media = MediaFile(segment_seconds=5.0)
        # playback starts at slot 4; segment 10 plays at slot 14 = 70 s
        assert media.playback_deadline_seconds(10, 4) == 70.0
