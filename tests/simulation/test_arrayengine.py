"""Array-engine parity suite: struct-of-arrays engine vs. the object oracle.

The array engine's one promise is *bit-identical results*: same metrics
payload, same event count, same message statistics, same trace — for any
configuration both engines accept.  These tests pin that promise on
every builtin scenario, on randomized property-style configurations, and
on the targeted seams (vectorized arrivals, session-slot recycling,
lifecycle recovery) where an off-by-one would hide.
"""

import json
import random

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import all_scenarios, get_scenario
from repro.simulation.arrayengine import LEVEL_POLICIES
from repro.simulation.arrivals import generate_arrival_times, make_pattern
from repro.simulation.arraystate import (
    VECTORIZABLE_PATTERNS,
    SessionTable,
    vectorized_arrival_times,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.lifecycle import RECOVERY_MODES
from repro.simulation.runner import run_simulation
from repro.simulation.trace import TraceRecorder


def assert_engine_parity(config, *, trace: bool = False) -> None:
    """Run ``config`` on both engines; assert bit-identical outputs.

    Metrics are compared as canonical JSON text so NaN-valued means stay
    comparable (NaN != NaN under ``==``).
    """
    object_trace = TraceRecorder() if trace else None
    array_trace = TraceRecorder() if trace else None
    reference = run_simulation(config.replace(engine="object"), trace=object_trace)
    result = run_simulation(config.replace(engine="array"), trace=array_trace)
    assert json.dumps(result.metrics.to_dict(), sort_keys=True) == json.dumps(
        reference.metrics.to_dict(), sort_keys=True
    )
    assert result.events_processed == reference.events_processed
    assert result.message_stats == reference.message_stats
    if trace:
        assert array_trace.events == object_trace.events


def test_all_builtin_scenarios_parity():
    """Every builtin workload — churn, lifecycle, chord, loss — agrees."""
    for scenario in all_scenarios():
        config = scenario.build_config(scale=0.004)
        assert_engine_parity(config)


@pytest.mark.parametrize("recovery", RECOVERY_MODES)
def test_lifecycle_recovery_parity(recovery):
    """Mid-stream failure and every recovery mode replay identically."""
    config = get_scenario("flash_departure").build_config(
        scale=0.02, lifecycle_recovery=recovery
    )
    assert_engine_parity(config)


@pytest.mark.parametrize("scenario_name", ["quickstart", "flash_departure"])
def test_trace_parity(scenario_name):
    """The array engine emits the identical trace event stream."""
    config = get_scenario(scenario_name).build_config(scale=0.008)
    assert_engine_parity(config, trace=True)


def test_randomized_config_parity():
    """Property-style sweep: random small configs agree on both engines.

    Eight seeded draws across the dimensions that steer engine control
    flow: arrival pattern, level-representable protocol, lookup service,
    probe loss, churn, lifecycle model + recovery, message accounting and
    stochastic arrivals.
    """
    rng = random.Random(20020701)
    protocols = sorted(LEVEL_POLICIES)
    for attempt in range(8):
        lifecycle = rng.choice(("none", "none", "sessions", "flash", "diurnal"))
        churn = lifecycle == "none" and rng.random() < 0.5
        config = SimulationConfig(
            seed_suppliers={1: rng.randint(2, 6)},
            requesting_peers={
                peer_class: rng.randint(10, 60) for peer_class in (1, 2, 3, 4)
            },
            protocol=rng.choice(protocols),
            arrival_pattern=rng.randint(1, 4),
            deterministic_arrivals=rng.random() < 0.75,
            lookup=rng.choice(("directory", "chord")),
            down_probability=rng.choice((0.0, 0.3)),
            track_messages=rng.random() < 0.5,
            supplier_mean_online_seconds=(
                8 * 3600.0 if churn else None
            ),
            suppliers_rejoin=rng.random() < 0.5,
            lifecycle=lifecycle,
            lifecycle_recovery=rng.choice(RECOVERY_MODES),
            lifecycle_rejoin=rng.random() < 0.5,
            master_seed=rng.randint(1, 2**31),
        )
        assert_engine_parity(config)


def test_linear_elevation_is_not_level_representable():
    """The one non-level-representable variant is rejected, not mis-run."""
    config = SimulationConfig(
        protocol="dac-linear-elevation",
        seed_suppliers={1: 2},
        requesting_peers={1: 5, 2: 5, 3: 5, 4: 5},
        engine="array",
    )
    with pytest.raises(ConfigurationError, match="dac-linear-elevation"):
        run_simulation(config)
    # the object engine runs it fine
    run_simulation(config.replace(engine="object"))


def test_unknown_engine_rejected():
    with pytest.raises(ConfigurationError, match="engine"):
        SimulationConfig(engine="simd")


class TestVectorizedArrivals:
    @pytest.mark.parametrize("pattern_id", VECTORIZABLE_PATTERNS)
    @pytest.mark.parametrize("window", [3600.0, 77777.5, 259200.0])
    def test_bit_identical_to_scalar_quantiles(self, pattern_id, window):
        for total in (1, 7, 250):
            pattern = make_pattern(pattern_id, window)
            scalar = generate_arrival_times(pattern, total, deterministic=True)
            vector = vectorized_arrival_times(pattern_id, window, total)
            assert vector == scalar  # exact float equality, on purpose

    def test_triangle_pattern_has_no_vectorized_path(self):
        # pattern 2's cumulative uses ``**``, whose libm path differs in
        # the last ulp between numpy and CPython — so it must refuse
        assert 2 not in VECTORIZABLE_PATTERNS
        with pytest.raises(ConfigurationError, match="pattern 2"):
            vectorized_arrival_times(2, 3600.0, 10)

    def test_empty_population(self):
        assert vectorized_arrival_times(1, 3600.0, 0) == []

    @pytest.mark.parametrize("pattern_id", [1, 2, 3, 4])
    def test_deterministic_times_closure_matches_quantile(self, pattern_id):
        # the inlined-bisection fast path every pattern factory ships
        # must equal the generic quantile bisection bit-for-bit
        pattern = make_pattern(pattern_id, 259200.0)
        for total in (1, 7, 100):
            fast = pattern.deterministic_times(total)
            slow = [pattern.quantile((i + 0.5) / total) for i in range(total)]
            assert fast == slow


class TestSessionTable:
    def test_alloc_grows_then_recycles_lifo(self):
        table = SessionTable()
        first = table.alloc(10, (1, 2), 5.0, 60.0)
        second = table.alloc(11, (3,), 6.0, 60.0)
        third = table.alloc(12, (4,), 7.0, 60.0)
        assert (first, second, third) == (0, 1, 2)
        table.release(first)
        table.release(third)
        # LIFO: most recently freed slot is handed out first
        assert table.alloc(20, (5,), 8.0, 30.0) == third
        assert table.alloc(21, (6,), 9.0, 30.0) == first
        # high-water mark: no column ever shrank
        assert len(table) == 3
        assert table.free_slots == []

    def test_release_bumps_generation_and_drops_suppliers(self):
        table = SessionTable()
        slot = table.alloc(7, (1, 2, 3), 0.0, 120.0)
        generation = table.generation[slot]
        table.release(slot)
        assert table.generation[slot] == generation + 1
        assert table.suppliers[slot] == ()
        # a recycled slot starts with fresh bookkeeping
        table.interruptions[slot] = 99  # stale garbage from the old tenant
        table.alloc(8, (4,), 1.0, 60.0)
        assert table.interruptions[slot] == 0
        assert table.interrupted_at[slot] is None
        assert table.recovery_attempts[slot] == 0
        assert table.stall_seconds[slot] == 0.0

    def test_generation_distinguishes_stale_events(self):
        # the engine's (slot, generation) pairs stand in for cancelling
        # the object engine's end-event handles: after release + realloc,
        # an event carrying the old generation must not match
        table = SessionTable()
        slot = table.alloc(1, (2,), 0.0, 60.0)
        stale = (slot, table.generation[slot])
        table.release(slot)
        table.alloc(3, (4,), 1.0, 60.0)
        assert table.generation[slot] != stale[1]


def test_slot_reuse_parity_under_heavy_churn():
    """Depart/rejoin churn recycles slots without disturbing parity."""
    config = get_scenario("heavy_churn").build_config(scale=0.02)
    assert_engine_parity(config)
