"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, fired.append, "late")
        sim.schedule_at(1.0, fired.append, "early")
        sim.schedule_at(3.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule_at(2.0, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_schedule_in_is_relative(self):
        sim = Simulator(start_time=10.0)
        times = []
        sim.schedule_in(5.0, lambda _: times.append(sim.now), None)
        sim.run()
        assert times == [15.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(9.0, print, None)
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, print, None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule_in(1.0, chain, n + 1)

        sim.schedule_at(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunUntil:
    def test_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, fired.append, "in")
        sim.schedule_at(9.0, fired.append, "out")
        sim.run(until=5.0)
        assert fired == ["in"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_event_exactly_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(9.0, fired.append, "late")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["late"]
        assert sim.now == 9.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, fired.append, "no")
        sim.schedule_at(2.0, fired.append, "yes")
        sim.cancel(handle)
        sim.run()
        assert fired == ["yes"]

    def test_events_processed_counts_only_fired(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda _: None, None)
        sim.schedule_at(2.0, lambda _: None, None)
        sim.cancel(handle)
        sim.run()
        assert sim.events_processed == 1


class TestDeadEventCompaction:
    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        handles = [sim.schedule_at(float(i), lambda _: None, None) for i in range(10)]
        for handle in handles[:4]:
            sim.cancel(handle)
        assert sim.pending == 6

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda _: None, None)
        sim.schedule_at(2.0, lambda _: None, None)
        sim.cancel(handle)
        sim.cancel(handle)
        assert sim.pending == 1

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda _: None, None)
        sim.schedule_at(2.0, lambda _: None, None)
        sim.run(until=1.0)
        sim.cancel(handle)  # already fired; must not corrupt the live count
        assert sim.pending == 1
        sim.run()
        assert sim.events_processed == 2

    def test_majority_dead_queue_is_compacted(self):
        sim = Simulator()
        keep = Simulator.COMPACT_MIN_SIZE // 2
        live = [sim.schedule_at(float(i), lambda _: None, None) for i in range(keep)]
        dead = [
            sim.schedule_at(1000.0 + i, lambda _: None, None)
            for i in range(keep + 2)
        ]
        for handle in dead:
            sim.cancel(handle)
        # the physical queue shrank to the live entries alone
        assert len(sim._queue) == len(live)
        assert sim.pending == len(live)

    def test_compaction_preserves_order_and_results(self):
        sim = Simulator()
        fired = []
        handles = []
        for i in range(200):
            handles.append(sim.schedule_at(float(i), fired.append, i))
        for i, handle in enumerate(handles):
            if i % 2:
                sim.cancel(handle)
        sim.run()
        assert fired == [i for i in range(200) if i % 2 == 0]
        assert sim.pending == 0

    def test_small_queues_skip_compaction(self):
        sim = Simulator()
        live = sim.schedule_at(1.0, lambda _: None, None)
        dead = sim.schedule_at(2.0, lambda _: None, None)
        sim.cancel(dead)
        # below COMPACT_MIN_SIZE the dead entry stays queued but uncounted
        assert len(sim._queue) == 2
        assert sim.pending == 1
        sim.cancel(live)
        assert sim.pending == 0
        sim.run()
        assert sim.events_processed == 0


class TestCompactionEdgeCases:
    def test_cancel_all_then_schedule(self):
        """Cancelling every queued event must leave a clean, usable queue."""
        sim = Simulator()
        handles = [
            sim.schedule_at(float(i), lambda _: None, None)
            for i in range(Simulator.COMPACT_MIN_SIZE * 2)
        ]
        for handle in handles:
            sim.cancel(handle)
        assert sim.pending == 0
        # compaction keeps the graveyard bounded: entries below the
        # compaction threshold may linger, but never more
        assert len(sim._queue) < Simulator.COMPACT_MIN_SIZE
        fired = []
        sim.schedule_at(5.0, fired.append, "fresh")
        assert sim.pending == 1
        sim.run()
        assert fired == ["fresh"]
        assert sim.events_processed == 1

    def test_compaction_exactly_at_dead_gt_live_boundary(self):
        """Compaction triggers at dead == live + 1, not at dead == live."""
        sim = Simulator()
        half = Simulator.COMPACT_MIN_SIZE // 2
        live = [sim.schedule_at(float(i), lambda _: None, None) for i in range(half)]
        dead = [
            sim.schedule_at(1000.0 + i, lambda _: None, None) for i in range(half)
        ]
        for handle in dead[:-1]:
            sim.cancel(handle)
        assert len(sim._queue) == 2 * half
        assert sim.pending == half + 1
        sim.cancel(dead[-1])
        # dead == live exactly: the threshold is strict (dead must
        # OUTNUMBER live), so the graveyard is still queued
        assert len(sim._queue) == 2 * half
        assert sim.pending == half
        sim.cancel(live[0])
        # one more cancel tips dead past live: compaction fires and only
        # the surviving live entries remain stored
        assert len(sim._queue) == half - 1
        assert sim.pending == half - 1

    def test_cancel_all_then_schedule_calendar_kernel(self):
        """The calendar kernel honours the same compaction policy."""
        sim = Simulator(kernel="calendar")
        handles = [
            sim.schedule_at(float(i * 30), lambda _: None, None)
            for i in range(Simulator.COMPACT_MIN_SIZE * 2)
        ]
        for handle in handles:
            sim.cancel(handle)
        assert sim.pending == 0
        fired = []
        sim.schedule_at(5.0, fired.append, "fresh")
        sim.run()
        assert fired == ["fresh"]


class TestStep:
    def test_step_processes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, fired.append, "a")
        sim.schedule_at(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, fired.append, "no")
        sim.schedule_at(2.0, fired.append, "yes")
        sim.cancel(handle)
        assert sim.step() is True
        assert fired == ["yes"]
