"""Unit tests for the simulation configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import SimulationConfig


class TestPaperDefaults:
    def test_population_is_50100_peers(self):
        config = SimulationConfig()
        assert config.total_peers == 50_100
        assert config.total_requesting == 50_000
        assert config.seed_suppliers == {1: 100}

    def test_class_mix_is_10_10_40_40(self):
        config = SimulationConfig()
        assert config.requesting_peers == {1: 5000, 2: 5000, 3: 20000, 4: 20000}

    def test_protocol_parameters(self):
        config = SimulationConfig()
        assert config.probe_candidates == 8
        assert config.t_out_seconds == 1200.0
        assert config.t_bkf_seconds == 600.0
        assert config.e_bkf == 2.0

    def test_horizon_and_window(self):
        config = SimulationConfig()
        assert config.horizon_seconds == 144 * 3600.0
        assert config.arrival_window_seconds == 72 * 3600.0

    def test_media_is_60_minutes(self):
        assert SimulationConfig().media.show_seconds == 3600.0


class TestValidation:
    def test_needs_at_least_one_seed(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(seed_suppliers={1: 0})

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(arrival_pattern=7)

    def test_window_cannot_exceed_horizon(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                arrival_window_seconds=200 * 3600.0, horizon_seconds=144 * 3600.0
            )

    def test_down_probability_range(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(down_probability=1.0)

    def test_unknown_lookup_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(lookup="gnutella")

    def test_invalid_class_in_population(self):
        with pytest.raises(Exception):
            SimulationConfig(requesting_peers={9: 10})


class TestScaling:
    def test_scaled_keeps_ratios(self):
        config = SimulationConfig().scaled(0.1)
        assert config.seed_suppliers == {1: 10}
        assert config.requesting_peers == {1: 500, 2: 500, 3: 2000, 4: 2000}

    def test_tiny_scale_keeps_every_class_alive(self):
        config = SimulationConfig().scaled(0.0001)
        assert all(count >= 1 for count in config.requesting_peers.values())
        assert sum(config.seed_suppliers.values()) >= 1

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().scaled(0.0)

    def test_replace_revalidates(self):
        config = SimulationConfig()
        with pytest.raises(ConfigurationError):
            config.replace(probe_candidates=0)

    def test_describe_mentions_key_parameters(self):
        text = SimulationConfig().describe()
        assert "M=8" in text and "pattern 2" in text and "50100 peers" in text
