"""Unit tests for the availability (churn) models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.simulation.churn import BernoulliChurn, NoChurn, OnOffChurn


class TestNoChurn:
    def test_never_down(self):
        model = NoChurn()
        rng = random.Random(1)
        assert not any(model.is_down(i, i * 10.0, rng) for i in range(100))


class TestBernoulliChurn:
    def test_zero_probability_never_down(self):
        model = BernoulliChurn(0.0)
        rng = random.Random(1)
        assert not any(model.is_down(1, t, rng) for t in range(100))

    def test_down_rate_matches_probability(self):
        model = BernoulliChurn(0.3)
        rng = random.Random(2)
        downs = sum(model.is_down(1, float(t), rng) for t in range(10_000))
        assert downs / 10_000 == pytest.approx(0.3, abs=0.02)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            BernoulliChurn(1.0)
        with pytest.raises(ConfigurationError):
            BernoulliChurn(-0.1)


class TestOnOffChurn:
    def test_state_is_time_consistent(self):
        model = OnOffChurn(mean_up_seconds=100.0, mean_down_seconds=50.0, seed=1)
        rng = random.Random(3)
        # Same (peer, time) query always answers the same.
        assert model.is_down(7, 123.0, rng) == model.is_down(7, 123.0, rng)

    def test_state_is_correlated_in_time(self):
        model = OnOffChurn(mean_up_seconds=1000.0, mean_down_seconds=1000.0, seed=2)
        rng = random.Random(3)
        flips = 0
        for peer in range(50):
            previous = model.is_down(peer, 0.0, rng)
            for t in (1.0, 2.0, 3.0):
                current = model.is_down(peer, t, rng)
                flips += current != previous
                previous = current
        # With 1000 s mean durations, 1 s steps almost never flip.
        assert flips <= 3

    def test_long_run_availability_near_stationary(self):
        model = OnOffChurn(mean_up_seconds=300.0, mean_down_seconds=100.0, seed=5)
        rng = random.Random(4)
        downs = 0
        samples = 0
        for peer in range(200):
            for t in range(0, 5000, 250):
                downs += model.is_down(peer, float(t), rng)
                samples += 1
        # stationary down fraction = 100 / 400 = 0.25
        assert downs / samples == pytest.approx(0.25, abs=0.06)

    def test_invalid_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            OnOffChurn(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            OnOffChurn(10.0, -1.0)
