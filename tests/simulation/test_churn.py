"""Unit tests for the availability (churn) models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.simulation.churn import BernoulliChurn, NoChurn, OnOffChurn


class TestNoChurn:
    def test_never_down(self):
        model = NoChurn()
        rng = random.Random(1)
        assert not any(model.is_down(i, i * 10.0, rng) for i in range(100))


class TestBernoulliChurn:
    def test_zero_probability_never_down(self):
        model = BernoulliChurn(0.0)
        rng = random.Random(1)
        assert not any(model.is_down(1, t, rng) for t in range(100))

    def test_down_rate_matches_probability(self):
        model = BernoulliChurn(0.3)
        rng = random.Random(2)
        downs = sum(model.is_down(1, float(t), rng) for t in range(10_000))
        assert downs / 10_000 == pytest.approx(0.3, abs=0.02)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            BernoulliChurn(1.0)
        with pytest.raises(ConfigurationError):
            BernoulliChurn(-0.1)


class TestOnOffChurn:
    def test_state_is_time_consistent(self):
        model = OnOffChurn(mean_up_seconds=100.0, mean_down_seconds=50.0, seed=1)
        rng = random.Random(3)
        # Same (peer, time) query always answers the same.
        assert model.is_down(7, 123.0, rng) == model.is_down(7, 123.0, rng)

    def test_state_is_correlated_in_time(self):
        model = OnOffChurn(mean_up_seconds=1000.0, mean_down_seconds=1000.0, seed=2)
        rng = random.Random(3)
        flips = 0
        for peer in range(50):
            previous = model.is_down(peer, 0.0, rng)
            for t in (1.0, 2.0, 3.0):
                current = model.is_down(peer, t, rng)
                flips += current != previous
                previous = current
        # With 1000 s mean durations, 1 s steps almost never flip.
        assert flips <= 3

    def test_long_run_availability_near_stationary(self):
        model = OnOffChurn(mean_up_seconds=300.0, mean_down_seconds=100.0, seed=5)
        rng = random.Random(4)
        downs = 0
        samples = 0
        for peer in range(200):
            for t in range(0, 5000, 250):
                downs += model.is_down(peer, float(t), rng)
                samples += 1
        # stationary down fraction = 100 / 400 = 0.25
        assert downs / samples == pytest.approx(0.25, abs=0.06)

    def test_invalid_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            OnOffChurn(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            OnOffChurn(10.0, -1.0)


class TestOnOffChurnTimelineEdges:
    """Edge cases of the lazily extended per-peer timeline."""

    def test_down_at_time_zero(self):
        """Peers drawn down by the stationary coin are down from t=0."""
        model = OnOffChurn(mean_up_seconds=100.0, mean_down_seconds=300.0, seed=8)
        rng = random.Random(1)
        down_at_zero = [p for p in range(100) if model.is_down(p, 0.0, rng)]
        # stationary down fraction is 300/400 = 0.75; some peer starts down
        assert down_at_zero
        peer = down_at_zero[0]
        down, boundary = model.next_transition(peer, 0.0)
        assert down
        assert boundary > 0.0
        # ... and the peer is still down just before that first boundary
        assert model.is_down(peer, boundary - 1e-9, rng)

    def test_lazy_extension_across_a_very_long_horizon(self):
        """A far-future query extends one peer's timeline, and only its own."""
        model = OnOffChurn(mean_up_seconds=50.0, mean_down_seconds=50.0, seed=8)
        rng = random.Random(1)
        far = 1e7  # ~100k mean intervals past t=0
        state = model.is_down(3, far, rng)
        assert isinstance(state, bool)
        boundaries = model._timelines[3][1]
        # the timeline now covers the query point with finite, ordered steps
        assert boundaries[-1] > far
        assert all(a < b for a, b in zip(boundaries, boundaries[1:]))
        # only the queried peer paid for the extension
        assert set(model._timelines) == {3}
        # a later nearby query reuses the extended timeline verbatim
        length_before = len(boundaries)
        model.is_down(3, far - 1000.0, rng)
        assert len(model._timelines[3][1]) == length_before

    def test_queries_are_monotone_safe_in_any_order(self):
        """Asking about the past after the future answers consistently."""
        forward = OnOffChurn(50.0, 50.0, seed=12)
        backward = OnOffChurn(50.0, 50.0, seed=12)
        rng = random.Random(1)
        times = [0.0, 123.0, 5000.0, 40.0, 99999.0, 1.0]
        answers_forward = [forward.is_down(5, t, rng) for t in times]
        answers_backward = [backward.is_down(5, t, rng) for t in reversed(times)]
        assert answers_forward == list(reversed(answers_backward))

    def test_next_transition_and_is_down_share_one_timeline(self):
        """Mixing the two access patterns never perturbs the draws."""
        sampled = OnOffChurn(100.0, 100.0, seed=4)
        mixed = OnOffChurn(100.0, 100.0, seed=4)
        rng = random.Random(1)
        times = [float(t) for t in range(0, 2000, 37)]
        expected = [sampled.is_down(2, t, rng) for t in times]
        observed = []
        for t in times:
            down, boundary = mixed.next_transition(2, t)
            assert boundary > t
            observed.append(mixed.is_down(2, t, rng))
            assert observed[-1] == down
        assert observed == expected
