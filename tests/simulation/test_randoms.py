"""Unit tests for named RNG streams."""

from repro.simulation.randoms import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_streams(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert [a.lookup.random() for _ in range(5)] == [
            b.lookup.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = RandomStreams(1)
        b = RandomStreams(2)
        assert [a.lookup.random() for _ in range(5)] != [
            b.lookup.random() for _ in range(5)
        ]

    def test_streams_are_independent(self):
        streams = RandomStreams(42)
        # Consuming one stream must not perturb another: compare against a
        # fresh instance where the other stream is untouched.
        fresh = RandomStreams(42)
        for _ in range(100):
            streams.admission.random()
        assert streams.lookup.random() == fresh.lookup.random()

    def test_stream_is_cached(self):
        streams = RandomStreams(42)
        assert streams.stream("lookup") is streams.stream("lookup")

    def test_named_accessors_map_to_streams(self):
        streams = RandomStreams(42)
        assert streams.arrivals is streams.stream("arrivals")
        assert streams.churn is streams.stream("churn")
        assert streams.population is streams.stream("population")
