"""Unit tests for the metrics collectors."""

import math

import pytest

from repro.core.capacity import CapacityLedger
from repro.core.model import ClassLadder
from repro.simulation.metrics import MetricsCollector


@pytest.fixture
def collector(ladder):
    return MetricsCollector(ladder)


class TestCounters:
    def test_first_request_counts_once_per_peer(self, collector):
        collector.on_first_request(3)
        collector.on_retry(3)
        collector.on_retry(3)
        assert collector.first_requests[3] == 1
        assert collector.requests[3] == 3

    def test_admission_accumulates_table1_inputs(self, collector):
        collector.on_first_request(2)
        collector.on_admission(
            2, rejections_before=3, num_suppliers=4,
            buffering_delay_slots=4, waiting_seconds=1800.0,
        )
        collector.on_first_request(2)
        collector.on_admission(
            2, rejections_before=1, num_suppliers=2,
            buffering_delay_slots=2, waiting_seconds=600.0,
        )
        assert collector.mean_rejections_before_admission()[2] == 2.0
        assert collector.mean_buffering_delay_slots()[2] == 3.0
        assert collector.mean_waiting_seconds()[2] == 1200.0
        assert collector.admission_rate_percent()[2] == 100.0

    def test_unadmitted_class_reports_nan(self, collector):
        assert math.isnan(collector.mean_rejections_before_admission()[1])
        assert math.isnan(collector.admission_rate_percent()[1])

    def test_reminders_counted_by_class(self, collector):
        collector.on_reminder(1)
        collector.on_reminder(1)
        assert collector.reminders_left[1] == 2


class TestSampling:
    def test_capacity_series_grows(self, collector, ladder):
        ledger = CapacityLedger(ladder)
        collector.sample_capacity(0.0, ledger)
        ledger.add_supplier(1)
        ledger.add_supplier(1)
        collector.sample_capacity(3600.0, ledger)
        assert [(p.hour, p.value) for p in collector.capacity_series] == [
            (0.0, 0.0),
            (1.0, 1.0),
        ]
        assert collector.capacity_fractional_series[-1].value == 1.0
        assert collector.supplier_count_series[-1].value == 2.0

    def test_rate_sampling_skips_classes_without_requests(self, collector):
        collector.on_first_request(1)
        collector.sample_rates(7200.0)
        assert len(collector.admission_rate_series[1]) == 1
        assert collector.admission_rate_series[2] == []
        assert collector.overall_admission_rate_series[0].value == 0.0

    def test_rate_values_are_percentages(self, collector):
        for _ in range(4):
            collector.on_first_request(1)
        collector.on_admission(1, 0, 2, 2, 0.0)
        collector.sample_rates(3600.0)
        assert collector.admission_rate_series[1][-1].value == 25.0

    def test_favored_sampling_averages_per_class(self, collector):
        collector.sample_favored(10800.0, {1: [1, 2, 3], 2: [], 3: [4]})
        assert collector.favored_series[1][0].value == 2.0
        assert collector.favored_series[3][0].value == 4.0
        assert collector.favored_series[2] == []  # no suppliers -> no sample


class TestExport:
    def test_to_dict_roundtrips_series(self, collector, ladder):
        ledger = CapacityLedger(ladder)
        ledger.add_supplier(1)
        collector.sample_capacity(0.0, ledger)
        collector.on_first_request(1)
        collector.on_admission(1, 0, 2, 2, 0.0)
        collector.sample_rates(3600.0)
        dump = collector.to_dict()
        assert dump["capacity_series"] == [(0.0, 0.0)]
        assert dump["admitted"][1] == 1
        assert dump["admission_rate_series"][1] == [(1.0, 100.0)]

    def test_final_capacity_empty_series(self, collector):
        assert collector.final_capacity() == 0.0
