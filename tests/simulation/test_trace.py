"""Unit tests for structured event traces."""

import json

import pytest

from repro.errors import TraceError
from repro.simulation.trace import TraceRecorder, load_trace


class TestInMemory:
    def test_record_and_query(self):
        trace = TraceRecorder()
        trace.record("admission", 1.0, peer=1)
        trace.record("rejection", 2.0, peer=2)
        trace.record("admission", 3.0, peer=3)
        assert trace.count("admission") == 2
        assert [e["peer"] for e in trace.of_kind("admission")] == [1, 3]

    def test_fields_flattened_into_event(self):
        trace = TraceRecorder()
        trace.record("x", 5.0, a=1, b="two")
        assert trace.events[0] == {"kind": "x", "t": 5.0, "a": 1, "b": "two"}

    def test_memory_can_be_disabled(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(keep_in_memory=False, path=path) as trace:
            trace.record("x", 1.0)
        assert trace.events == []
        assert len(list(load_trace(path))) == 1


class TestFileRoundtrip:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path=path) as trace:
            trace.record("admission", 1.5, peer=42, suppliers=[1, 2])
        events = list(load_trace(path))
        assert events == [
            {"kind": "admission", "t": 1.5, "peer": 42, "suppliers": [1, 2]}
        ]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "a", "t": 1.0}\n\n{"kind": "b", "t": 2.0}\n')
        assert [e["kind"] for e in load_trace(path)] == ["a", "b"]

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "a", "t": 1.0}\nnot json\n')
        with pytest.raises(TraceError) as excinfo:
            list(load_trace(path))
        assert ":2:" in str(excinfo.value)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError):
            list(load_trace(tmp_path / "missing.jsonl"))

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(TraceError):
            TraceRecorder(path=tmp_path / "no-such-dir" / "trace.jsonl")
